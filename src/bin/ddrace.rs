//! `ddrace` — command-line front end for the simulator.
//!
//! ```text
//! ddrace list
//! ddrace run     --bench kmeans [--mode demand-hitm] [--scale small]
//!                [--seed 42] [--cores 8] [--detector fasttrack]
//!                [--inject-race N] [--json]
//! ddrace compare --bench kmeans [--scale small] [--seed 42] [--cores 8]
//! ddrace record  --bench kmeans --out trace.ddt [--scale test] [--seed 42]
//! ddrace analyze --trace trace.ddt [--mode continuous] [--cores 8]
//! ddrace ingest  (--trace trace.ddt | --corpus DIR) [--modes continuous]
//!                [--detector fasttrack] [--workers N] [--events FILE|-]
//!                [--resume FILE] [--out FILE] [--quiet]
//! ddrace campaign [--suite phoenix] [--modes native,continuous,demand-hitm]
//!                 [--seeds 1,2,3] [--cores-sweep 1,2,4,8] [--variants SPEC]
//!                 [--workers N] [--events FILE|-] [--resume FILE]
//!                 [--out FILE] [--quiet]
//! ddrace fuzz    [--seed 1] [--count 200] [--workers N] [--fault NAME]
//!                 [--events FILE|-] [--resume FILE] [--out FILE]
//!                 [--repro-dir DIR] [--quiet]
//! ddrace fuzz    --replay FILE
//! ```

use ddrace::{
    resume_campaign, run_campaign, AnalysisMode, CacheConfig, Campaign, ConfigPatch, DetectorKind,
    EventSink, JobVariant, ResumeLog, RunResult, Scale, SchedulerConfig, SimConfig, Simulation,
    WorkloadSpec,
};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "list" => cmd_list(),
        "run" => cmd_run(&flags),
        "compare" => cmd_compare(&flags),
        "record" => cmd_record(&flags),
        "analyze" => cmd_analyze(&flags),
        "ingest" => cmd_ingest(&flags),
        "campaign" => cmd_campaign(&flags),
        "fuzz" => cmd_fuzz(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
ddrace — demand-driven race detection simulator

USAGE:
    ddrace list
    ddrace run     (--bench NAME | --spec FILE) [--mode MODE] [--scale SCALE]
                   [--seed N] [--cores N] [--detector KIND] [--inject-race N]
                   [--json] [--detail] [--timeline]
    ddrace compare --bench NAME [--scale SCALE] [--seed N] [--cores N]
    ddrace record  (--bench NAME | --spec FILE) --out FILE [--scale SCALE]
                   [--seed N] [--cores N] [--mode MODE] [--format v1|v2]
    ddrace analyze --trace FILE [--mode MODE] [--cores N] [--detector KIND]
    ddrace ingest  (--trace FILE | --corpus DIR) [--modes MODE,MODE,...]
                   [--detector KIND] [--variants SPEC] [--cores N]
                   [--engine serial|pipelined] [--workers N]
                   [--timeout-secs N] [--events FILE|-]
                   [--resume FILE] [--out FILE] [--quiet]
    ddrace campaign [--suite SUITE] [--modes MODE,MODE,...] [--workers N]
                    [--scale SCALE] [--seed N | --seeds N,N,...] [--cores N]
                    [--cores-sweep N,N,...] [--variants SPEC]
                    [--detector KIND] [--timeout-secs N] [--events FILE|-]
                    [--resume FILE] [--out FILE] [--quiet]
    ddrace fuzz    [--seed N] [--count N] [--workers N] [--fault NAME]
                   [--events FILE|-] [--resume FILE] [--out FILE]
                   [--repro-dir DIR] [--quiet]
    ddrace fuzz    --replay FILE

FUZZ:       generates --count program specs from --seed and checks every
            one against the conformance oracles (FastTrack vs Djit⁺ vs an
            independent reference detector, demand ⊆ continuous with each
            miss attributed, scheduler-picker equivalence, and the
            metamorphic thread/address/padding transforms). Failures are
            shrunk to minimal reproducer files in --repro-dir (default
            `.`), replayable with --replay. --fault plants a deliberate
            reference-detector bug (drop-write-write | ignore-unlock) to
            demonstrate the oracles catch it; the default is none.

INGEST:     replays recorded `.ddt` traces (see `record`) through the
            detector stack on the campaign worker pool — one job per
            trace x mode x variant — instead of generating programs.
            Traces stream slab-at-a-time (never fully in memory);
            --engine picks serial (decode+detect on one thread) or
            pipelined (decode on a second thread, the default) — both
            produce byte-identical aggregates. A corpus directory is
            swept in name order; aggregates are byte-identical across
            --workers counts and reruns. A trace whose header this
            build cannot read (unknown format version, corrupt header)
            aborts with exit code 2 naming the version found vs the
            supported range.

RECORD:     --format picks the `.ddt` version to write: v2 (default,
            block-framed + checksummed) or v1 (the legacy flat stream,
            byte-compatible with older readers).

RESUME:     --resume takes a prior run's --events JSONL stream; finished
            jobs are restored from it (validated by spec fingerprint) and
            only the remainder executes. The aggregate is byte-identical
            to an uninterrupted run.

VARIANTS:   --cores-sweep N,N,... reruns every (workload, mode, seed)
            cell at each simulated core count. --variants takes a preset
            (`a3-cache` — the private-cache ladder; `smt-cores` — cores
            8,4,2,1) or comma-separated custom variants of the form
            name=key:value+key:value with keys cores, quantum, scale,
            detector, period, cooldown, l1-sets, l1-ways, l2-sets,
            l2-ways, l3-sets, l3-ways, e.g.
            `tiny=cores:2+l2-sets:32,tuned=period:64`.

SUITES:     phoenix | parsec | racy | all
MODES:      native | continuous | demand-hitm | demand-oracle
SCALES:     test | small | large
DETECTORS:  fasttrack | djit | lockset
BENCHES:    see `ddrace list`";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, found `{}`", args[i]))?;
        if key == "json" || key == "detail" || key == "timeline" || key == "quiet" {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn parse_mode(s: &str) -> Result<AnalysisMode, String> {
    Ok(match s {
        "native" => AnalysisMode::Native,
        "continuous" => AnalysisMode::Continuous,
        "demand-hitm" => AnalysisMode::demand_hitm(),
        "demand-oracle" => AnalysisMode::demand_oracle(),
        other => return Err(format!("unknown mode `{other}`")),
    })
}

fn parse_scale(s: &str) -> Result<Scale, String> {
    Ok(match s {
        "test" => Scale::TEST,
        "small" => Scale::SMALL,
        "large" => Scale::LARGE,
        other => return Err(format!("unknown scale `{other}`")),
    })
}

fn parse_detector(s: &str) -> Result<DetectorKind, String> {
    Ok(match s {
        "fasttrack" => DetectorKind::FastTrack,
        "djit" => DetectorKind::Djit,
        "lockset" => DetectorKind::LockSet,
        other => return Err(format!("unknown detector `{other}`")),
    })
}

/// Parses `--variants`: a preset name or comma-separated
/// `name=key:value+key:value` variant specs.
fn parse_variants(spec: &str) -> Result<Vec<JobVariant>, String> {
    match spec {
        "a3-cache" => Ok(JobVariant::private_cache_sweep()),
        "smt-cores" => Ok([8, 4, 2, 1].map(JobVariant::with_cores).to_vec()),
        list => list.split(',').map(parse_variant).collect(),
    }
}

fn parse_variant(s: &str) -> Result<JobVariant, String> {
    let (name, overrides) = s.split_once('=').ok_or_else(|| {
        format!(
            "variant `{s}` needs the form name=key:value+key:value \
             (or a preset: a3-cache, smt-cores)"
        )
    })?;
    if name.is_empty() {
        return Err(format!("variant `{s}` has an empty name"));
    }
    let mut patch = ConfigPatch::default();
    // Cache-level overrides start from the Nehalem geometry so a lone
    // `l2-sets` tweak keeps the level's ways and latency sensible.
    let nehalem = CacheConfig::nehalem(1);
    for kv in overrides.split('+') {
        let (key, value) = kv
            .split_once(':')
            .ok_or_else(|| format!("variant override `{kv}` needs key:value"))?;
        let num = |what: &str| -> Result<u64, String> {
            value
                .parse::<u64>()
                .map_err(|_| format!("variant override `{key}` needs a number, got `{what}`"))
        };
        match key {
            "cores" => patch.cores = Some(num(value)? as usize),
            "quantum" => patch.quantum = Some(num(value)? as u32),
            "scale" => patch.scale = Some(parse_scale(value)?),
            "detector" => patch.detector_kind = Some(parse_detector(value)?),
            "period" => patch.sample_period = Some(num(value)?),
            "cooldown" => patch.cooldown_accesses = Some(num(value)?),
            "l1-sets" => patch.l1.get_or_insert(nehalem.l1).sets = num(value)? as usize,
            "l1-ways" => patch.l1.get_or_insert(nehalem.l1).ways = num(value)? as usize,
            "l2-sets" => patch.l2.get_or_insert(nehalem.l2).sets = num(value)? as usize,
            "l2-ways" => patch.l2.get_or_insert(nehalem.l2).ways = num(value)? as usize,
            "l3-sets" => patch.l3.get_or_insert(nehalem.l3).sets = num(value)? as usize,
            "l3-ways" => patch.l3.get_or_insert(nehalem.l3).ways = num(value)? as usize,
            other => {
                return Err(format!(
                    "unknown variant override key `{other}` (expected cores, quantum, \
                     scale, detector, period, cooldown, or l1/l2/l3-sets/-ways)"
                ))
            }
        }
    }
    if patch.is_identity() {
        return Err(format!("variant `{name}` overrides nothing"));
    }
    Ok(JobVariant::new(name, patch))
}

/// Parses `--cores-sweep`: a comma-separated core-count ladder, each
/// point becoming a `c{N}` variant.
fn parse_cores_sweep(list: &str) -> Result<Vec<JobVariant>, String> {
    let cores = list
        .split(',')
        .map(|s| s.trim().parse::<usize>())
        .collect::<Result<Vec<_>, _>>()
        .map_err(|_| "--cores-sweep takes comma-separated core counts, e.g. 1,2,4,8")?;
    if cores.is_empty() {
        return Err("--cores-sweep needs at least one core count".to_string());
    }
    for &c in &cores {
        if c == 0 || c > 64 {
            return Err(format!("--cores-sweep counts must be in 1..=64, got {c}"));
        }
    }
    Ok(cores.into_iter().map(JobVariant::with_cores).collect())
}

struct Common {
    spec: WorkloadSpec,
    scale: Scale,
    seed: u64,
    cores: usize,
}

fn parse_common(flags: &HashMap<String, String>) -> Result<Common, String> {
    let mut spec = if let Some(path) = flags.get("spec") {
        let json = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        ddrace::json::from_str::<WorkloadSpec>(&json)
            .map_err(|e| format!("invalid workload spec {path}: {e}"))?
    } else {
        let name = flags
            .get("bench")
            .ok_or("--bench NAME or --spec FILE is required")?;
        ddrace::workloads::by_name(name)
            .ok_or_else(|| format!("unknown benchmark `{name}` (try `ddrace list`)"))?
    };
    if let Some(n) = flags.get("inject-race") {
        let pairs: u64 = n.parse().map_err(|_| "--inject-race takes a number")?;
        spec = spec.with_injected_race(pairs);
    }
    let scale = parse_scale(flags.get("scale").map(String::as_str).unwrap_or("small"))?;
    let seed = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| "--seed takes a number"))
        .transpose()?
        .unwrap_or(42);
    let cores = flags
        .get("cores")
        .map(|s| s.parse().map_err(|_| "--cores takes a number"))
        .transpose()?
        .unwrap_or(8);
    Ok(Common {
        spec,
        scale,
        seed,
        cores,
    })
}

fn sim_config(
    flags: &HashMap<String, String>,
    cores: usize,
    seed: u64,
) -> Result<SimConfig, String> {
    let mode = parse_mode(
        flags
            .get("mode")
            .map(String::as_str)
            .unwrap_or("demand-hitm"),
    )?;
    let mut cfg = SimConfig::new(cores, mode);
    cfg.scheduler = SchedulerConfig {
        quantum: 32,
        seed,
        jitter: true,
    };
    if let Some(d) = flags.get("detector") {
        cfg.detector_kind = parse_detector(d)?;
    }
    Ok(cfg)
}

fn print_result(r: &RunResult, json: bool, detail: bool, timeline: bool) -> Result<(), String> {
    if json {
        println!(
            "{}",
            ddrace::json::to_string_pretty(r).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!("mode:               {}", r.mode);
    println!("makespan:           {} cycles", r.makespan);
    println!(
        "memory accesses:    {} ({} analyzed)",
        r.accesses_total, r.accesses_analyzed
    );
    println!("HITM loads:         {}", r.cache.total_hitm_loads());
    println!("PMIs delivered:     {}", r.pmis);
    if let Some(c) = r.controller {
        println!(
            "analysis toggles:   {} enables, {} disables",
            c.enables, c.disables
        );
    }
    println!("races (distinct):   {}", r.races.distinct);
    if timeline {
        println!("analysis timeline:  [{}]", ddrace::result_timeline(r, 60));
    }
    if detail {
        for (report, &occ) in r
            .races
            .reports
            .iter()
            .zip(&r.races.report_occurrences)
            .take(20)
        {
            println!();
            print!("{}", ddrace::detector::render_report(report, occ));
        }
    } else {
        for report in r.races.reports.iter().take(20) {
            println!("  {report}");
        }
    }
    if r.races.reports.len() > 20 {
        println!("  ... and {} more", r.races.reports.len() - 20);
    }
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    println!("{:<22} {:<8} {:>8}", "benchmark", "suite", "threads");
    println!("{}", "-".repeat(40));
    for spec in ddrace::workloads::all_benchmarks()
        .into_iter()
        .chain(ddrace::racy::kernels())
    {
        println!(
            "{:<22} {:<8} {:>8}",
            spec.name,
            spec.suite.to_string(),
            spec.total_threads()
        );
    }
    Ok(())
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    let common = parse_common(flags)?;
    let cfg = sim_config(flags, common.cores, common.seed)?;
    let result = Simulation::new(cfg)
        .run(common.spec.program(common.scale, common.seed))
        .map_err(|e| e.to_string())?;
    print_result(
        &result,
        flags.contains_key("json"),
        flags.contains_key("detail"),
        flags.contains_key("timeline"),
    )
}

fn cmd_compare(flags: &HashMap<String, String>) -> Result<(), String> {
    let common = parse_common(flags)?;
    let run = |mode| -> Result<RunResult, String> {
        let mut cfg = SimConfig::new(common.cores, mode);
        cfg.scheduler = SchedulerConfig {
            quantum: 32,
            seed: common.seed,
            jitter: true,
        };
        Simulation::new(cfg)
            .run(common.spec.program(common.scale, common.seed))
            .map_err(|e| e.to_string())
    };
    let native = run(AnalysisMode::Native)?;
    println!(
        "{:<14} {:>14} {:>10} {:>7} {:>10}",
        "mode", "cycles", "slowdown", "races", "analyzed"
    );
    println!("{}", "-".repeat(60));
    for mode in [
        AnalysisMode::Native,
        AnalysisMode::Continuous,
        AnalysisMode::demand_hitm(),
        AnalysisMode::demand_oracle(),
    ] {
        let r = run(mode)?;
        println!(
            "{:<14} {:>14} {:>9.1}x {:>7} {:>9.1}%",
            r.mode,
            r.makespan,
            r.slowdown_vs(&native),
            r.races.distinct,
            r.analyzed_fraction() * 100.0
        );
    }
    Ok(())
}

fn cmd_record(flags: &HashMap<String, String>) -> Result<(), String> {
    let common = parse_common(flags)?;
    let out = flags.get("out").ok_or("--out FILE is required")?;
    let cfg = sim_config(flags, common.cores, common.seed)?;
    let (result, records) = Simulation::new(cfg)
        .run_recorded(common.spec.program(common.scale, common.seed))
        .map_err(|e| e.to_string())?;
    // The fingerprint names the recording setup, so `ingest --resume`
    // refuses checkpoints taken against a differently-recorded corpus.
    let scale = flags.get("scale").map(String::as_str).unwrap_or("small");
    let identity = format!(
        "{}/{}/{}/{}/{}",
        common.spec.name, scale, common.seed, common.cores, result.mode
    );
    let meta = ddrace::TraceMeta {
        source: "sim".to_string(),
        label: common.spec.name.clone(),
        seed: common.seed,
        fingerprint: ddrace::trace::fingerprint64(identity.as_bytes()),
    };
    let version = match flags.get("format").map(String::as_str) {
        None | Some("v2") => ddrace::FormatVersion::V2,
        Some("v1") => ddrace::FormatVersion::V1,
        Some(other) => return Err(format!("unknown --format `{other}` (expected v1 or v2)")),
    };
    ddrace::write_trace_file_with(out, &meta, &records, version)
        .map_err(|e| format!("--out {out}: {e}"))?;
    let exec = ddrace::exec_trace(&records);
    println!(
        "recorded {} ops across {} threads to {out}",
        exec.op_count(),
        exec.thread_count()
    );
    Ok(())
}

fn cmd_ingest(flags: &HashMap<String, String>) -> Result<(), String> {
    let mut paths: Vec<std::path::PathBuf> = Vec::new();
    match (flags.get("trace"), flags.get("corpus")) {
        (Some(_), Some(_)) => return Err("--trace and --corpus are mutually exclusive".to_string()),
        (Some(file), None) => paths.push(file.into()),
        (None, Some(dir)) => {
            for entry in std::fs::read_dir(dir).map_err(|e| format!("--corpus {dir}: {e}"))? {
                let path = entry.map_err(|e| format!("--corpus {dir}: {e}"))?.path();
                if path.extension().is_some_and(|ext| ext == "ddt") {
                    paths.push(path);
                }
            }
            // Name order, so the job list (and hence the campaign
            // fingerprint and aggregate) is independent of readdir order.
            paths.sort();
            if paths.is_empty() {
                return Err(format!("--corpus {dir}: no .ddt traces found"));
            }
        }
        (None, None) => return Err("--trace FILE or --corpus DIR is required".to_string()),
    }

    let mut sources = Vec::with_capacity(paths.len());
    for path in &paths {
        match ddrace::trace::read_meta(path) {
            Ok(meta) => sources.push(ddrace::TraceSource {
                path: path.clone(),
                name: path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "trace".to_string()),
                fingerprint: meta.fingerprint,
            }),
            // Header-level failures (unknown format version, bad magic,
            // truncated header) are format skew, not job failures: exit 2
            // so scripts can tell "this build cannot read that corpus"
            // from a detection failure.
            Err(e) if !matches!(e.kind, ddrace::TraceErrorKind::Io(_)) => {
                eprintln!("error: {}: {e}", path.display());
                std::process::exit(2);
            }
            Err(e) => return Err(format!("{}: {e}", path.display())),
        }
    }

    let modes = flags
        .get("modes")
        .map(String::as_str)
        .unwrap_or("continuous")
        .split(',')
        .map(parse_mode)
        .collect::<Result<Vec<_>, _>>()?;
    let cores: usize = flags
        .get("cores")
        .map(|s| s.parse().map_err(|_| "--cores takes a number"))
        .transpose()?
        .unwrap_or(8);
    let workers: usize = flags
        .get("workers")
        .map(|s| s.parse().map_err(|_| "--workers takes a number"))
        .transpose()?
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
    let variants: Option<Vec<JobVariant>> = flags
        .get("variants")
        .map(|spec| parse_variants(spec))
        .transpose()?;

    let engine = match flags.get("engine").map(String::as_str) {
        None => ddrace::IngestEngine::default(),
        Some(name) => ddrace::IngestEngine::from_label(name)
            .ok_or_else(|| format!("unknown --engine `{name}` (expected serial or pipelined)"))?,
    };

    let mut builder = Campaign::builder("ingest")
        .trace_corpus(sources)
        .modes(modes)
        .seeds([0])
        .cores(cores)
        .ingest_engine(engine);
    if let Some(variants) = variants {
        builder = builder.variants(variants);
    }
    if let Some(d) = flags.get("detector") {
        builder = builder.detector_kind(parse_detector(d)?);
    }
    if let Some(t) = flags.get("timeout-secs") {
        let secs: u64 = t.parse().map_err(|_| "--timeout-secs takes a number")?;
        builder = builder.timeout(std::time::Duration::from_secs(secs));
    }
    let campaign = builder.build();

    // As in `campaign`: read the resume checkpoint *before* opening
    // --events, so resuming into the path the checkpoint came from does
    // not truncate it first.
    let resume_log = flags
        .get("resume")
        .map(|path| -> Result<ResumeLog, String> {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("--resume {path}: {e}"))?;
            ResumeLog::parse(&text).map_err(|e| format!("--resume {path}: {e}"))
        })
        .transpose()?;

    let jsonl: Option<Box<dyn std::io::Write + Send>> = match flags.get("events") {
        Some(path) if path == "-" => Some(Box::new(std::io::stdout())),
        Some(path) => Some(Box::new(
            std::fs::File::create(path).map_err(|e| format!("--events {path}: {e}"))?,
        )),
        None => None,
    };
    // Ingest output is deterministic down to the byte (the ci.sh stage
    // diffs aggregates across worker counts), so wall-clock is zeroed.
    let sink = EventSink::new(jsonl, !flags.contains_key("quiet")).with_deterministic_wall();
    let report = match &resume_log {
        Some(log) => {
            let skipped = log.finished.len();
            let report = resume_campaign(&campaign, workers, &sink, log)?;
            if !flags.contains_key("quiet") {
                eprintln!(
                    "resumed: {skipped} of {} job(s) restored from the checkpoint",
                    campaign.jobs.len()
                );
            }
            report
        }
        None => run_campaign(&campaign, workers, &sink),
    };

    let aggregate =
        ddrace::json::to_string_pretty(&report.aggregate_json()).map_err(|e| e.to_string())?;
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &aggregate).map_err(|e| format!("--out {path}: {e}"))?;
            eprintln!("aggregate written to {path}");
        }
        None => println!("{aggregate}"),
    }
    if report.failed() > 0 {
        return Err(format!("{} job(s) failed", report.failed()));
    }
    Ok(())
}

fn cmd_campaign(flags: &HashMap<String, String>) -> Result<(), String> {
    let suite = flags.get("suite").map(String::as_str).unwrap_or("phoenix");
    let workloads = match suite {
        "phoenix" => ddrace::phoenix::suite(),
        "parsec" => ddrace::parsec::suite(),
        "racy" => ddrace::racy::kernels(),
        "all" => ddrace::workloads::all_benchmarks()
            .into_iter()
            .chain(ddrace::racy::kernels())
            .collect(),
        other => return Err(format!("unknown suite `{other}`")),
    };
    let modes = flags
        .get("modes")
        .map(String::as_str)
        .unwrap_or("native,continuous,demand-hitm")
        .split(',')
        .map(parse_mode)
        .collect::<Result<Vec<_>, _>>()?;
    let scale = parse_scale(flags.get("scale").map(String::as_str).unwrap_or("small"))?;
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| "--seed takes a number"))
        .transpose()?
        .unwrap_or(42);
    let seeds: Vec<u64> = match flags.get("seeds") {
        Some(list) => {
            if flags.contains_key("seed") {
                return Err("--seed and --seeds are mutually exclusive".to_string());
            }
            let seeds = list
                .split(',')
                .map(|s| s.trim().parse::<u64>())
                .collect::<Result<Vec<_>, _>>()
                .map_err(|_| "--seeds takes comma-separated numbers, e.g. 1,2,3")?;
            if seeds.is_empty() {
                return Err("--seeds needs at least one seed".to_string());
            }
            seeds
        }
        None => vec![seed],
    };
    let cores: usize = flags
        .get("cores")
        .map(|s| s.parse().map_err(|_| "--cores takes a number"))
        .transpose()?
        .unwrap_or(8);
    let workers: usize = flags
        .get("workers")
        .map(|s| s.parse().map_err(|_| "--workers takes a number"))
        .transpose()?
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });

    let variants: Option<Vec<JobVariant>> = match (flags.get("variants"), flags.get("cores-sweep"))
    {
        (Some(_), Some(_)) => {
            return Err("--variants and --cores-sweep are mutually exclusive".to_string())
        }
        (Some(spec), None) => Some(parse_variants(spec)?),
        (None, Some(list)) => Some(parse_cores_sweep(list)?),
        (None, None) => None,
    };

    let mut builder = Campaign::builder(format!("{suite}-campaign"))
        .workloads(workloads)
        .modes(modes)
        .seeds(seeds)
        .scale(scale)
        .cores(cores);
    if let Some(variants) = variants {
        builder = builder.variants(variants);
    }
    if let Some(d) = flags.get("detector") {
        builder = builder.detector_kind(parse_detector(d)?);
    }
    if let Some(t) = flags.get("timeout-secs") {
        let secs: u64 = t.parse().map_err(|_| "--timeout-secs takes a number")?;
        builder = builder.timeout(std::time::Duration::from_secs(secs));
    }
    let campaign = builder.build();

    // Read the resume log *before* opening --events: resuming a run into
    // the same events path it came from must not truncate the checkpoint
    // we are about to replay.
    let resume_log = flags
        .get("resume")
        .map(|path| -> Result<ResumeLog, String> {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("--resume {path}: {e}"))?;
            ResumeLog::parse(&text).map_err(|e| format!("--resume {path}: {e}"))
        })
        .transpose()?;

    let jsonl: Option<Box<dyn std::io::Write + Send>> = match flags.get("events") {
        Some(path) if path == "-" => Some(Box::new(std::io::stdout())),
        Some(path) => Some(Box::new(
            std::fs::File::create(path).map_err(|e| format!("--events {path}: {e}"))?,
        )),
        None => None,
    };
    let sink = EventSink::new(jsonl, !flags.contains_key("quiet"));
    let report = match &resume_log {
        Some(log) => {
            let skipped = log.finished.len();
            let report = resume_campaign(&campaign, workers, &sink, log)?;
            if !flags.contains_key("quiet") {
                eprintln!(
                    "resumed: {skipped} of {} job(s) restored from the checkpoint",
                    campaign.jobs.len()
                );
            }
            report
        }
        None => run_campaign(&campaign, workers, &sink),
    };

    let aggregate =
        ddrace::json::to_string_pretty(&report.aggregate_json()).map_err(|e| e.to_string())?;
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &aggregate).map_err(|e| format!("--out {path}: {e}"))?;
            eprintln!("aggregate written to {path}");
        }
        None => println!("{aggregate}"),
    }
    if report.failed() > 0 {
        return Err(format!("{} job(s) failed", report.failed()));
    }
    Ok(())
}

fn cmd_fuzz(flags: &HashMap<String, String>) -> Result<(), String> {
    if let Some(path) = flags.get("replay") {
        return cmd_fuzz_replay(path);
    }
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| "--seed takes a number"))
        .transpose()?
        .unwrap_or(1);
    let count: usize = flags
        .get("count")
        .map(|s| s.parse().map_err(|_| "--count takes a number"))
        .transpose()?
        .unwrap_or(200);
    let workers: usize = flags
        .get("workers")
        .map(|s| s.parse().map_err(|_| "--workers takes a number"))
        .transpose()?
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
    let fault = ddrace::Fault::parse(flags.get("fault").map(String::as_str).unwrap_or("none"))?;
    let cfg = ddrace::FuzzConfig {
        seed,
        count,
        workers,
        fault,
    };

    // As in `campaign`: read the resume checkpoint *before* opening
    // --events, so resuming into the path the checkpoint came from does
    // not truncate it first.
    let resume_log = flags
        .get("resume")
        .map(|path| -> Result<ddrace::harness::CheckpointLog, String> {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("--resume {path}: {e}"))?;
            ddrace::harness::CheckpointLog::parse(&text)
                .map_err(|e| format!("--resume {path}: {e}"))
        })
        .transpose()?;

    let jsonl: Option<Box<dyn std::io::Write + Send>> = match flags.get("events") {
        Some(path) if path == "-" => Some(Box::new(std::io::stdout())),
        Some(path) => Some(Box::new(
            std::fs::File::create(path).map_err(|e| format!("--events {path}: {e}"))?,
        )),
        None => None,
    };
    // Fuzz events are deterministic down to the byte (the ci.sh smoke
    // stage diffs two runs), so wall-clock fields are zeroed.
    let sink = EventSink::new(jsonl, !flags.contains_key("quiet")).with_deterministic_wall();
    let skipped = resume_log.as_ref().map(|log| log.finished.len());
    let report = ddrace::run_fuzz(&cfg, &sink, resume_log.as_ref())?;
    if let Some(skipped) = skipped {
        if !flags.contains_key("quiet") {
            eprintln!("resumed: {skipped} of {count} spec(s) restored from the checkpoint");
        }
    }

    let aggregate =
        ddrace::json::to_string_pretty(&report.aggregate_json()).map_err(|e| e.to_string())?;
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &aggregate).map_err(|e| format!("--out {path}: {e}"))?;
            eprintln!("aggregate written to {path}");
        }
        None => println!("{aggregate}"),
    }

    // Write one replayable reproducer file per failing spec.
    let repro_dir = flags.get("repro-dir").map(String::as_str).unwrap_or(".");
    let mut repro_paths = Vec::new();
    if !report.failing_outcomes().is_empty() {
        std::fs::create_dir_all(repro_dir).map_err(|e| format!("--repro-dir {repro_dir}: {e}"))?;
    }
    for outcome in report.failing_outcomes() {
        if let Some(spec) = &outcome.reproducer {
            let path = format!("{repro_dir}/fuzz-repro-s{:016x}.json", outcome.spec_seed);
            let text = ddrace::json::to_string_pretty(&ddrace::conform::reproducer_json(
                report.fault,
                spec,
            ))
            .map_err(|e| e.to_string())?;
            std::fs::write(&path, text).map_err(|e| format!("writing {path}: {e}"))?;
            repro_paths.push(path);
        }
    }
    for path in &repro_paths {
        eprintln!("reproducer written to {path} (rerun with: ddrace fuzz --replay {path})");
    }

    if report.failed() > 0 {
        return Err(format!("{} fuzz job(s) failed to finish", report.failed()));
    }
    if report.violations_total() > 0 {
        return Err(format!(
            "{} oracle violation(s) across {} of {} spec(s)",
            report.violations_total(),
            report.failing_outcomes().len(),
            count
        ));
    }
    if !flags.contains_key("quiet") {
        eprintln!("fuzz: {count} spec(s) checked, no oracle violations");
    }
    Ok(())
}

fn cmd_fuzz_replay(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("--replay {path}: {e}"))?;
    let (fault, spec) =
        ddrace::conform::parse_reproducer(&text).map_err(|e| format!("--replay {path}: {e}"))?;
    let verdict = ddrace::conform::check_spec_with(&spec, fault);
    eprintln!(
        "replay: {} op(s), fault {}, races continuous {} / demand {}",
        spec.op_count(),
        fault.name(),
        verdict.races_continuous,
        verdict.races_demand
    );
    if verdict.violations.is_empty() {
        eprintln!("replay: the spec conforms — failure did not reproduce");
        return Ok(());
    }
    for v in &verdict.violations {
        eprintln!("violation [{}]: {}", v.oracle, v.detail);
    }
    Err(format!(
        "{} oracle violation(s) reproduced",
        verdict.violations.len()
    ))
}

fn cmd_analyze(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = flags.get("trace").ok_or("--trace FILE is required")?;
    let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
    // Sniff the 8-byte magic: `.ddt` binary traces and the legacy JSON
    // trace dump both replay through the same path.
    let trace: ddrace::program::Trace = if bytes.starts_with(&ddrace::trace::MAGIC) {
        let (_, records) = ddrace::decode_trace(&bytes).map_err(|e| format!("{path}: {e}"))?;
        ddrace::exec_trace(&records)
    } else {
        let json = String::from_utf8(bytes).map_err(|_| format!("{path}: not UTF-8"))?;
        ddrace::json::from_str(&json).map_err(|e| e.to_string())?
    };
    let cores = flags
        .get("cores")
        .map(|s| s.parse().map_err(|_| "--cores takes a number"))
        .transpose()?
        .unwrap_or(8);
    let cfg = sim_config(flags, cores, 0)?;
    let result = Simulation::new(cfg).run_trace(&trace);
    print_result(
        &result,
        flags.contains_key("json"),
        flags.contains_key("detail"),
        flags.contains_key("timeline"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_presets_expand() {
        let cache = parse_variants("a3-cache").unwrap();
        assert_eq!(cache.len(), 5);
        assert_eq!(cache[0].name, "16KiB");
        assert!(cache
            .iter()
            .all(|v| v.patch.l1.is_some() && v.patch.l2.is_some()));
        let smt = parse_variants("smt-cores").unwrap();
        let cores: Vec<usize> = smt.iter().map(|v| v.patch.cores.unwrap()).collect();
        assert_eq!(cores, [8, 4, 2, 1]);
    }

    #[test]
    fn custom_variants_parse_every_key() {
        let variants =
            parse_variants("tiny=cores:2+quantum:8+scale:test+detector:djit,tuned=period:64+cooldown:100+l2-sets:32")
                .unwrap();
        assert_eq!(variants.len(), 2);
        let tiny = &variants[0].patch;
        assert_eq!(variants[0].name, "tiny");
        assert_eq!(tiny.cores, Some(2));
        assert_eq!(tiny.quantum, Some(8));
        assert_eq!(tiny.scale, Some(Scale::TEST));
        assert_eq!(tiny.detector_kind, Some(DetectorKind::Djit));
        let tuned = &variants[1].patch;
        assert_eq!(tuned.sample_period, Some(64));
        assert_eq!(tuned.cooldown_accesses, Some(100));
        let l2 = tuned.l2.unwrap();
        // A lone l2-sets override keeps the Nehalem ways/latency.
        assert_eq!((l2.sets, l2.ways, l2.latency), (32, 8, 12));
    }

    #[test]
    fn bad_variants_are_rejected() {
        for bad in [
            "noequals",
            "empty=",
            "=cores:2",
            "v=cores",
            "v=cores:many",
            "v=wheels:4",
            "v=scale:huge",
        ] {
            assert!(parse_variants(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn cores_sweep_parses_and_validates() {
        let ladder = parse_cores_sweep("1, 2,4,8").unwrap();
        let names: Vec<&str> = ladder.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["c1", "c2", "c4", "c8"]);
        assert!(parse_cores_sweep("0").is_err());
        assert!(parse_cores_sweep("65").is_err());
        assert!(parse_cores_sweep("two").is_err());
    }
}
