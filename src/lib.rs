//! # ddrace — demand-driven data race detection, reproduced
//!
//! A from-scratch Rust reproduction of
//! *"Demand-driven software race detection using hardware performance
//! counters"* (J. Greathouse, Z. Ma, M. Frank, R. Peri, T. Austin;
//! ISCA 2011, DOI 10.1145/2000064.2000084) as a deterministic simulation.
//!
//! ## The idea
//!
//! Happens-before race detectors that instrument every memory access cost
//! 30–300×. But data races require *inter-thread sharing*, and sharing of
//! recently-written data is visible to commodity hardware as **HITM**
//! cache-coherence events, countable by the PMU. So: run the program
//! uninstrumented, arm a HITM counter, and enable the expensive detector
//! only while the hardware says threads are communicating.
//!
//! ## The crates
//!
//! | crate | role |
//! |-------|------|
//! | [`program`] | deterministic multithreaded program model + scheduler |
//! | [`cache`] | MESI multicore cache hierarchy producing HITM events |
//! | [`pmu`] | simulated performance counters, sampling, skid, indicators |
//! | [`detector`] | FastTrack / Djit⁺ / lockset race detectors |
//! | [`core`] | **the paper's contribution**: demand-driven controller + cost model |
//! | [`workloads`] | Phoenix-like & PARSEC-like synthetic benchmarks, racy kernels |
//! | [`harness`] | parallel campaign runner with structured telemetry |
//! | [`conform`] | differential + metamorphic conformance fuzzer over the stack |
//! | [`trace`] | compact versioned `.ddt` trace format: record once, ingest anywhere |
//! | [`telemetry`] | span/counter sink the simulator emits into during campaigns |
//! | [`json`] | dependency-free JSON used by traces, specs, and campaign output |
//!
//! This facade crate re-exports the most useful items so `use ddrace::*`
//! scenarios work out of the box; the examples and cross-crate
//! integration tests live here too.
//!
//! ## Quickstart
//!
//! ```
//! use ddrace::{run_program, AnalysisMode, ProgramBuilder, ThreadId};
//!
//! // Build a tiny racy program...
//! let mut b = ProgramBuilder::new();
//! let x = b.alloc_shared(8).base();
//! let t1 = b.add_thread();
//! b.on(ThreadId::MAIN).fork(t1).write(x).join(t1);
//! b.on(t1).write(x);
//!
//! // ...and run it under demand-driven analysis on 2 simulated cores.
//! let result = run_program(b.build(), 2, AnalysisMode::Continuous)?;
//! assert_eq!(result.races.distinct, 1);
//! # Ok::<(), ddrace::ScheduleError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ddrace_cache as cache;
pub use ddrace_conform as conform;
pub use ddrace_core as core;
pub use ddrace_detector as detector;
pub use ddrace_harness as harness;
pub use ddrace_json as json;
pub use ddrace_native as native;
pub use ddrace_pmu as pmu;
pub use ddrace_program as program;
pub use ddrace_telemetry as telemetry;
pub use ddrace_trace as trace;
pub use ddrace_workloads as workloads;

pub use ddrace_cache::{CacheConfig, CacheHierarchy, CoreId, HitWhere, LevelConfig, SharingKind};
pub use ddrace_conform::{check_spec, run_fuzz, Fault, FuzzConfig, FuzzSpec};
pub use ddrace_core::{
    geomean, ingest_path, render_timeline, result_timeline, run_program, AnalysisMode,
    AnalysisState, ControllerConfig, CostModel, DemandController, DetectorKind, EnableScope,
    IngestEngine, RunResult, SimConfig, Simulation,
};
pub use ddrace_detector::{
    DetectorConfig, FastTrack, Granularity, RaceDetector, RaceKind, RaceReport,
};
pub use ddrace_harness::{
    resume_campaign, run_campaign, Campaign, CampaignReport, ConfigPatch, EventSink, Job,
    JobVariant, ResumeLog, TraceSource,
};
pub use ddrace_pmu::{IndicatorMode, SharingIndicator};
pub use ddrace_program::{
    AccessKind, Addr, Op, Program, ProgramBuilder, ScheduleError, SchedulerConfig, ThreadId,
};
pub use ddrace_trace::{
    decode_trace, encode_trace, exec_trace, read_trace_file, write_trace_file,
    write_trace_file_with, FormatVersion, TraceError, TraceErrorKind, TraceMeta, TraceRecord,
};
pub use ddrace_workloads::{parsec, phoenix, racy, Scale, WorkloadSpec};
