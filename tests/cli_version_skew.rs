//! Version-skew behaviour of the `ddrace` CLI: a trace written by a
//! *newer* build (an on-disk version this build does not know) must be
//! rejected up front with exit code 2 — distinct from both usage errors
//! (1) and detection results — and an error naming the version found
//! versus the range supported, so corpus-driving scripts can separate
//! "this build cannot read that corpus" from a real failure.

use std::process::Command;

fn ddrace() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddrace"))
}

/// A syntactically plausible `.ddt` header from the future: correct
/// magic, version number 3, followed by bytes this build would only
/// misparse if it wrongly pressed on past the version check.
fn v3_trace_bytes() -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&ddrace::trace::MAGIC);
    bytes.extend_from_slice(&3u32.to_le_bytes());
    bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
    bytes
}

#[test]
fn ingesting_a_newer_format_version_exits_2_naming_the_skew() {
    let dir = std::env::temp_dir().join(format!("ddrace-skew-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("future.ddt");
    std::fs::write(&path, v3_trace_bytes()).unwrap();

    let out = ddrace()
        .args(["ingest", "--trace"])
        .arg(&path)
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);

    assert_eq!(
        out.status.code(),
        Some(2),
        "version skew must exit 2, got {:?}\nstderr: {stderr}",
        out.status.code()
    );
    assert!(
        stderr.contains("found v3, supports v1\u{2013}v2"),
        "stderr must name found vs supported versions:\n{stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_supported_version_is_not_mistaken_for_skew() {
    // Same harness, current-version file: whatever the outcome of the
    // (trivial) ingest, it must not take the skew exit path.
    let dir = std::env::temp_dir().join(format!("ddrace-noskew-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("current.ddt");
    let meta = ddrace::TraceMeta {
        source: "test".to_string(),
        label: "skew-check".to_string(),
        seed: 1,
        fingerprint: 1,
    };
    std::fs::write(&path, ddrace::encode_trace(&meta, &[])).unwrap();

    let out = ddrace()
        .args(["ingest", "--trace"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert_ne!(
        out.status.code(),
        Some(2),
        "a current-version trace must never be reported as version skew\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
