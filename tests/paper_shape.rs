//! The paper's qualitative claims, asserted as fast integration tests.
//!
//! These run at TEST scale so they are cheap; the quantitative versions
//! live in `crates/bench` (see EXPERIMENTS.md). What must hold at any
//! scale is the *shape*: who wins, and in what order.

use ddrace::{parsec, phoenix, AnalysisMode, Scale, SchedulerConfig, SimConfig, Simulation};

fn run(spec: &ddrace::WorkloadSpec, mode: AnalysisMode) -> ddrace::RunResult {
    let mut cfg = SimConfig::new(8, mode);
    cfg.scheduler = SchedulerConfig {
        quantum: 32,
        seed: 42,
        jitter: true,
    };
    Simulation::new(cfg)
        .run(spec.program(Scale::TEST, 42))
        .unwrap()
}

fn speedup(spec: &ddrace::WorkloadSpec) -> f64 {
    let cont = run(spec, AnalysisMode::Continuous);
    let demand = run(spec, AnalysisMode::demand_hitm());
    demand.speedup_over(&cont)
}

#[test]
fn continuous_analysis_costs_an_order_of_magnitude_or_more() {
    // Memory-bound programs (canneal at TEST scale is mostly cold
    // misses) amortize instrumentation more, so their floor is lower.
    for (spec, floor) in [
        (phoenix::linear_regression(), 10.0),
        (phoenix::histogram(), 10.0),
        (parsec::canneal(), 4.0),
    ] {
        let native = run(&spec, AnalysisMode::Native);
        let cont = run(&spec, AnalysisMode::Continuous);
        let slowdown = cont.slowdown_vs(&native);
        assert!(
            slowdown > floor,
            "{}: continuous slowdown {slowdown:.1}x suspiciously low",
            spec.name
        );
    }
}

#[test]
fn demand_driven_wins_and_wins_most_where_sharing_is_least() {
    // The paper's central claim, in one ordering: the near-sharing-free
    // Phoenix extreme gains far more than the sharing-heavy PARSEC
    // extreme, and both beat 1x.
    let lr = speedup(&phoenix::linear_regression());
    let canneal = speedup(&parsec::canneal());
    assert!(lr > 10.0, "linear_regression speedup {lr:.1}x too low");
    assert!(
        canneal >= 1.0,
        "canneal must not lose outright: {canneal:.1}x"
    );
    assert!(
        lr > 3.0 * canneal,
        "ordering violated: lr {lr:.1}x vs canneal {canneal:.1}x"
    );
}

#[test]
fn oracle_indicator_is_at_least_as_good_as_hitm() {
    // Residency may differ, but the oracle never analyzes less than the
    // HITM indicator on the same schedule when both see periodic sharing.
    for spec in [phoenix::kmeans(), parsec::bodytrack()] {
        let hitm = run(&spec, AnalysisMode::demand_hitm());
        let oracle = run(&spec, AnalysisMode::demand_oracle());
        assert!(
            oracle.accesses_analyzed >= hitm.accesses_analyzed / 2,
            "{}: oracle analyzed drastically less than HITM",
            spec.name
        );
    }
}

#[test]
fn tool_attachment_overhead_is_small_when_analysis_never_runs() {
    // Demand mode on a sharing-free program costs only the resident
    // translator: a few percent, not integer factors.
    let spec = phoenix::linear_regression();
    let native = run(&spec, AnalysisMode::Native);
    let demand = run(&spec, AnalysisMode::demand_hitm());
    let slowdown = demand.slowdown_vs(&native);
    assert!(
        slowdown < 2.0,
        "demand on sharing-free program should be near-native, got {slowdown:.2}x"
    );
}

#[test]
fn suite_ordering_phoenix_above_parsec() {
    // Geomean over three representatives per suite — cheap but enough to
    // pin the suite-level ordering the abstract reports (10x vs 3x).
    let phx = [
        phoenix::linear_regression(),
        phoenix::histogram(),
        phoenix::string_match(),
    ];
    let par = [
        parsec::canneal(),
        parsec::streamcluster(),
        parsec::fluidanimate(),
    ];
    let gm = |specs: &[ddrace::WorkloadSpec]| {
        ddrace::geomean(&specs.iter().map(speedup).collect::<Vec<_>>())
    };
    let phx_gm = gm(&phx);
    let par_gm = gm(&par);
    assert!(
        phx_gm > par_gm,
        "suite ordering violated: phoenix {phx_gm:.1}x vs parsec {par_gm:.1}x"
    );
}
