//! Cross-crate integration: record-once / analyze-many via traces.

use ddrace::{phoenix, racy, AnalysisMode, Scale, SchedulerConfig, SimConfig, Simulation};
use ddrace_program::Trace;

fn config(mode: AnalysisMode) -> SimConfig {
    let mut cfg = SimConfig::new(4, mode);
    cfg.scheduler = SchedulerConfig {
        quantum: 8,
        seed: 5,
        jitter: true,
    };
    cfg
}

#[test]
fn replayed_analysis_matches_direct_run() {
    let spec = racy::unprotected_counter();
    let scheduler = config(AnalysisMode::Continuous).scheduler;
    let trace = Trace::record(spec.program(Scale::TEST, 5), scheduler).unwrap();

    let direct = Simulation::new(config(AnalysisMode::Continuous))
        .run(spec.program(Scale::TEST, 5))
        .unwrap();
    let replayed = Simulation::new(config(AnalysisMode::Continuous)).run_trace(&trace);

    // The trace carries the same interleaving the direct run used (same
    // seed), so analysis results are identical.
    assert_eq!(replayed.races.distinct, direct.races.distinct);
    assert_eq!(replayed.makespan, direct.makespan);
    assert_eq!(replayed.accesses_analyzed, direct.accesses_analyzed);
    assert_eq!(replayed.cache.sharing, direct.cache.sharing);
    assert_eq!(replayed.schedule.ops_executed, direct.schedule.ops_executed);
}

#[test]
fn one_trace_many_configurations() {
    let spec = racy::mostly_locked();
    let scheduler = config(AnalysisMode::Native).scheduler;
    let trace = Trace::record(spec.program(Scale::TEST, 9), scheduler).unwrap();

    let native = Simulation::new(config(AnalysisMode::Native)).run_trace(&trace);
    let cont = Simulation::new(config(AnalysisMode::Continuous)).run_trace(&trace);
    let demand = Simulation::new(config(AnalysisMode::demand_hitm())).run_trace(&trace);

    assert_eq!(native.races.distinct, 0);
    assert!(cont.races.distinct > 0);
    assert!(native.makespan < demand.makespan);
    assert!(demand.makespan <= cont.makespan + 8 * 50_000 * 4); // toggle slack
                                                                // Identical traffic in all three analyses.
    assert_eq!(native.accesses_total, cont.accesses_total);
    assert_eq!(cont.accesses_total, demand.accesses_total);
}

#[test]
fn trace_json_roundtrip() {
    let spec = phoenix::string_match();
    let scheduler = config(AnalysisMode::Native).scheduler;
    let trace = Trace::record(spec.program(Scale::TEST, 2), scheduler).unwrap();
    let json = ddrace::json::to_string(&trace).unwrap();
    let back: Trace = ddrace::json::from_str(&json).unwrap();
    assert_eq!(back, trace);
    // And the deserialized trace analyzes identically.
    let a = Simulation::new(config(AnalysisMode::Continuous)).run_trace(&trace);
    let b = Simulation::new(config(AnalysisMode::Continuous)).run_trace(&back);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.races.distinct, b.races.distinct);
}
