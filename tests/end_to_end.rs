//! Cross-crate integration: whole-pipeline behaviour of the simulator.

use ddrace::{parsec, phoenix, racy, AnalysisMode, Scale, SimConfig, Simulation, WorkloadSpec};

fn run(spec: &WorkloadSpec, cores: usize, mode: AnalysisMode) -> ddrace::RunResult {
    let mut cfg = SimConfig::new(cores, mode);
    cfg.scheduler = ddrace::SchedulerConfig {
        quantum: 16,
        seed: 3,
        jitter: true,
    };
    Simulation::new(cfg)
        .run(spec.program(Scale::TEST, 3))
        .unwrap_or_else(|e| panic!("{} failed: {e}", spec.name))
}

#[test]
fn every_benchmark_runs_under_every_mode() {
    let modes = [
        AnalysisMode::Native,
        AnalysisMode::Continuous,
        AnalysisMode::demand_hitm(),
        AnalysisMode::demand_oracle(),
    ];
    for spec in ddrace::workloads::all_benchmarks() {
        for mode in modes {
            let r = run(&spec, 8, mode);
            assert!(r.makespan > 0, "{}: empty run", spec.name);
            assert_eq!(
                r.schedule.orphan_threads, 0,
                "{}: orphan threads",
                spec.name
            );
        }
    }
}

#[test]
fn clean_benchmarks_report_no_races_in_any_mode() {
    for spec in ddrace::workloads::all_benchmarks() {
        for mode in [AnalysisMode::Continuous, AnalysisMode::demand_oracle()] {
            let r = run(&spec, 8, mode);
            assert_eq!(
                r.races.distinct, 0,
                "{} reported false races under {}: {:?}",
                spec.name, r.mode, r.races.reports
            );
        }
    }
}

#[test]
fn schedules_are_mode_invariant() {
    // Identical op streams and scheduler decisions regardless of the
    // analysis mode — the property that makes slowdown ratios meaningful.
    let spec = phoenix::kmeans();
    let a = run(&spec, 8, AnalysisMode::Native);
    let b = run(&spec, 8, AnalysisMode::Continuous);
    let c = run(&spec, 8, AnalysisMode::demand_hitm());
    assert_eq!(a.ops, b.ops);
    assert_eq!(b.ops, c.ops);
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(b.schedule, c.schedule);
    // And the cache sees the same traffic.
    assert_eq!(a.cache.sharing, b.cache.sharing);
    assert_eq!(a.accesses_total, b.accesses_total);
}

#[test]
fn mode_cost_ordering_holds() {
    // native ≤ demand ≤ continuous on a low-sharing benchmark.
    let spec = phoenix::linear_regression();
    let native = run(&spec, 8, AnalysisMode::Native);
    let demand = run(&spec, 8, AnalysisMode::demand_hitm());
    let cont = run(&spec, 8, AnalysisMode::Continuous);
    assert!(native.makespan <= demand.makespan);
    assert!(demand.makespan <= cont.makespan);
}

#[test]
fn demand_analyzes_a_strict_subset_of_accesses() {
    for spec in [phoenix::histogram(), parsec::bodytrack()] {
        let demand = run(&spec, 8, AnalysisMode::demand_hitm());
        let cont = run(&spec, 8, AnalysisMode::Continuous);
        assert!(
            demand.accesses_analyzed < cont.accesses_analyzed,
            "{}",
            spec.name
        );
        // Continuous analyzes every data access it sees.
        assert_eq!(
            cont.accesses_analyzed,
            cont.ops.reads + cont.ops.writes,
            "{}: continuous must analyze all data accesses",
            spec.name
        );
    }
}

#[test]
fn racy_kernels_detected_under_demand() {
    for spec in racy::kernels() {
        let r = run(&spec, 4, AnalysisMode::demand_hitm());
        if spec.name == "sparse_race" {
            // The sparse kernel is *designed* to be missable by a
            // demand-driven tool (a handful of racy accesses in a sea of
            // private work); at TEST scale a miss is legitimate. The
            // software baseline must still catch it.
            let cont = run(&spec, 4, AnalysisMode::Continuous);
            assert!(cont.races.distinct > 0, "continuous must catch sparse_race");
            continue;
        }
        assert!(
            r.races.distinct > 0,
            "{}: demand-HITM missed all planted races",
            spec.name
        );
    }
}

#[test]
fn oracle_never_finds_fewer_racy_workloads_than_hitm() {
    for spec in racy::kernels() {
        let hitm = run(&spec, 4, AnalysisMode::demand_hitm());
        let oracle = run(&spec, 4, AnalysisMode::demand_oracle());
        assert!(
            (oracle.races.distinct > 0) || (hitm.races.distinct == 0),
            "{}: HITM found races the oracle missed entirely",
            spec.name
        );
    }
}

#[test]
fn pipeline_semaphores_balance() {
    let spec = parsec::dedup();
    let r = run(&spec, 8, AnalysisMode::Native);
    assert_eq!(
        r.ops.posts, r.ops.waits,
        "pipeline posts and waits must pair"
    );
    assert!(r.ops.posts > 0);
}

#[test]
fn residency_is_consistent_with_speedup() {
    // More analyzed accesses must not make the run cheaper.
    let low = run(&phoenix::string_match(), 8, AnalysisMode::demand_hitm());
    let high = run(&parsec::canneal(), 8, AnalysisMode::demand_hitm());
    assert!(low.analyzed_fraction() < high.analyzed_fraction());
    let low_cont = run(&phoenix::string_match(), 8, AnalysisMode::Continuous);
    let high_cont = run(&parsec::canneal(), 8, AnalysisMode::Continuous);
    assert!(low.speedup_over(&low_cont) > high.speedup_over(&high_cont));
}

#[test]
fn results_serialize_to_json() {
    let r = run(&racy::unprotected_counter(), 4, AnalysisMode::demand_hitm());
    let json = json_roundtrip(&r);
    assert!(json.contains("\"mode\""));
    assert!(json.contains("demand-hitm"));
}

fn json_roundtrip(r: &ddrace::RunResult) -> String {
    // Encode through the workspace's own JSON layer and require that the
    // output parses back losslessly.
    let json = ddrace::json::to_string(r).expect("RunResult serializes");
    let back: ddrace::RunResult = ddrace::json::from_str(&json).expect("valid JSON");
    assert_eq!(back.makespan, r.makespan);
    assert_eq!(back.races.distinct, r.races.distinct);
    json
}
