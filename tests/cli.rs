//! End-to-end tests of the `ddrace` CLI binary.

use std::process::Command;

fn ddrace() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddrace"))
}

fn stdout_of(mut cmd: Command) -> String {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn list_shows_all_suites() {
    let out = stdout_of({
        let mut c = ddrace();
        c.arg("list");
        c
    });
    for name in ["linear_regression", "canneal", "x264", "sparse_race"] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn run_reports_races_on_a_racy_kernel() {
    let out = stdout_of({
        let mut c = ddrace();
        c.args([
            "run",
            "--bench",
            "unprotected_counter",
            "--scale",
            "test",
            "--mode",
            "continuous",
        ]);
        c
    });
    assert!(out.contains("races (distinct)"));
    assert!(!out.contains("races (distinct):   0"), "{out}");
}

#[test]
fn run_with_timeline_and_detail() {
    let out = stdout_of({
        let mut c = ddrace();
        c.args([
            "run",
            "--bench",
            "mostly_locked",
            "--scale",
            "test",
            "--mode",
            "demand-hitm",
            "--timeline",
            "--detail",
        ]);
        c
    });
    assert!(out.contains("analysis timeline:"));
    assert!(out.contains("WARNING: data race"));
}

#[test]
fn run_json_is_parseable() {
    let out = stdout_of({
        let mut c = ddrace();
        c.args([
            "run",
            "--bench",
            "swaptions",
            "--scale",
            "test",
            "--mode",
            "native",
            "--json",
        ]);
        c
    });
    let v: ddrace::json::Value = ddrace::json::from_str(&out).expect("valid JSON");
    assert_eq!(v["mode"], "native");
    assert!(v["makespan"].as_u64().unwrap() > 0);
}

#[test]
fn compare_prints_all_modes() {
    let out = stdout_of({
        let mut c = ddrace();
        c.args(["compare", "--bench", "string_match", "--scale", "test"]);
        c
    });
    for mode in ["native", "continuous", "demand-hitm", "demand-oracle"] {
        assert!(out.contains(mode), "missing {mode} in:\n{out}");
    }
}

#[test]
fn record_then_analyze_roundtrip() {
    let dir = std::env::temp_dir().join(format!("ddrace-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.ddt");

    let out = stdout_of({
        let mut c = ddrace();
        c.args([
            "record",
            "--bench",
            "sparse_race",
            "--scale",
            "test",
            "--out",
            trace_path.to_str().unwrap(),
        ]);
        c
    });
    assert!(out.contains("recorded"));

    // The recorded file is the binary format, not the legacy JSON dump.
    let bytes = std::fs::read(&trace_path).unwrap();
    assert!(bytes.starts_with(&ddrace::trace::MAGIC), "not a .ddt file");

    let out = stdout_of({
        let mut c = ddrace();
        c.args([
            "analyze",
            "--trace",
            trace_path.to_str().unwrap(),
            "--mode",
            "continuous",
        ]);
        c
    });
    assert!(out.contains("races (distinct)"));
    assert!(!out.contains("races (distinct):   0"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_still_reads_legacy_json_traces() {
    let dir = std::env::temp_dir().join(format!("ddrace-cli-json-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");

    let spec = ddrace::racy::sparse_race();
    let scheduler = ddrace::SchedulerConfig {
        quantum: 32,
        seed: 42,
        jitter: true,
    };
    let trace =
        ddrace::program::Trace::record(spec.program(ddrace::Scale::TEST, 42), scheduler).unwrap();
    std::fs::write(&trace_path, ddrace::json::to_string(&trace).unwrap()).unwrap();

    let out = stdout_of({
        let mut c = ddrace();
        c.args([
            "analyze",
            "--trace",
            trace_path.to_str().unwrap(),
            "--mode",
            "continuous",
        ]);
        c
    });
    assert!(!out.contains("races (distinct):   0"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_corpus_is_worker_count_invariant() {
    let dir = std::env::temp_dir().join(format!("ddrace-cli-ingest-{}", std::process::id()));
    let corpus = dir.join("corpus");
    std::fs::create_dir_all(&corpus).unwrap();
    for bench in ["sparse_race", "unprotected_counter"] {
        let out = stdout_of({
            let mut c = ddrace();
            c.args([
                "record",
                "--bench",
                bench,
                "--scale",
                "test",
                "--out",
                corpus.join(format!("{bench}.ddt")).to_str().unwrap(),
            ]);
            c
        });
        assert!(out.contains("recorded"), "{out}");
    }
    let ingest = |workers: &str| {
        stdout_of({
            let mut c = ddrace();
            c.args([
                "ingest",
                "--corpus",
                corpus.to_str().unwrap(),
                "--workers",
                workers,
                "--quiet",
            ]);
            c
        })
    };
    let serial = ingest("1");
    assert!(serial.contains("\"campaign\": \"ingest\""), "{serial}");
    assert!(serial.contains("sparse_race"), "{serial}");
    assert_eq!(serial, ingest("8"), "aggregate depends on worker count");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_unknown_version_exits_2_naming_both_versions() {
    let dir = std::env::temp_dir().join(format!("ddrace-cli-skew-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("future.ddt");
    let mut bytes = ddrace::trace::MAGIC.to_vec();
    bytes.extend_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, bytes).unwrap();

    let out = ddrace()
        .args(["ingest", "--trace", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "version skew must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unsupported trace format version: found v99, supports v1\u{2013}v2"),
        "{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_corrupt_header_exits_2() {
    let dir = std::env::temp_dir().join(format!("ddrace-cli-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Right magic and version, but the header ends mid-field.
    let truncated = dir.join("truncated.ddt");
    let mut bytes = ddrace::trace::MAGIC.to_vec();
    bytes.extend_from_slice(&1u32.to_le_bytes());
    std::fs::write(&truncated, bytes).unwrap();

    // Not a trace at all.
    let garbage = dir.join("garbage.ddt");
    std::fs::write(&garbage, b"not a trace").unwrap();

    for (path, needle) in [
        (&truncated, "truncated trace"),
        (&garbage, "not a .ddt trace"),
    ] {
        let out = ddrace()
            .args(["ingest", "--trace", path.to_str().unwrap()])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{} must exit 2", path.display());
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{stderr}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_benchmark_fails_helpfully() {
    let out = ddrace()
        .args(["run", "--bench", "nonexistent"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown benchmark"), "{stderr}");
}

#[test]
fn inject_race_flag_plants_races() {
    let out = stdout_of({
        let mut c = ddrace();
        c.args([
            "run",
            "--bench",
            "string_match",
            "--scale",
            "test",
            "--mode",
            "continuous",
            "--inject-race",
            "50",
        ]);
        c
    });
    assert!(!out.contains("races (distinct):   0"), "{out}");
}
