//! End-to-end tests of the `ddrace` CLI binary.

use std::process::Command;

fn ddrace() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddrace"))
}

fn stdout_of(mut cmd: Command) -> String {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn list_shows_all_suites() {
    let out = stdout_of({
        let mut c = ddrace();
        c.arg("list");
        c
    });
    for name in ["linear_regression", "canneal", "x264", "sparse_race"] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn run_reports_races_on_a_racy_kernel() {
    let out = stdout_of({
        let mut c = ddrace();
        c.args([
            "run",
            "--bench",
            "unprotected_counter",
            "--scale",
            "test",
            "--mode",
            "continuous",
        ]);
        c
    });
    assert!(out.contains("races (distinct)"));
    assert!(!out.contains("races (distinct):   0"), "{out}");
}

#[test]
fn run_with_timeline_and_detail() {
    let out = stdout_of({
        let mut c = ddrace();
        c.args([
            "run",
            "--bench",
            "mostly_locked",
            "--scale",
            "test",
            "--mode",
            "demand-hitm",
            "--timeline",
            "--detail",
        ]);
        c
    });
    assert!(out.contains("analysis timeline:"));
    assert!(out.contains("WARNING: data race"));
}

#[test]
fn run_json_is_parseable() {
    let out = stdout_of({
        let mut c = ddrace();
        c.args([
            "run",
            "--bench",
            "swaptions",
            "--scale",
            "test",
            "--mode",
            "native",
            "--json",
        ]);
        c
    });
    let v: ddrace::json::Value = ddrace::json::from_str(&out).expect("valid JSON");
    assert_eq!(v["mode"], "native");
    assert!(v["makespan"].as_u64().unwrap() > 0);
}

#[test]
fn compare_prints_all_modes() {
    let out = stdout_of({
        let mut c = ddrace();
        c.args(["compare", "--bench", "string_match", "--scale", "test"]);
        c
    });
    for mode in ["native", "continuous", "demand-hitm", "demand-oracle"] {
        assert!(out.contains(mode), "missing {mode} in:\n{out}");
    }
}

#[test]
fn record_then_analyze_roundtrip() {
    let dir = std::env::temp_dir().join(format!("ddrace-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");

    let out = stdout_of({
        let mut c = ddrace();
        c.args([
            "record",
            "--bench",
            "sparse_race",
            "--scale",
            "test",
            "--out",
            trace_path.to_str().unwrap(),
        ]);
        c
    });
    assert!(out.contains("recorded"));

    let out = stdout_of({
        let mut c = ddrace();
        c.args([
            "analyze",
            "--trace",
            trace_path.to_str().unwrap(),
            "--mode",
            "continuous",
        ]);
        c
    });
    assert!(out.contains("races (distinct)"));
    assert!(!out.contains("races (distinct):   0"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_benchmark_fails_helpfully() {
    let out = ddrace()
        .args(["run", "--bench", "nonexistent"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown benchmark"), "{stderr}");
}

#[test]
fn inject_race_flag_plants_races() {
    let out = stdout_of({
        let mut c = ddrace();
        c.args([
            "run",
            "--bench",
            "string_match",
            "--scale",
            "test",
            "--mode",
            "continuous",
            "--inject-race",
            "50",
        ]);
        c
    });
    assert!(!out.contains("races (distinct):   0"), "{out}");
}
