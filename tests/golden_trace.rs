//! Golden-file byte pins of the `.ddt` trace format: the exact bytes a
//! fixed seeded workload records are committed under `tests/golden/`,
//! one artifact per on-disk format version. Any change to the header
//! layout, tag assignment, varint encoding, or (for version 2) block
//! framing shows up as a diff against a reviewed artifact instead of
//! silently breaking previously-recorded corpora. Version 1 is frozen:
//! its artifact must never change. Compatible format changes add a new
//! version (and a new golden) instead of editing an existing one.
//!
//! To regenerate after an *intentional* format change (a version bump):
//!
//! ```text
//! DDRACE_UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```

use ddrace::trace::{encode_trace_with, FormatVersion, TraceRecord};
use ddrace::{racy, AnalysisMode, Scale, SchedulerConfig, SimConfig, Simulation, TraceMeta};
use std::path::PathBuf;

/// The fixed seeded workload every golden pin encodes.
///
/// unprotected_counter is the smallest racy kernel at TEST scale
/// (~45 KiB recorded), keeping the committed artifacts light.
fn golden_workload() -> (TraceMeta, Vec<TraceRecord>) {
    let spec = racy::unprotected_counter();
    let mut cfg = SimConfig::new(4, AnalysisMode::demand_hitm());
    cfg.scheduler = SchedulerConfig {
        quantum: 32,
        seed: 42,
        jitter: true,
    };
    let (_, records) = Simulation::new(cfg)
        .run_recorded(spec.program(Scale::TEST, 42))
        .expect("golden workload runs clean");
    let meta = TraceMeta {
        source: "sim".to_string(),
        label: spec.name.clone(),
        seed: 42,
        fingerprint: ddrace::trace::fingerprint64(b"unprotected_counter/test/42/4/demand-hitm"),
    };
    (meta, records)
}

fn check_golden(file: &str, version: FormatVersion) {
    let (meta, records) = golden_workload();
    let actual = encode_trace_with(&meta, &records, version);

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{file}"));
    if std::env::var("DDRACE_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun with DDRACE_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if actual != expected {
        let diverge = actual
            .iter()
            .zip(&expected)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| actual.len().min(expected.len()));
        panic!(
            "{version:?} trace bytes diverged from {} at offset {diverge} \
             (recorded {} bytes, golden {}) — a format change must add a \
             new FORMAT_VERSION and a new golden, regenerated with \
             DDRACE_UPDATE_GOLDEN=1",
            path.display(),
            actual.len(),
            expected.len()
        );
    }

    // The committed artifact must also decode back to exactly what was
    // recorded — each pin covers both directions of its codec.
    let (decoded_meta, decoded_records) =
        ddrace::decode_trace(&expected).expect("golden trace decodes");
    assert_eq!(decoded_meta, meta);
    assert_eq!(decoded_records, records);
}

#[test]
fn recorded_trace_matches_golden_bytes_v1() {
    check_golden("unprotected_counter.ddt", FormatVersion::V1);
}

#[test]
fn recorded_trace_matches_golden_bytes_v2() {
    check_golden("unprotected_counter_v2.ddt", FormatVersion::V2);
}

#[test]
fn default_encoding_is_the_newest_version() {
    let (meta, records) = golden_workload();
    assert_eq!(
        ddrace::encode_trace(&meta, &records),
        encode_trace_with(&meta, &records, FormatVersion::V2),
        "encode_trace must track the newest on-disk version"
    );
}
