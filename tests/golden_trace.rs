//! Golden-file byte pin of the `.ddt` trace format: the exact bytes a
//! fixed seeded workload records are committed under `tests/golden/`.
//! Any change to the header layout, tag assignment, or varint encoding
//! shows up as a diff against a reviewed artifact instead of silently
//! breaking previously-recorded corpora. Compatible changes bump
//! [`ddrace::trace::FORMAT_VERSION`] instead of editing version 1.
//!
//! To regenerate after an *intentional* format change (a version bump):
//!
//! ```text
//! DDRACE_UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```

use ddrace::{racy, AnalysisMode, Scale, SchedulerConfig, SimConfig, Simulation, TraceMeta};
use std::path::PathBuf;

#[test]
fn recorded_trace_matches_golden_bytes() {
    // unprotected_counter is the smallest racy kernel at TEST scale
    // (~45 KiB recorded), keeping the committed artifact light.
    let spec = racy::unprotected_counter();
    let mut cfg = SimConfig::new(4, AnalysisMode::demand_hitm());
    cfg.scheduler = SchedulerConfig {
        quantum: 32,
        seed: 42,
        jitter: true,
    };
    let (_, records) = Simulation::new(cfg)
        .run_recorded(spec.program(Scale::TEST, 42))
        .expect("golden workload runs clean");
    let meta = TraceMeta {
        source: "sim".to_string(),
        label: spec.name.clone(),
        seed: 42,
        fingerprint: ddrace::trace::fingerprint64(b"unprotected_counter/test/42/4/demand-hitm"),
    };
    let actual = ddrace::encode_trace(&meta, &records);

    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/unprotected_counter.ddt");
    if std::env::var("DDRACE_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun with DDRACE_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if actual != expected {
        let diverge = actual
            .iter()
            .zip(&expected)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| actual.len().min(expected.len()));
        panic!(
            "trace bytes diverged from {} at offset {diverge} \
             (recorded {} bytes, golden {}) — a format change must bump \
             FORMAT_VERSION and regenerate with DDRACE_UPDATE_GOLDEN=1",
            path.display(),
            actual.len(),
            expected.len()
        );
    }

    // The committed artifact must also decode back to exactly what was
    // recorded — the pin covers both directions of the codec.
    let (decoded_meta, decoded_records) =
        ddrace::decode_trace(&expected).expect("golden trace decodes");
    assert_eq!(decoded_meta, meta);
    assert_eq!(decoded_records, records);
}
