//! Cross-crate integration: what each detector and analysis mode catches.

use ddrace::{
    racy, AnalysisMode, DetectorKind, RaceKind, Scale, SimConfig, Simulation, ThreadId,
    WorkloadSpec,
};

fn run_with(
    spec: &WorkloadSpec,
    mode: AnalysisMode,
    kind: DetectorKind,
    seed: u64,
) -> ddrace::RunResult {
    let mut cfg = SimConfig::new(4, mode);
    cfg.detector_kind = kind;
    cfg.scheduler = ddrace::SchedulerConfig {
        quantum: 8,
        seed,
        jitter: true,
    };
    Simulation::new(cfg)
        .run(spec.program(Scale::TEST, seed))
        .unwrap()
}

#[test]
fn injected_races_found_by_continuous_analysis() {
    for base in [
        ddrace::phoenix::histogram(),
        ddrace::phoenix::kmeans(),
        ddrace::parsec::blackscholes(),
    ] {
        let spec = base.with_injected_race(100);
        let r = run_with(&spec, AnalysisMode::Continuous, DetectorKind::FastTrack, 5);
        assert!(
            r.races.distinct > 0,
            "{}: injected race invisible",
            spec.name
        );
        // The clean variant of the same program stays silent.
        let clean = run_with(&base, AnalysisMode::Continuous, DetectorKind::FastTrack, 5);
        assert_eq!(
            clean.races.distinct, 0,
            "{}: clean variant raced",
            base.name
        );
    }
}

#[test]
fn fasttrack_and_djit_agree_on_racy_variables() {
    for spec in racy::kernels() {
        let ft = run_with(&spec, AnalysisMode::Continuous, DetectorKind::FastTrack, 9);
        let dj = run_with(&spec, AnalysisMode::Continuous, DetectorKind::Djit, 9);
        let keys = |r: &ddrace::RunResult| {
            let mut v: Vec<u64> = r.races.reports.iter().map(|x| x.shadow_key).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        assert_eq!(keys(&ft), keys(&dj), "{}: detectors disagree", spec.name);
    }
}

#[test]
fn lockset_overreports_on_fork_join() {
    // word_count is fork/join-clean under HB but lockset cannot see those
    // edges — the documented false-positive mode of the baseline.
    let spec = ddrace::phoenix::word_count();
    let hb = run_with(&spec, AnalysisMode::Continuous, DetectorKind::FastTrack, 2);
    let ls = run_with(&spec, AnalysisMode::Continuous, DetectorKind::LockSet, 2);
    assert_eq!(hb.races.distinct, 0);
    assert!(
        ls.races.distinct >= hb.races.distinct,
        "lockset should never under-report here"
    );
}

#[test]
fn publication_race_has_the_right_shape() {
    let r = Simulation::new(SimConfig::new(2, AnalysisMode::Continuous))
        .run(racy::racy_publication(20))
        .unwrap();
    assert!(r.races.distinct >= 1);
    // At least one report involves the main (producer) thread writing.
    assert!(
        r.races
            .reports
            .iter()
            .any(|rep| rep.prior.tid == ThreadId::MAIN || rep.current.tid == ThreadId::MAIN),
        "{:?}",
        r.races.reports
    );
    // And the W→R shape appears (consumer read of producer data or flag).
    assert!(r
        .races
        .reports
        .iter()
        .any(|rep| rep.kind == RaceKind::WriteRead));
}

#[test]
fn safe_publication_is_clean_everywhere() {
    for kind in [DetectorKind::FastTrack, DetectorKind::Djit] {
        let mut cfg = SimConfig::new(2, AnalysisMode::Continuous);
        cfg.detector_kind = kind;
        let r = Simulation::new(cfg).run(racy::safe_publication()).unwrap();
        assert_eq!(r.races.distinct, 0, "{kind:?} flagged a correct program");
    }
}

#[test]
fn demand_misses_are_bounded_not_catastrophic() {
    // Across several seeds, demand-HITM flags the dense racy kernel every
    // time (sparse kernels may legitimately miss on some schedules).
    for seed in 0..5 {
        let r = run_with(
            &racy::unprotected_counter(),
            AnalysisMode::demand_hitm(),
            DetectorKind::FastTrack,
            seed,
        );
        assert!(r.races.distinct > 0, "seed {seed}: dense races missed");
    }
}

#[test]
fn more_injected_races_mean_more_reports() {
    let small = ddrace::phoenix::histogram().with_injected_race(20);
    let large = ddrace::phoenix::histogram().with_injected_race(400);
    let r_small = run_with(&small, AnalysisMode::Continuous, DetectorKind::FastTrack, 1);
    let r_large = run_with(&large, AnalysisMode::Continuous, DetectorKind::FastTrack, 1);
    assert!(r_large.races.occurrences > r_small.races.occurrences);
}
