//! # miniprop — a hermetic stand-in for the `proptest` API subset we use
//!
//! The ddrace property suites were written against [proptest]'s combinator
//! API. This crate reimplements exactly the subset they exercise —
//! [`Strategy`]/`prop_map`, integer-range and tuple strategies, [`Just`],
//! [`any`], [`collection::vec`], weighted [`prop_oneof!`], and the
//! [`proptest!`]/[`prop_assert!`] macros — on top of a seeded splitmix64
//! generator, so the suites run with **zero external dependencies** and are
//! fully deterministic: the same binary always generates the same cases.
//!
//! Deliberately out of scope: strategy-integrated shrinking (a failing
//! case prints its inputs instead), persistence files, and
//! `prop_flat_map`-style dependent strategies. Callers that need to
//! minimize a failing input can use the standalone [`shrink`] module,
//! which implements greedy delta-debugging over caller-supplied
//! candidate transformations.
//!
//! [proptest]: https://docs.rs/proptest

#![forbid(unsafe_code)]

pub mod shrink;

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Everything a property-test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// `proptest::collection` lookalike: strategies for collections.
pub mod collection {
    use super::*;

    /// A strategy for `Vec`s whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// Inclusive bounds on generated collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub(crate) min: usize,
        pub(crate) max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy produced by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.max - self.len.min) as u64 + 1;
            let n = self.len.min + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub use collection::SizeRange;

/// A deterministic splitmix64 generator backing case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator; the same seed yields the same stream.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator. Mirrors `proptest::strategy::Strategy` minus shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies can share a slot.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A reference-counted type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A weighted union of strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (weight, arm) in &self.arms {
            if pick < *weight as u64 {
                return arm.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.next_u64() % span) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + (rng.next_u64() % (span + 1)) as $ty
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Marker for [`any`], with generators for the primitive types we use.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full value range of a primitive type, like `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// How many cases a `proptest!` block runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than proptest's 256: these suites drive a full simulator
        // per case, and determinism means extra cases repeat exactly.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion, carrying the formatted message.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runs each property as a seeded loop over generated cases; on failure the
/// case index, seed, and assertion message are printed so the failing case
/// can be replayed exactly.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cases ($cfg) $($rest)*);
    };
    (@cases ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            // Stable per-test seed: test name bytes hashed with splitmix64.
            let mut seed = 0xDDAC_E000u64;
            for b in stringify!($name).bytes() {
                seed = seed.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
            }
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::seed_from_u64(seed.wrapping_add(case as u64));
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $arg;)+
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {case} (seed {seed:#x}): {e}",
                        stringify!($name)
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cases ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that fails the surrounding property case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that fails the surrounding property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// `assert_ne!` that fails the surrounding property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// A union of strategies; unweighted arms pick uniformly, `w => strat` arms
/// pick proportionally to `w`. Mirrors `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $((1u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use proptest::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let strat = proptest::collection::vec(0u64..100, 1..20);
        let mut a = proptest::TestRng::seed_from_u64(7);
        let mut b = proptest::TestRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = proptest::TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let w = (3u64..=9).generate(&mut rng);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn oneof_honours_weights() {
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = proptest::TestRng::seed_from_u64(2);
        let hits = (0..1000).filter(|_| strat.generate(&mut rng)).count();
        assert!(hits > 800, "expected ~900 true picks, got {hits}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_drives_cases(x in 0u32..10, flip in any::<bool>(), xs in proptest::collection::vec(0u8..4, 0..6)) {
            prop_assert!(x < 10);
            prop_assert_eq!(flip, flip);
            prop_assert!(xs.len() < 6);
        }
    }
}
