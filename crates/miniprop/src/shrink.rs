//! Greedy input shrinking (delta debugging) for failing test cases.
//!
//! Strategy-integrated shrinking — where every generator knows how to
//! simplify the values it produced — is deliberately out of scope for
//! miniprop (see the crate docs). What conformance fuzzers actually need
//! is simpler: given one failing input and a *domain-specific* list of
//! candidate simplifications, walk downhill while the failure persists.
//! That is this module.
//!
//! The algorithm is classic greedy delta debugging:
//!
//! 1. ask `candidates` for every one-step simplification of the current
//!    input (drop an element, unwrap a construct, halve a number, …);
//! 2. evaluate them in order; the **first** one that still fails becomes
//!    the new current input;
//! 3. repeat until no candidate fails (a local minimum) or the
//!    evaluation budget runs out.
//!
//! The result is deterministic: it depends only on the input, the order
//! `candidates` lists its simplifications, and the (pure) predicate.
//! Candidate lists should therefore be ordered most-aggressive-first
//! (drop a whole section before dropping one element) so large inputs
//! collapse in few evaluations.

/// Outcome of a [`shrink`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shrunk<T> {
    /// The smallest failing input found (the original input if no
    /// candidate reproduced the failure).
    pub value: T,
    /// How many candidate evaluations the predicate performed.
    pub evaluations: usize,
    /// How many shrinking steps were accepted (candidates that still
    /// failed and replaced the current input).
    pub steps: usize,
    /// True when the run stopped because the budget was exhausted rather
    /// than because a local minimum was reached.
    pub budget_exhausted: bool,
}

/// Greedily minimizes a failing `input` with an unlimited budget.
///
/// `fails` must return `true` for any input that reproduces the failure
/// under investigation; `input` itself is assumed to fail (it is never
/// re-evaluated). `candidates` maps an input to its one-step
/// simplifications, most aggressive first. See the module docs for the
/// algorithm.
pub fn shrink<T>(
    input: T,
    fails: impl FnMut(&T) -> bool,
    candidates: impl FnMut(&T) -> Vec<T>,
) -> Shrunk<T> {
    shrink_budgeted(input, fails, candidates, usize::MAX)
}

/// [`shrink`] with an upper bound on predicate evaluations.
///
/// Shrinking re-runs the (possibly expensive) failing scenario once per
/// candidate, so runaway candidate lists are bounded here rather than by
/// wall clock. When the budget runs out mid-pass the best input found so
/// far is returned with `budget_exhausted` set.
pub fn shrink_budgeted<T>(
    input: T,
    mut fails: impl FnMut(&T) -> bool,
    mut candidates: impl FnMut(&T) -> Vec<T>,
    budget: usize,
) -> Shrunk<T> {
    let mut current = input;
    let mut evaluations = 0usize;
    let mut steps = 0usize;
    loop {
        let mut advanced = false;
        for candidate in candidates(&current) {
            if evaluations >= budget {
                return Shrunk {
                    value: current,
                    evaluations,
                    steps,
                    budget_exhausted: true,
                };
            }
            evaluations += 1;
            if fails(&candidate) {
                current = candidate;
                steps += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return Shrunk {
                value: current,
                evaluations,
                steps,
                budget_exhausted: false,
            };
        }
    }
}

/// Candidate helper: every way to remove one element from `items`.
///
/// The usual backbone of a sequence shrinker; combine it with
/// domain-specific structural simplifications.
pub fn remove_each<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    (0..items.len())
        .map(|i| {
            let mut v = items.to_vec();
            v.remove(i);
            v
        })
        .collect()
}

/// Candidate helper: halve-then-decrement simplifications of an integer
/// towards `floor` (proptest's integer shrink order).
pub fn smaller_integers(value: u64, floor: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if value > floor {
        let half = floor + (value - floor) / 2;
        if half != value {
            out.push(half);
        }
        if value - 1 != half {
            out.push(value - 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_a_vec_to_the_failing_core() {
        // Failure: the vec contains both 3 and 7.
        let input = vec![1, 3, 5, 7, 9, 11];
        let result = shrink(
            input,
            |v: &Vec<i32>| v.contains(&3) && v.contains(&7),
            |v| remove_each(v),
        );
        assert_eq!(result.value, vec![3, 7]);
        assert!(!result.budget_exhausted);
        assert_eq!(result.steps, 4, "one accepted step per removed element");
    }

    #[test]
    fn returns_input_when_nothing_smaller_fails() {
        let result = shrink(vec![2, 4], |v: &Vec<i32>| v.len() == 2, |v| remove_each(v));
        assert_eq!(result.value, vec![2, 4]);
        assert_eq!(result.steps, 0);
        assert_eq!(result.evaluations, 2, "both removals were tried");
    }

    #[test]
    fn integer_shrinking_reaches_the_boundary() {
        // Failure: n >= 13. Greedy halving + decrement must land on 13.
        let result = shrink(
            1_000_000u64,
            |&n| n >= 13,
            |&n| smaller_integers(n, 0).into_iter().collect(),
        );
        assert_eq!(result.value, 13);
    }

    #[test]
    fn budget_stops_the_walk_and_reports_it() {
        let input: Vec<i32> = (0..100).collect();
        let result = shrink_budgeted(input, |v: &Vec<i32>| v.contains(&99), |v| remove_each(v), 5);
        assert!(result.budget_exhausted);
        assert_eq!(result.evaluations, 5);
        // Partial progress is kept: some prefix elements were dropped.
        assert!(result.value.len() < 100);
        assert!(result.value.contains(&99), "the result still fails");
    }

    #[test]
    fn determinism_same_inputs_same_walk() {
        let run = || {
            shrink(
                (0..40).collect::<Vec<i32>>(),
                |v: &Vec<i32>| v.iter().filter(|&&x| x % 3 == 0).count() >= 2,
                |v| remove_each(v),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.value.len(), 2);
    }

    #[test]
    fn smaller_integers_order_and_floor() {
        assert_eq!(smaller_integers(10, 0), vec![5, 9]);
        assert_eq!(smaller_integers(10, 8), vec![9]);
        assert_eq!(smaller_integers(8, 8), Vec::<u64>::new());
        assert_eq!(smaller_integers(1, 0), vec![0]);
    }
}
