//! Property-based tests for the happens-before detectors.

use ddrace_detector::{DetectorConfig, Djit, FastTrack, RaceDetector, RaceReportSet, VectorClock};
use ddrace_program::{AccessKind, Addr, LockId, Op, ThreadId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Access(u32, u64, AccessKind),
    Lock(u32, u32),
    Unlock(u32, u32),
}

/// A random schedule in which every access is wrapped `lock; access;
/// unlock` with a single global lock: by construction race-free.
fn arb_locked_schedule(threads: u32, len: usize) -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (
            0..threads,
            0..32u64,
            prop_oneof![Just(AccessKind::Read), Just(AccessKind::Write)],
        ),
        1..len,
    )
    .prop_map(|accesses| {
        let mut steps = Vec::new();
        for (t, a, k) in accesses {
            steps.push(Step::Lock(t, 0));
            steps.push(Step::Access(t, a, k));
            steps.push(Step::Unlock(t, 0));
        }
        steps
    })
}

/// A fully random schedule (locks optional and possibly inconsistent).
fn arb_wild_schedule(threads: u32, len: usize) -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (
                0..threads,
                0..24u64,
                prop_oneof![Just(AccessKind::Read), Just(AccessKind::Write)]
            )
                .prop_map(|(t, a, k)| Step::Access(t, a, k)),
            (0..threads, 0..3u32).prop_map(|(t, l)| Step::Lock(t, l)),
            (0..threads, 0..3u32).prop_map(|(t, l)| Step::Unlock(t, l)),
        ],
        1..len,
    )
    .prop_map(|steps| {
        // Make the lock usage well-formed per thread: drop unlocks of
        // locks not held and locks already held (re-entrancy).
        let mut held: std::collections::HashMap<(u32, u32), bool> = Default::default();
        steps
            .into_iter()
            .filter(|s| match s {
                Step::Lock(t, l) => {
                    let e = held.entry((*t, *l)).or_insert(false);
                    if *e {
                        false
                    } else {
                        *e = true;
                        true
                    }
                }
                Step::Unlock(t, l) => {
                    let e = held.entry((*t, *l)).or_insert(false);
                    if *e {
                        *e = false;
                        true
                    } else {
                        false
                    }
                }
                Step::Access(..) => true,
            })
            .collect()
    })
}

fn run<D: RaceDetector>(d: &mut D, threads: u32, steps: &[Step]) {
    d.on_thread_start(ThreadId(0), None);
    for t in 1..threads {
        d.on_thread_start(ThreadId(t), Some(ThreadId(0)));
    }
    for step in steps {
        match *step {
            Step::Access(t, a, k) => {
                d.on_access(ThreadId(t), Addr(0x1000 + a * 8), k);
            }
            Step::Lock(t, l) => d.on_sync(ThreadId(t), &Op::Lock { lock: LockId(l) }),
            Step::Unlock(t, l) => d.on_sync(ThreadId(t), &Op::Unlock { lock: LockId(l) }),
        }
    }
}

fn racy_keys(set: &RaceReportSet) -> Vec<u64> {
    let mut v: Vec<u64> = set.reports().iter().map(|r| r.shadow_key).collect();
    v.sort_unstable();
    v.dedup();
    v
}

proptest! {
    /// Globally-locked schedules are race-free under both HB detectors.
    /// Note: the schedule must be *possible* — our generator interleaves
    /// critical sections atomically (lock/access/unlock adjacent), so it
    /// is a legal execution of a correctly locked program.
    #[test]
    fn no_false_positives_under_global_lock(
        steps in arb_locked_schedule(4, 120),
    ) {
        let mut ft = FastTrack::new(DetectorConfig::default());
        run(&mut ft, 4, &steps);
        prop_assert!(ft.reports().is_empty(), "FastTrack false positive");
        let mut dj = Djit::new(DetectorConfig::default());
        run(&mut dj, 4, &steps);
        prop_assert!(dj.reports().is_empty(), "Djit false positive");
    }

    /// FastTrack and Djit flag exactly the same set of racy variables on
    /// arbitrary schedules (FastTrack's at-least-one-race-per-variable
    /// guarantee, checked against the exhaustive detector).
    #[test]
    fn fasttrack_matches_djit_on_racy_variables(
        steps in arb_wild_schedule(4, 150),
    ) {
        let mut ft = FastTrack::new(DetectorConfig::default());
        run(&mut ft, 4, &steps);
        let mut dj = Djit::new(DetectorConfig::default());
        run(&mut dj, 4, &steps);
        prop_assert_eq!(racy_keys(ft.reports()), racy_keys(dj.reports()));
    }

    /// Single-threaded schedules never race, never share.
    #[test]
    fn single_thread_is_silent(steps in arb_wild_schedule(1, 150)) {
        let mut ft = FastTrack::new(DetectorConfig::default());
        ft.on_thread_start(ThreadId(0), None);
        for step in &steps {
            match *step {
                Step::Access(_, a, k) => {
                    let r = ft.on_access(ThreadId(0), Addr(0x1000 + a * 8), k);
                    prop_assert!(!r.race);
                    prop_assert!(!r.shared);
                }
                Step::Lock(_, l) => ft.on_sync(ThreadId(0), &Op::Lock { lock: LockId(l) }),
                Step::Unlock(_, l) => ft.on_sync(ThreadId(0), &Op::Unlock { lock: LockId(l) }),
            }
        }
        prop_assert!(ft.reports().is_empty());
    }

    /// A planted unsynchronized write-write pair is always caught, no
    /// matter what synchronized noise surrounds it (the noise never uses
    /// the planted address and each noise access is globally locked).
    #[test]
    fn planted_race_is_always_found(
        noise in arb_locked_schedule(3, 80),
        split in 0usize..80,
    ) {
        // The racing pair runs on threads 3 and 4, which never touch the
        // noise's locks — noise synchronization must not order them.
        let planted = Addr(0xF000);
        let mut ft = FastTrack::new(DetectorConfig::default());
        ft.on_thread_start(ThreadId(0), None);
        for t in 1..5 {
            ft.on_thread_start(ThreadId(t), Some(ThreadId(0)));
        }
        let split = split.min(noise.len());
        let apply = |ft: &mut FastTrack, steps: &[Step]| {
            for step in steps {
                match *step {
                    Step::Access(t, a, k) => {
                        ft.on_access(ThreadId(t), Addr(0x1000 + a * 8), k);
                    }
                    Step::Lock(t, l) => ft.on_sync(ThreadId(t), &Op::Lock { lock: LockId(l) }),
                    Step::Unlock(t, l) => {
                        ft.on_sync(ThreadId(t), &Op::Unlock { lock: LockId(l) })
                    }
                }
            }
        };
        apply(&mut ft, &noise[..split]);
        ft.on_access(ThreadId(3), planted, AccessKind::Write);
        apply(&mut ft, &noise[split..]);
        let r = ft.on_access(ThreadId(4), planted, AccessKind::Write);
        prop_assert!(r.race, "planted race missed");
    }

    /// Vector-clock algebra: join is a least upper bound.
    #[test]
    fn vc_join_is_lub(
        a in proptest::collection::vec(0u32..100, 0..8),
        b in proptest::collection::vec(0u32..100, 0..8),
    ) {
        let mk = |v: &[u32]| {
            let mut vc = VectorClock::new();
            for (i, &c) in v.iter().enumerate() {
                vc.set(ThreadId(i as u32), c);
            }
            vc
        };
        let (va, vb) = (mk(&a), mk(&b));
        let mut j = va.clone();
        j.join(&vb);
        prop_assert!(va.happens_before(&j));
        prop_assert!(vb.happens_before(&j));
        // Minimality: any upper bound dominates the join.
        let mut ub = va.clone();
        ub.join(&vb);
        ub.join(&va);
        prop_assert_eq!(&j, &ub);
    }
}
