//! The common interface every race detector implements, plus shared
//! configuration and statistics.

use crate::report::RaceReportSet;
use ddrace_program::{AccessKind, Addr, BarrierId, Op, ThreadId};

/// Shadow-memory granularity: the unit at which accesses are checked.
///
/// Commercial detectors commonly shadow at 4- or 8-byte granularity;
/// line granularity trades false sharing for memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Granularity {
    /// Every byte is its own shadow unit.
    Byte,
    /// 8-byte units (the default; workload generators emit word-aligned
    /// accesses).
    #[default]
    Word,
    /// 64-byte cache-line units.
    Line,
}

impl Granularity {
    /// The right-shift that maps a byte address to its shadow key.
    pub fn shift(self) -> u32 {
        match self {
            Granularity::Byte => 0,
            Granularity::Word => 3,
            Granularity::Line => 6,
        }
    }

    /// Maps an address to its shadow key.
    pub fn key(self, addr: Addr) -> u64 {
        addr.0 >> self.shift()
    }
}

/// Configuration shared by all detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Shadow granularity.
    pub granularity: Granularity,
    /// Cap on *distinct* reports retained (repeat occurrences of known
    /// races are always counted). Prevents pathological blowup.
    pub max_reports: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            granularity: Granularity::Word,
            max_reports: 10_000,
        }
    }
}

/// What one checked access told the analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessReport {
    /// A (new or repeated) race was detected on this access.
    pub race: bool,
    /// The access touched data previously accessed by a different thread —
    /// the *software-observed sharing* signal the demand controller uses
    /// to decide when it is safe to switch analysis back off.
    pub shared: bool,
}

/// Work counters for a detector, used by the cost model and ablations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Memory accesses checked.
    pub accesses_checked: u64,
    /// Accesses handled by a same-epoch O(1) fast path.
    pub fast_path_hits: u64,
    /// Read states escalated from epoch to full vector clock.
    pub escalations: u64,
    /// Racy events observed (including duplicates).
    pub races_observed: u64,
    /// Sync operations processed.
    pub sync_ops: u64,
}

impl DetectorStats {
    /// Flushes these counters into the ambient [`ddrace_telemetry`] sink
    /// under `detector.*` names; a no-op outside a campaign job.
    ///
    /// `accesses_checked` is reported as `detector.shadow_ops`: every
    /// checked access is exactly one shadow-memory lookup/update.
    pub fn emit_telemetry(&self) {
        use ddrace_telemetry::counter;
        counter("detector.shadow_ops", self.accesses_checked);
        counter("detector.fast_path_hits", self.fast_path_hits);
        counter("detector.escalations", self.escalations);
        counter("detector.races_observed", self.races_observed);
        counter("detector.sync_ops", self.sync_ops);
    }
}

/// A dynamic data-race detector fed by the execution event stream.
///
/// Synchronization callbacks (`on_sync`, `on_barrier_release`, thread
/// lifecycle) must be invoked for the **whole** execution even while
/// memory-access analysis is disabled; `on_access` is only called for the
/// accesses the tool chooses to analyze. This split is exactly how the
/// paper's modified Inspector XE works: sync tracking is cheap and always
/// on, per-access instrumentation is the expensive part that demand-driven
/// analysis toggles.
pub trait RaceDetector {
    /// A thread became runnable; `parent` is `None` only for the root.
    fn on_thread_start(&mut self, tid: ThreadId, parent: Option<ThreadId>);

    /// A thread executed its last operation.
    fn on_thread_finish(&mut self, tid: ThreadId);

    /// A synchronization operation executed. Implementations must ignore
    /// non-sync ops so callers may forward everything.
    fn on_sync(&mut self, tid: ThreadId, op: &Op);

    /// A barrier released all its participants.
    fn on_barrier_release(&mut self, barrier: BarrierId, participants: &[ThreadId]);

    /// Checks one analyzed memory access.
    fn on_access(&mut self, tid: ThreadId, addr: Addr, kind: AccessKind) -> AccessReport;

    /// The races found so far.
    fn reports(&self) -> &RaceReportSet;

    /// Work counters.
    fn stats(&self) -> DetectorStats;

    /// A short name for tables ("fasttrack", "djit", "lockset").
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_keys() {
        assert_eq!(Granularity::Byte.key(Addr(0x47)), 0x47);
        assert_eq!(Granularity::Word.key(Addr(0x47)), 0x8);
        assert_eq!(Granularity::Line.key(Addr(0x47)), 0x1);
        assert_eq!(Granularity::default(), Granularity::Word);
    }

    #[test]
    fn word_granularity_groups_same_word() {
        let g = Granularity::Word;
        assert_eq!(g.key(Addr(0x40)), g.key(Addr(0x47)));
        assert_ne!(g.key(Addr(0x40)), g.key(Addr(0x48)));
    }

    #[test]
    fn default_config() {
        let c = DetectorConfig::default();
        assert_eq!(c.granularity, Granularity::Word);
        assert!(c.max_reports > 0);
    }
}

ddrace_json::json_unit_enum!(Granularity { Byte, Word, Line });
ddrace_json::json_struct!(DetectorConfig {
    granularity,
    max_reports
});
ddrace_json::json_struct!(DetectorStats {
    accesses_checked,
    fast_path_hits,
    escalations,
    races_observed,
    sync_ops
});
