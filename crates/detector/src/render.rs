//! Human-readable rendering of race reports, in the multi-line style of
//! ThreadSanitizer / Inspector summaries.

use crate::report::{RaceReport, RaceReportSet};
use std::fmt::Write as _;

/// Renders one report as a multi-line block.
///
/// # Examples
///
/// ```
/// use ddrace_detector::{render_report, RaceAccess, RaceKind, RaceReport};
/// use ddrace_program::{AccessKind, Addr, ThreadId};
///
/// let report = RaceReport {
///     addr: Addr(0x1040),
///     shadow_key: 0x208,
///     kind: RaceKind::WriteRead,
///     prior: RaceAccess { tid: ThreadId(0), kind: AccessKind::Write, clock: 1 },
///     current: RaceAccess { tid: ThreadId(1), kind: AccessKind::Read, clock: 1 },
/// };
/// let text = render_report(&report, 3);
/// assert!(text.contains("WARNING: data race"));
/// assert!(text.contains("0x1040"));
/// assert!(text.contains("3 occurrence(s)"));
/// ```
pub fn render_report(report: &RaceReport, occurrences: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "WARNING: data race ({}) at {}",
        report.kind, report.addr
    );
    let _ = writeln!(
        out,
        "  {} by thread {} at epoch {}  (the racing access)",
        capitalize(report.current.kind),
        report.current.tid,
        report.current.clock
    );
    let _ = writeln!(
        out,
        "  {} by thread {} at epoch {}  (unordered earlier access)",
        capitalize(report.prior.kind),
        report.prior.tid,
        report.prior.clock
    );
    let _ = writeln!(
        out,
        "  Shadow unit {:#x}; no happens-before edge connects the pair.",
        report.shadow_key
    );
    let _ = writeln!(out, "  Seen {occurrences} occurrence(s) of this pair.");
    out
}

/// Renders the whole set as a numbered summary.
pub fn render_summary(set: &RaceReportSet) -> String {
    if set.is_empty() {
        return "No data races detected.\n".to_string();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} distinct data race(s) on {} variable(s), {} racy event(s) total:\n",
        set.distinct(),
        set.distinct_addresses(),
        set.total_occurrences()
    );
    for (i, report) in set.reports().iter().enumerate() {
        let _ = writeln!(out, "#{} {}", i + 1, report);
    }
    out
}

fn capitalize(kind: ddrace_program::AccessKind) -> &'static str {
    match kind {
        ddrace_program::AccessKind::Read => "Read",
        ddrace_program::AccessKind::Write => "Write",
        ddrace_program::AccessKind::AtomicRmw => "Atomic RMW",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{RaceAccess, RaceKind};
    use ddrace_program::{AccessKind, Addr, ThreadId};

    fn report() -> RaceReport {
        RaceReport {
            addr: Addr(0x40),
            shadow_key: 8,
            kind: RaceKind::WriteWrite,
            prior: RaceAccess {
                tid: ThreadId(0),
                kind: AccessKind::Write,
                clock: 2,
            },
            current: RaceAccess {
                tid: ThreadId(1),
                kind: AccessKind::Write,
                clock: 3,
            },
        }
    }

    #[test]
    fn report_block_is_complete() {
        let text = render_report(&report(), 5);
        assert!(text.contains("WARNING"));
        assert!(text.contains("write-write"));
        assert!(text.contains("T0"));
        assert!(text.contains("T1"));
        assert!(text.contains("5 occurrence(s)"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn summary_counts_and_numbers() {
        let mut set = RaceReportSet::new();
        set.record(report());
        set.record(report());
        let text = render_summary(&set);
        assert!(text.contains("1 distinct"));
        assert!(text.contains("2 racy event(s)"));
        assert!(text.contains("#1"));
    }

    #[test]
    fn empty_summary() {
        assert_eq!(
            render_summary(&RaceReportSet::new()),
            "No data races detected.\n"
        );
    }
}
