//! Race reports and their deduplicated collection.

use ddrace_program::{AccessKind, Addr, ThreadId};
use std::collections::HashMap;
use std::fmt;

/// The temporal shape of a detected race: which unordered pair was seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaceKind {
    /// A write unordered with a prior write.
    WriteWrite,
    /// A read unordered with a prior write.
    WriteRead,
    /// A write unordered with a prior read.
    ReadWrite,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RaceKind::WriteWrite => "write-write",
            RaceKind::WriteRead => "write-read",
            RaceKind::ReadWrite => "read-write",
        };
        f.write_str(s)
    }
}

/// One side of a racy pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RaceAccess {
    /// The thread that performed the access.
    pub tid: ThreadId,
    /// What it did.
    pub kind: AccessKind,
    /// The thread's logical clock (epoch) at the access — the detector's
    /// timestamp, useful for relating reports to program phases. Zero
    /// when the detector does not track clocks (lockset).
    pub clock: u32,
}

/// A detected data race: two accesses to the same shadow unit, at least
/// one a write, with no happens-before edge between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceReport {
    /// Representative byte address (the first access observed racing).
    pub addr: Addr,
    /// The shadow-memory unit (address at detector granularity).
    pub shadow_key: u64,
    /// The pair's shape.
    pub kind: RaceKind,
    /// The earlier access of the pair.
    pub prior: RaceAccess,
    /// The access that exposed the race.
    pub current: RaceAccess,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} race on {}: {} {} vs {} {}",
            self.kind,
            self.addr,
            self.prior.tid,
            self.prior.kind,
            self.current.tid,
            self.current.kind
        )
    }
}

/// Deduplicated collection of race reports.
///
/// Commercial tools report each racy *program location* once; lacking code
/// locations, we deduplicate by `(shadow_key, kind, prior thread, current
/// thread)` and count repeat occurrences.
///
/// # Examples
///
/// ```
/// use ddrace_detector::{RaceReportSet, RaceReport, RaceKind, RaceAccess};
/// use ddrace_program::{AccessKind, Addr, ThreadId};
///
/// let mut set = RaceReportSet::new();
/// let report = RaceReport {
///     addr: Addr(0x40),
///     shadow_key: 8,
///     kind: RaceKind::WriteRead,
///     prior: RaceAccess { tid: ThreadId(0), kind: AccessKind::Write, clock: 1 },
///     current: RaceAccess { tid: ThreadId(1), kind: AccessKind::Read, clock: 1 },
/// };
/// assert!(set.record(report));   // new
/// assert!(!set.record(report));  // duplicate, merged
/// assert_eq!(set.distinct(), 1);
/// assert_eq!(set.total_occurrences(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RaceReportSet {
    reports: Vec<RaceReport>,
    occurrences: Vec<u64>,
    index: HashMap<(u64, RaceKind, ThreadId, ThreadId), usize>,
}

impl RaceReportSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a race. Returns `true` if it is a new distinct race,
    /// `false` if it merged into an existing report.
    pub fn record(&mut self, report: RaceReport) -> bool {
        let key = (
            report.shadow_key,
            report.kind,
            report.prior.tid,
            report.current.tid,
        );
        match self.index.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.occurrences[*e.get()] += 1;
                false
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.reports.len());
                self.reports.push(report);
                self.occurrences.push(1);
                true
            }
        }
    }

    /// Increments the occurrence count if an identical race is already
    /// recorded; otherwise drops the report. Used once a detector's
    /// distinct-report cap is reached. Returns `true` if it merged.
    pub fn merge_only(&mut self, report: &RaceReport) -> bool {
        let key = (
            report.shadow_key,
            report.kind,
            report.prior.tid,
            report.current.tid,
        );
        if let Some(&i) = self.index.get(&key) {
            self.occurrences[i] += 1;
            true
        } else {
            false
        }
    }

    /// All distinct reports, in first-detection order.
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// Occurrence counts aligned with [`reports`](Self::reports).
    pub fn occurrences(&self) -> &[u64] {
        &self.occurrences
    }

    /// Number of distinct races.
    pub fn distinct(&self) -> usize {
        self.reports.len()
    }

    /// Number of distinct shadow units (≈ variables) involved in races.
    pub fn distinct_addresses(&self) -> usize {
        let mut keys: Vec<u64> = self.reports.iter().map(|r| r.shadow_key).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// Total racy events observed, counting duplicates.
    pub fn total_occurrences(&self) -> u64 {
        self.occurrences.iter().sum()
    }

    /// Returns `true` if no race has been recorded.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }
}

/// The sorted, deduplicated shadow keys a slice of reports covers — the
/// *racy-variable set* of a run. This is the granularity at which
/// detector variants are expected to agree (each reports the first race
/// per variable against whatever prior access its metadata retained, so
/// exact pairs differ while the variable set must not), and the
/// granularity at which demand-driven analysis is a subset of
/// continuous. Differential oracles compare runs on it.
pub fn racy_keys(reports: &[RaceReport]) -> Vec<u64> {
    let mut keys: Vec<u64> = reports.iter().map(|r| r.shadow_key).collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(key: u64, kind: RaceKind, t0: u32, t1: u32) -> RaceReport {
        RaceReport {
            addr: Addr(key * 8),
            shadow_key: key,
            kind,
            prior: RaceAccess {
                tid: ThreadId(t0),
                kind: AccessKind::Write,
                clock: 1,
            },
            current: RaceAccess {
                tid: ThreadId(t1),
                kind: AccessKind::Read,
                clock: 1,
            },
        }
    }

    #[test]
    fn dedup_merges_same_pair() {
        let mut set = RaceReportSet::new();
        assert!(set.record(report(1, RaceKind::WriteRead, 0, 1)));
        assert!(!set.record(report(1, RaceKind::WriteRead, 0, 1)));
        assert_eq!(set.distinct(), 1);
        assert_eq!(set.total_occurrences(), 2);
        assert!(!set.is_empty());
    }

    #[test]
    fn different_kinds_are_distinct() {
        let mut set = RaceReportSet::new();
        set.record(report(1, RaceKind::WriteRead, 0, 1));
        set.record(report(1, RaceKind::WriteWrite, 0, 1));
        assert_eq!(set.distinct(), 2);
        assert_eq!(set.distinct_addresses(), 1);
    }

    #[test]
    fn different_threads_are_distinct() {
        let mut set = RaceReportSet::new();
        set.record(report(1, RaceKind::WriteRead, 0, 1));
        set.record(report(1, RaceKind::WriteRead, 2, 1));
        set.record(report(1, RaceKind::WriteRead, 0, 2));
        assert_eq!(set.distinct(), 3);
    }

    #[test]
    fn different_addresses_are_distinct() {
        let mut set = RaceReportSet::new();
        set.record(report(1, RaceKind::WriteRead, 0, 1));
        set.record(report(2, RaceKind::WriteRead, 0, 1));
        assert_eq!(set.distinct_addresses(), 2);
    }

    #[test]
    fn empty_set() {
        let set = RaceReportSet::new();
        assert!(set.is_empty());
        assert_eq!(set.distinct(), 0);
        assert_eq!(set.total_occurrences(), 0);
        assert_eq!(set.distinct_addresses(), 0);
        assert!(set.reports().is_empty());
    }

    #[test]
    fn racy_keys_sorts_and_dedups() {
        let reports = [
            report(9, RaceKind::WriteRead, 0, 1),
            report(2, RaceKind::WriteWrite, 0, 1),
            report(9, RaceKind::ReadWrite, 1, 0),
        ];
        assert_eq!(racy_keys(&reports), vec![2, 9]);
        assert_eq!(racy_keys(&[]), Vec::<u64>::new());
    }

    #[test]
    fn display_is_readable() {
        let r = report(1, RaceKind::WriteRead, 0, 1);
        let text = format!("{r}");
        assert!(text.contains("write-read"));
        assert!(text.contains("T0"));
        assert!(text.contains("T1"));
    }
}

ddrace_json::json_unit_enum!(RaceKind {
    WriteWrite,
    WriteRead,
    ReadWrite
});
ddrace_json::json_struct!(RaceAccess { tid, kind, clock });
ddrace_json::json_struct!(RaceReport {
    addr,
    shadow_key,
    kind,
    prior,
    current
});
