//! Dynamic data-race detectors for the ddrace reproduction of
//! *"Demand-driven software race detection using hardware performance
//! counters"* (Greathouse et al., ISCA 2011).
//!
//! The paper modifies the happens-before race detector inside Intel
//! Inspector XE. This crate provides that substrate from scratch:
//!
//! * [`FastTrack`] — the epoch-optimized happens-before detector
//!   (Flanagan & Freund), the algorithm class commercial tools use. This
//!   is the detector the demand-driven controller toggles.
//! * [`Djit`] — a full-vector-clock happens-before detector, the design
//!   point FastTrack improves on; kept for the A1 ablation.
//! * [`LockSet`] — an Eraser-style lockset detector as the classic
//!   pre-happens-before baseline.
//!
//! All three implement [`RaceDetector`]: synchronization callbacks stay on
//! for the whole run (cheap, keeps clocks correct), while per-access
//! checking — the expensive part — is invoked only for analyzed accesses.
//!
//! # Example
//!
//! ```
//! use ddrace_detector::{DetectorConfig, FastTrack, RaceDetector};
//! use ddrace_program::{AccessKind, Addr, LockId, Op, ThreadId};
//!
//! let mut d = FastTrack::new(DetectorConfig::default());
//! d.on_thread_start(ThreadId(0), None);
//! d.on_thread_start(ThreadId(1), Some(ThreadId(0)));
//!
//! // Lock-protected accesses: no race.
//! d.on_sync(ThreadId(0), &Op::Lock { lock: LockId(0) });
//! d.on_access(ThreadId(0), Addr(0x40), AccessKind::Write);
//! d.on_sync(ThreadId(0), &Op::Unlock { lock: LockId(0) });
//! d.on_sync(ThreadId(1), &Op::Lock { lock: LockId(0) });
//! let checked = d.on_access(ThreadId(1), Addr(0x40), AccessKind::Read);
//! assert!(!checked.race);
//! assert!(checked.shared); // ...but it *is* inter-thread sharing
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod detector;
mod djit;
mod fasttrack;
mod hb;
mod lockset;
mod render;
mod report;
mod vc;

pub use detector::{AccessReport, DetectorConfig, DetectorStats, Granularity, RaceDetector};
pub use djit::Djit;
pub use fasttrack::{FastTrack, FastTrackShard};
pub use hb::HbClocks;
pub use lockset::LockSet;
pub use render::{render_report, render_summary};
pub use report::{racy_keys, RaceAccess, RaceKind, RaceReport, RaceReportSet};
pub use vc::{Epoch, VectorClock, INLINE_THREADS};
