//! The FastTrack happens-before race detector (Flanagan & Freund, PLDI
//! 2009) — the algorithm class behind commercial tools like the Intel
//! Inspector XE detector the paper modifies.
//!
//! Per shadow unit, FastTrack keeps the last write as a scalar **epoch**
//! and the read state *adaptively*: a single epoch while one thread (or a
//! happens-after chain) reads, escalating to a full vector clock only for
//! genuinely concurrent read sharing. The common case is O(1).

use crate::detector::{AccessReport, DetectorConfig, DetectorStats, Granularity, RaceDetector};
use crate::hb::HbClocks;
use crate::report::{RaceAccess, RaceKind, RaceReport, RaceReportSet};
use crate::vc::{Epoch, VectorClock};
use ddrace_program::{AccessKind, Addr, BarrierId, Op, ThreadId};
use ddrace_shadow::ShadowTable;

/// Adaptive read representation.
///
/// The escalated clock is boxed so the common case — epoch reads — keeps
/// the whole shadow entry small enough for one cache line in the open
/// table; escalations are rare (see `DetectorStats::escalations`), so the
/// indirection is off the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ReadState {
    /// Reads are totally ordered; the last one suffices.
    Epoch(Epoch),
    /// Concurrent readers: full vector clock of last reads.
    Vc(Box<VectorClock>),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct VarState {
    write: Epoch,
    read: ReadState,
}

impl VarState {
    fn fresh() -> Self {
        VarState {
            write: Epoch::ZERO,
            read: ReadState::Epoch(Epoch::ZERO),
        }
    }
}

/// One address-sharded slice of FastTrack shadow state: the per-address
/// access history plus the per-access work counters its checks update.
///
/// [`FastTrack`] owns exactly one (covering the whole address space);
/// `ddrace-native`'s sharded monitor owns N behind per-shard locks, each
/// fed only the shadow keys that hash to it. The split keeps the race
/// rules in one place: a shard never touches clock state, so callers
/// decide how thread clocks are stored and locked.
///
/// The intended calling sequence per access is [`try_fast`]
/// (epoch-only, no vector clock needed) and, on a miss, [`check`] with
/// the thread's clock. Any race the check finds is *returned*, not
/// recorded — report collection is the caller's policy.
///
/// [`try_fast`]: FastTrackShard::try_fast
/// [`check`]: FastTrackShard::check
#[derive(Debug, Clone, Default)]
pub struct FastTrackShard {
    shadow: ShadowTable<VarState>,
    stats: DetectorStats,
}

impl FastTrackShard {
    /// Creates an empty shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shadow units currently tracked by this shard.
    pub fn len(&self) -> usize {
        self.shadow.len()
    }

    /// Returns `true` if the shard tracks no shadow units.
    pub fn is_empty(&self) -> bool {
        self.shadow.is_empty()
    }

    /// This shard's counters (`races_observed` and `sync_ops` stay zero:
    /// shards see neither reports nor sync ops).
    pub fn stats(&self) -> DetectorStats {
        self.stats
    }

    /// Same-epoch O(1) fast path: returns `Some` if `e`'s thread already
    /// performed an access at this epoch that makes the full check
    /// redundant (a read at `e` for reads, a write at `e` for writes).
    /// Counts the access; call it exactly once per access, before
    /// [`check`](FastTrackShard::check).
    pub fn try_fast(&mut self, key: u64, e: Epoch, kind: AccessKind) -> Option<AccessReport> {
        self.stats.accesses_checked += 1;
        let var = self.shadow.get(key)?;
        match kind {
            AccessKind::Read => {
                if let ReadState::Epoch(r) = var.read {
                    if r == e {
                        self.stats.fast_path_hits += 1;
                        let shared = !var.write.is_zero() && var.write.tid != e.tid;
                        return Some(AccessReport {
                            race: false,
                            shared,
                        });
                    }
                }
                None
            }
            AccessKind::Write | AccessKind::AtomicRmw => {
                if var.write == e {
                    self.stats.fast_path_hits += 1;
                    return Some(AccessReport {
                        race: false,
                        shared: false,
                    });
                }
                None
            }
        }
    }

    /// The full FastTrack access check against the thread's vector clock
    /// `tvc` (its epoch `e` passed alongside to avoid a lookup). Updates
    /// the shadow state and returns the access report plus the race, if
    /// any, for the caller to record.
    pub fn check(
        &mut self,
        tid: ThreadId,
        addr: Addr,
        key: u64,
        e: Epoch,
        tvc: &VectorClock,
        kind: AccessKind,
    ) -> (AccessReport, Option<RaceReport>) {
        match kind {
            AccessKind::Read => self.check_read(tid, addr, key, e, tvc),
            // Atomic RMWs are synchronization, not checked accesses; treat
            // a (mis-routed) RMW as its write half.
            AccessKind::Write | AccessKind::AtomicRmw => self.check_write(tid, addr, key, e, tvc),
        }
    }

    fn check_read(
        &mut self,
        tid: ThreadId,
        addr: Addr,
        key: u64,
        e: Epoch,
        tvc: &VectorClock,
    ) -> (AccessReport, Option<RaceReport>) {
        let var = self.shadow.get_or_insert_with(key, VarState::fresh);

        let shared = (!var.write.is_zero() && var.write.tid != tid)
            || match &var.read {
                ReadState::Epoch(r) => !r.is_zero() && r.tid != tid,
                ReadState::Vc(_) => true,
            };

        // Write→read race check.
        let race = if !var.write.visible_to(tvc) {
            let prior = var.write;
            Some(RaceReport {
                addr,
                shadow_key: key,
                kind: RaceKind::WriteRead,
                prior: RaceAccess {
                    tid: prior.tid,
                    kind: AccessKind::Write,
                    clock: prior.clock,
                },
                current: RaceAccess {
                    tid,
                    kind: AccessKind::Read,
                    clock: e.clock,
                },
            })
        } else {
            None
        };

        // Update read state.
        match &mut var.read {
            ReadState::Epoch(r) => {
                if r.visible_to(tvc) {
                    *r = e;
                } else {
                    // Concurrent with the previous reader: escalate.
                    let mut vc = VectorClock::new();
                    vc.set(r.tid, r.clock);
                    vc.set(tid, e.clock);
                    var.read = ReadState::Vc(Box::new(vc));
                    self.stats.escalations += 1;
                }
            }
            ReadState::Vc(vc) => vc.set(tid, e.clock),
        }

        (
            AccessReport {
                race: race.is_some(),
                shared,
            },
            race,
        )
    }

    fn check_write(
        &mut self,
        tid: ThreadId,
        addr: Addr,
        key: u64,
        e: Epoch,
        tvc: &VectorClock,
    ) -> (AccessReport, Option<RaceReport>) {
        let var = self.shadow.get_or_insert_with(key, VarState::fresh);

        let shared = (!var.write.is_zero() && var.write.tid != tid)
            || match &var.read {
                ReadState::Epoch(r) => !r.is_zero() && r.tid != tid,
                ReadState::Vc(_) => true,
            };

        // Write→write, then read→write.
        let race = if !var.write.visible_to(tvc) {
            Some(RaceReport {
                addr,
                shadow_key: key,
                kind: RaceKind::WriteWrite,
                prior: RaceAccess {
                    tid: var.write.tid,
                    kind: AccessKind::Write,
                    clock: var.write.clock,
                },
                current: RaceAccess {
                    tid,
                    kind: AccessKind::Write,
                    clock: e.clock,
                },
            })
        } else {
            match &var.read {
                ReadState::Epoch(r) if !r.visible_to(tvc) => Some(RaceReport {
                    addr,
                    shadow_key: key,
                    kind: RaceKind::ReadWrite,
                    prior: RaceAccess {
                        tid: r.tid,
                        kind: AccessKind::Read,
                        clock: r.clock,
                    },
                    current: RaceAccess {
                        tid,
                        kind: AccessKind::Write,
                        clock: e.clock,
                    },
                }),
                ReadState::Vc(vc) => vc.first_excess(tvc).map(|witness| RaceReport {
                    addr,
                    shadow_key: key,
                    kind: RaceKind::ReadWrite,
                    prior: RaceAccess {
                        tid: witness,
                        kind: AccessKind::Read,
                        clock: vc.get(witness),
                    },
                    current: RaceAccess {
                        tid,
                        kind: AccessKind::Write,
                        clock: e.clock,
                    },
                }),
                _ => None,
            }
        };

        // FastTrack write rules: record the write epoch; a shared read set
        // is discarded (subsequent reads rebuild it).
        var.write = e;
        if matches!(var.read, ReadState::Vc(_)) {
            var.read = ReadState::Epoch(Epoch::ZERO);
        }

        (
            AccessReport {
                race: race.is_some(),
                shared,
            },
            race,
        )
    }
}

/// The FastTrack detector.
///
/// # Examples
///
/// Two unsynchronized threads writing the same word race; adding a lock
/// removes the race:
///
/// ```
/// use ddrace_detector::{FastTrack, DetectorConfig, RaceDetector};
/// use ddrace_program::{AccessKind, Addr, ThreadId};
///
/// let mut d = FastTrack::new(DetectorConfig::default());
/// d.on_thread_start(ThreadId(0), None);
/// d.on_thread_start(ThreadId(1), Some(ThreadId(0)));
/// d.on_access(ThreadId(0), Addr(0x40), AccessKind::Write);
/// let r = d.on_access(ThreadId(1), Addr(0x40), AccessKind::Write);
/// assert!(r.race);
/// assert_eq!(d.reports().distinct(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FastTrack {
    clocks: HbClocks,
    shard: FastTrackShard,
    reports: RaceReportSet,
    races_observed: u64,
    sync_ops: u64,
    granularity: Granularity,
    max_reports: usize,
}

impl FastTrack {
    /// Creates a detector.
    pub fn new(config: DetectorConfig) -> Self {
        FastTrack {
            clocks: HbClocks::new(),
            shard: FastTrackShard::new(),
            reports: RaceReportSet::new(),
            races_observed: 0,
            sync_ops: 0,
            granularity: config.granularity,
            max_reports: config.max_reports,
        }
    }

    /// Shadow units currently tracked.
    pub fn shadow_size(&self) -> usize {
        self.shard.len()
    }

    fn record(&mut self, report: RaceReport) {
        self.races_observed += 1;
        if self.reports.distinct() < self.max_reports {
            self.reports.record(report);
        } else {
            // At the cap: still merge occurrences of known races, but
            // record no new distinct reports.
            self.reports.merge_only(&report);
        }
    }
}

impl RaceDetector for FastTrack {
    fn on_thread_start(&mut self, tid: ThreadId, parent: Option<ThreadId>) {
        self.clocks.on_thread_start(tid, parent);
    }

    fn on_thread_finish(&mut self, tid: ThreadId) {
        self.clocks.on_thread_finish(tid);
    }

    fn on_sync(&mut self, tid: ThreadId, op: &Op) {
        if op.is_sync() {
            self.sync_ops += 1;
        }
        self.clocks.on_sync(tid, op);
    }

    fn on_barrier_release(&mut self, barrier: BarrierId, participants: &[ThreadId]) {
        self.clocks.on_barrier_release(barrier, participants);
    }

    fn on_access(&mut self, tid: ThreadId, addr: Addr, kind: AccessKind) -> AccessReport {
        let key = self.granularity.key(addr);
        // Epoch-inline fast path: the current epoch is a single counter
        // read, so a same-epoch re-access returns without ever touching
        // the thread's full vector clock.
        let e = self.clocks.epoch(tid);
        if let Some(report) = self.shard.try_fast(key, e, kind) {
            return report;
        }
        // Slow path: borrow the vector clock (clocks and shard are
        // disjoint fields, so the borrows coexist without a clone).
        let tvc = self.clocks.thread(tid);
        let (report, race) = self.shard.check(tid, addr, key, e, tvc, kind);
        if let Some(race) = race {
            self.record(race);
        }
        report
    }

    fn reports(&self) -> &RaceReportSet {
        &self.reports
    }

    fn stats(&self) -> DetectorStats {
        let mut stats = self.shard.stats();
        stats.races_observed = self.races_observed;
        stats.sync_ops = self.sync_ops;
        stats
    }

    fn name(&self) -> &'static str {
        "fasttrack"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrace_program::LockId;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);
    const X: Addr = Addr(0x40);

    fn detector_with_threads(n: u32) -> FastTrack {
        let mut d = FastTrack::new(DetectorConfig::default());
        d.on_thread_start(T0, None);
        for i in 1..n {
            d.on_thread_start(ThreadId(i), Some(T0));
        }
        d
    }

    #[test]
    fn unsynchronized_write_write_races() {
        let mut d = detector_with_threads(2);
        assert!(!d.on_access(T0, X, AccessKind::Write).race);
        let r = d.on_access(T1, X, AccessKind::Write);
        assert!(r.race);
        assert!(r.shared);
        assert_eq!(d.reports().reports()[0].kind, RaceKind::WriteWrite);
    }

    #[test]
    fn unsynchronized_write_read_races() {
        let mut d = detector_with_threads(2);
        d.on_access(T0, X, AccessKind::Write);
        let r = d.on_access(T1, X, AccessKind::Read);
        assert!(r.race);
        assert_eq!(d.reports().reports()[0].kind, RaceKind::WriteRead);
    }

    #[test]
    fn unsynchronized_read_write_races() {
        let mut d = detector_with_threads(2);
        d.on_access(T0, X, AccessKind::Read);
        let r = d.on_access(T1, X, AccessKind::Write);
        assert!(r.race);
        assert_eq!(d.reports().reports()[0].kind, RaceKind::ReadWrite);
    }

    #[test]
    fn read_read_never_races() {
        let mut d = detector_with_threads(4);
        for t in 0..4 {
            assert!(!d.on_access(ThreadId(t), X, AccessKind::Read).race);
        }
        assert!(d.reports().is_empty());
        // Concurrent readers escalated the read state.
        assert!(d.stats().escalations >= 1);
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        let mut d = detector_with_threads(2);
        let l = LockId(0);
        d.on_sync(T0, &Op::Lock { lock: l });
        d.on_access(T0, X, AccessKind::Write);
        d.on_sync(T0, &Op::Unlock { lock: l });
        d.on_sync(T1, &Op::Lock { lock: l });
        let r = d.on_access(T1, X, AccessKind::Write);
        d.on_sync(T1, &Op::Unlock { lock: l });
        assert!(!r.race);
        assert!(r.shared, "lock-protected sharing is still sharing");
        assert!(d.reports().is_empty());
    }

    #[test]
    fn fork_join_ordering_prevents_race() {
        let mut d = FastTrack::new(DetectorConfig::default());
        d.on_thread_start(T0, None);
        d.on_access(T0, X, AccessKind::Write); // before fork
        d.on_thread_start(T1, Some(T0));
        assert!(
            !d.on_access(T1, X, AccessKind::Write).race,
            "fork edge orders"
        );
        d.on_thread_finish(T1);
        d.on_sync(T0, &Op::Join { child: T1 });
        assert!(
            !d.on_access(T0, X, AccessKind::Read).race,
            "join edge orders"
        );
        assert!(d.reports().is_empty());
    }

    #[test]
    fn barrier_separates_phases() {
        let mut d = detector_with_threads(2);
        d.on_access(T0, X, AccessKind::Write);
        let b = BarrierId(0);
        d.on_sync(
            T0,
            &Op::Barrier {
                barrier: b,
                participants: 2,
            },
        );
        d.on_sync(
            T1,
            &Op::Barrier {
                barrier: b,
                participants: 2,
            },
        );
        d.on_barrier_release(b, &[T0, T1]);
        assert!(!d.on_access(T1, X, AccessKind::Write).race);
        assert!(d.reports().is_empty());
    }

    #[test]
    fn same_epoch_accesses_take_fast_path() {
        let mut d = detector_with_threads(1);
        d.on_access(T0, X, AccessKind::Write);
        let before = d.stats().fast_path_hits;
        for _ in 0..10 {
            d.on_access(T0, X, AccessKind::Write);
        }
        assert_eq!(d.stats().fast_path_hits, before + 10);
    }

    #[test]
    fn private_data_is_not_shared() {
        let mut d = detector_with_threads(2);
        let r1 = d.on_access(T0, X, AccessKind::Write);
        assert!(!r1.shared);
        let r2 = d.on_access(T0, X, AccessKind::Read);
        assert!(!r2.shared);
    }

    #[test]
    fn shared_flag_without_race() {
        // T0 writes before forking T1: ordered (no race) but T1's read is
        // still inter-thread sharing.
        let mut d = FastTrack::new(DetectorConfig::default());
        d.on_thread_start(T0, None);
        d.on_access(T0, X, AccessKind::Write);
        d.on_thread_start(T1, Some(T0));
        let r = d.on_access(T1, X, AccessKind::Read);
        assert!(!r.race);
        assert!(r.shared);
    }

    #[test]
    fn duplicate_races_merge() {
        // Alternating unsynchronized writers race on every write (each is
        // unordered with the other thread's previous write); the same
        // (prior, current) pairs merge instead of growing the report set.
        let mut d = detector_with_threads(2);
        for _ in 0..5 {
            d.on_access(T0, X, AccessKind::Write);
            d.on_access(T1, X, AccessKind::Write);
        }
        assert_eq!(d.reports().distinct(), 2); // T0→T1 and T1→T0 pairs
        assert!(d.stats().races_observed >= 5);
        assert!(d.reports().total_occurrences() >= 5);
    }

    #[test]
    fn report_cap_limits_distinct_reports() {
        let mut d = FastTrack::new(DetectorConfig {
            max_reports: 3,
            ..DetectorConfig::default()
        });
        d.on_thread_start(T0, None);
        d.on_thread_start(T1, Some(T0));
        for i in 0..10u64 {
            d.on_access(T0, Addr(0x100 + i * 8), AccessKind::Write);
            d.on_access(T1, Addr(0x100 + i * 8), AccessKind::Write);
        }
        assert_eq!(d.reports().distinct(), 3);
        assert_eq!(d.stats().races_observed, 10);
    }

    #[test]
    fn write_after_shared_read_checks_all_readers() {
        let mut d = detector_with_threads(3);
        d.on_access(T1, X, AccessKind::Read);
        d.on_access(T2, X, AccessKind::Read);
        let r = d.on_access(T0, X, AccessKind::Write);
        assert!(r.race);
        assert_eq!(d.reports().reports()[0].kind, RaceKind::ReadWrite);
        // The witness is one of the concurrent readers.
        let witness = d.reports().reports()[0].prior.tid;
        assert!(witness == T1 || witness == T2);
    }

    #[test]
    fn granularity_affects_detection() {
        // Two different words on the same line: word granularity sees no
        // race, line granularity reports (false-sharing style) one.
        let mut word = detector_with_threads(2);
        word.on_access(T0, Addr(0x40), AccessKind::Write);
        assert!(!word.on_access(T1, Addr(0x48), AccessKind::Write).race);

        let mut line = FastTrack::new(DetectorConfig {
            granularity: Granularity::Line,
            ..DetectorConfig::default()
        });
        line.on_thread_start(T0, None);
        line.on_thread_start(T1, Some(T0));
        line.on_access(T0, Addr(0x40), AccessKind::Write);
        assert!(line.on_access(T1, Addr(0x48), AccessKind::Write).race);
    }

    #[test]
    fn atomic_rmw_through_on_sync_orders_plain_accesses() {
        // A flag-style publication: T0 writes data, RMWs flag; T1 RMWs
        // flag, reads data. No race.
        let mut d = detector_with_threads(2);
        let data = Addr(0x100);
        let flag = Addr(0x200);
        d.on_access(T0, data, AccessKind::Write);
        d.on_sync(T0, &Op::AtomicRmw { addr: flag });
        d.on_sync(T1, &Op::AtomicRmw { addr: flag });
        assert!(!d.on_access(T1, data, AccessKind::Read).race);
        assert!(d.reports().is_empty());
    }

    #[test]
    fn name_and_shadow_size() {
        let mut d = detector_with_threads(1);
        assert_eq!(d.name(), "fasttrack");
        assert_eq!(d.shadow_size(), 0);
        d.on_access(T0, X, AccessKind::Read);
        assert_eq!(d.shadow_size(), 1);
    }
}
