//! Vector clocks and epochs, the currency of happens-before analysis.
//!
//! Detectors allocate millions of clocks, and almost all executions have
//! few threads, so [`VectorClock`] stores up to [`INLINE_THREADS`]
//! components inline (no heap allocation) and spills to a `Vec` only
//! beyond that — the same small-size optimization production FastTrack
//! implementations use. Equality and hashing are *semantic*: trailing
//! zero components never distinguish two clocks.

use ddrace_program::ThreadId;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Number of thread components a clock stores without heap allocation.
pub const INLINE_THREADS: usize = 8;

#[derive(Debug, Clone)]
enum Repr {
    Inline {
        len: u8,
        vals: [u32; INLINE_THREADS],
    },
    Heap(Vec<u32>),
}

/// A vector clock: for each thread, the last "time" of that thread known
/// to the owner. Grows lazily as higher thread ids appear; missing entries
/// are zero.
///
/// # Examples
///
/// ```
/// use ddrace_detector::VectorClock;
/// use ddrace_program::ThreadId;
///
/// let mut a = VectorClock::new();
/// a.increment(ThreadId(0));
/// let mut b = VectorClock::new();
/// b.increment(ThreadId(1));
/// b.join(&a);
/// assert_eq!(b.get(ThreadId(0)), 1);
/// assert_eq!(b.get(ThreadId(1)), 1);
/// assert!(a.happens_before(&b));
/// assert!(!b.happens_before(&a));
/// ```
#[derive(Debug, Clone)]
pub struct VectorClock {
    repr: Repr,
}

impl VectorClock {
    /// Creates the zero clock.
    pub fn new() -> Self {
        VectorClock {
            repr: Repr::Inline {
                len: 0,
                vals: [0; INLINE_THREADS],
            },
        }
    }

    fn as_slice(&self) -> &[u32] {
        match &self.repr {
            Repr::Inline { len, vals } => &vals[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Ensures at least `width` components are addressable, spilling to
    /// the heap if the inline capacity is exceeded.
    fn grow_to(&mut self, width: usize) {
        match &mut self.repr {
            Repr::Inline { len, vals } => {
                if width <= INLINE_THREADS {
                    if width > *len as usize {
                        *len = width as u8;
                    }
                } else {
                    let mut v = vals[..*len as usize].to_vec();
                    v.resize(width, 0);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => {
                if v.len() < width {
                    v.resize(width, 0);
                }
            }
        }
    }

    fn slot_mut(&mut self, index: usize) -> &mut u32 {
        self.grow_to(index + 1);
        match &mut self.repr {
            Repr::Inline { vals, .. } => &mut vals[index],
            Repr::Heap(v) => &mut v[index],
        }
    }

    /// The component for `tid` (zero if never set).
    pub fn get(&self, tid: ThreadId) -> u32 {
        self.as_slice().get(tid.index()).copied().unwrap_or(0)
    }

    /// Sets the component for `tid`.
    pub fn set(&mut self, tid: ThreadId, value: u32) {
        *self.slot_mut(tid.index()) = value;
    }

    /// Increments the component for `tid` and returns the new value.
    pub fn increment(&mut self, tid: ThreadId) -> u32 {
        let slot = self.slot_mut(tid.index());
        *slot += 1;
        *slot
    }

    /// Pointwise maximum with `other` (the ⊔ operation).
    pub fn join(&mut self, other: &VectorClock) {
        let theirs = other.as_slice();
        self.grow_to(theirs.len());
        let mine = match &mut self.repr {
            Repr::Inline { len, vals } => &mut vals[..*len as usize],
            Repr::Heap(v) => v.as_mut_slice(),
        };
        for (m, &t) in mine.iter_mut().zip(theirs) {
            *m = (*m).max(t);
        }
    }

    /// Returns `true` if every component of `self` is ≤ the corresponding
    /// component of `other` (self ⊑ other): everything `self` knows,
    /// `other` knows.
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        let theirs = other.as_slice();
        self.as_slice()
            .iter()
            .enumerate()
            .all(|(i, &c)| c <= theirs.get(i).copied().unwrap_or(0))
    }

    /// The first thread whose component in `self` exceeds `other`'s, if
    /// any — i.e. a witness that `self ⋢ other`.
    pub fn first_excess(&self, other: &VectorClock) -> Option<ThreadId> {
        let theirs = other.as_slice();
        self.as_slice().iter().enumerate().find_map(|(i, &c)| {
            (c > theirs.get(i).copied().unwrap_or(0)).then(|| ThreadId::new(i as u32))
        })
    }

    /// Number of addressable components (threads seen).
    pub fn width(&self) -> usize {
        self.as_slice().len()
    }

    /// Returns `true` if this clock has spilled to heap storage (more
    /// than [`INLINE_THREADS`] components). Exposed for tests and
    /// benchmarks.
    pub fn is_heap_allocated(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }

    /// Returns `true` if all components are zero.
    pub fn is_zero(&self) -> bool {
        self.as_slice().iter().all(|&c| c == 0)
    }

    /// Clears all components to zero.
    pub fn clear(&mut self) {
        self.repr = Repr::Inline {
            len: 0,
            vals: [0; INLINE_THREADS],
        };
    }

    /// The slice without trailing zeros: the canonical form used for
    /// equality and hashing.
    fn canonical(&self) -> &[u32] {
        let s = self.as_slice();
        let last = s.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
        &s[..last]
    }
}

impl Default for VectorClock {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for VectorClock {
    fn eq(&self, other: &Self) -> bool {
        self.canonical() == other.canonical()
    }
}

impl Eq for VectorClock {}

impl Hash for VectorClock {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.canonical().hash(state);
    }
}

impl ddrace_json::ToJson for VectorClock {
    fn to_json(&self) -> ddrace_json::Value {
        ddrace_json::Value::Array(
            self.canonical()
                .iter()
                .map(|&c| ddrace_json::Value::UInt(u64::from(c)))
                .collect(),
        )
    }
}

impl ddrace_json::FromJson for VectorClock {
    fn from_json(value: &ddrace_json::Value) -> Result<Self, ddrace_json::JsonError> {
        let vals = Vec::<u32>::from_json(value)?;
        let mut vc = VectorClock::new();
        for (i, v) in vals.into_iter().enumerate() {
            vc.set(ThreadId::new(i as u32), v);
        }
        Ok(vc)
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("⟨")?;
        for (i, c) in self.as_slice().iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{c}")?;
        }
        f.write_str("⟩")
    }
}

/// A scalar "epoch": one thread's clock value, FastTrack's compressed
/// representation for exclusively-accessed variables.
///
/// `Epoch::ZERO` is the bottom element (clock 0 is never a real epoch:
/// live threads start at clock 1).
///
/// # Examples
///
/// ```
/// use ddrace_detector::{Epoch, VectorClock};
/// use ddrace_program::ThreadId;
///
/// let mut vc = VectorClock::new();
/// vc.set(ThreadId(2), 7);
/// let e = Epoch::new(ThreadId(2), 7);
/// assert!(e.visible_to(&vc));
/// assert!(Epoch::ZERO.visible_to(&vc));
/// assert!(!Epoch::new(ThreadId(2), 8).visible_to(&vc));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Epoch {
    /// The thread that produced this epoch.
    pub tid: ThreadId,
    /// That thread's clock at the time.
    pub clock: u32,
}

impl Epoch {
    /// The bottom epoch: precedes everything.
    pub const ZERO: Epoch = Epoch {
        tid: ThreadId(0),
        clock: 0,
    };

    /// Creates an epoch.
    pub fn new(tid: ThreadId, clock: u32) -> Self {
        Epoch { tid, clock }
    }

    /// The current epoch of `tid` according to its vector clock.
    pub fn of(tid: ThreadId, vc: &VectorClock) -> Self {
        Epoch {
            tid,
            clock: vc.get(tid),
        }
    }

    /// Returns `true` if this epoch happens-before (or equals) the state
    /// summarized by `vc` — i.e. `vc` has seen it.
    pub fn visible_to(&self, vc: &VectorClock) -> bool {
        self.clock <= vc.get(self.tid)
    }

    /// Returns `true` if this is the bottom epoch.
    pub fn is_zero(&self) -> bool {
        self.clock == 0
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.clock, self.tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    #[test]
    fn get_set_increment() {
        let mut vc = VectorClock::new();
        assert_eq!(vc.get(T2), 0);
        assert_eq!(vc.increment(T2), 1);
        assert_eq!(vc.increment(T2), 2);
        assert_eq!(vc.get(T2), 2);
        assert_eq!(vc.get(T0), 0);
        vc.set(T0, 5);
        assert_eq!(vc.get(T0), 5);
        assert_eq!(vc.width(), 3);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(T0, 3);
        a.set(T1, 1);
        let mut b = VectorClock::new();
        b.set(T1, 4);
        b.set(T2, 2);
        a.join(&b);
        assert_eq!(a.get(T0), 3);
        assert_eq!(a.get(T1), 4);
        assert_eq!(a.get(T2), 2);
    }

    #[test]
    fn join_is_idempotent_and_commutative() {
        let mut a = VectorClock::new();
        a.set(T0, 3);
        let mut b = VectorClock::new();
        b.set(T1, 2);
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        assert_eq!(ab, ba);
        let mut abb = ab.clone();
        abb.join(&b);
        assert_eq!(ab, abb);
    }

    #[test]
    fn happens_before_ordering() {
        let mut a = VectorClock::new();
        a.set(T0, 1);
        let mut b = a.clone();
        b.set(T1, 1);
        assert!(a.happens_before(&b));
        assert!(!b.happens_before(&a));
        assert!(a.happens_before(&a));
        // Concurrent clocks: neither dominates.
        let mut c = VectorClock::new();
        c.set(T1, 5);
        assert!(!b.happens_before(&c));
        assert!(!c.happens_before(&b));
    }

    #[test]
    fn first_excess_identifies_witness() {
        let mut a = VectorClock::new();
        a.set(T1, 5);
        let mut b = VectorClock::new();
        b.set(T1, 3);
        assert_eq!(a.first_excess(&b), Some(T1));
        assert_eq!(b.first_excess(&a), None);
    }

    #[test]
    fn zero_clock_behaviour() {
        let vc = VectorClock::new();
        assert!(vc.is_zero());
        assert!(vc.happens_before(&VectorClock::new()));
        let mut other = VectorClock::new();
        other.set(T0, 1);
        assert!(vc.happens_before(&other));
        let mut cleared = other.clone();
        cleared.clear();
        assert!(cleared.is_zero());
    }

    #[test]
    fn inline_storage_until_nine_threads() {
        let mut vc = VectorClock::new();
        for i in 0..8 {
            vc.set(ThreadId(i), i + 1);
            assert!(!vc.is_heap_allocated(), "thread {i} should stay inline");
        }
        vc.set(ThreadId(8), 9);
        assert!(vc.is_heap_allocated());
        // Contents survive the spill.
        for i in 0..9 {
            assert_eq!(vc.get(ThreadId(i)), i + 1);
        }
    }

    #[test]
    fn join_spills_when_other_is_wide() {
        let mut wide = VectorClock::new();
        wide.set(ThreadId(20), 7);
        let mut narrow = VectorClock::new();
        narrow.set(T0, 1);
        narrow.join(&wide);
        assert!(narrow.is_heap_allocated());
        assert_eq!(narrow.get(ThreadId(20)), 7);
        assert_eq!(narrow.get(T0), 1);
    }

    #[test]
    fn equality_ignores_trailing_zeros() {
        let mut a = VectorClock::new();
        a.set(T0, 1);
        let mut b = VectorClock::new();
        b.set(T0, 1);
        b.set(ThreadId(30), 5);
        b.set(ThreadId(30), 0); // explicit zero beyond a's width
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        let h = |vc: &VectorClock| {
            let mut hasher = DefaultHasher::new();
            vc.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn json_roundtrip() {
        let mut vc = VectorClock::new();
        vc.set(T1, 2);
        vc.set(ThreadId(12), 9);
        let json = ddrace_json::to_string(&vc).unwrap();
        let back: VectorClock = ddrace_json::from_str(&json).unwrap();
        assert_eq!(back, vc);
    }

    #[test]
    fn epoch_visibility() {
        let mut vc = VectorClock::new();
        vc.set(T1, 3);
        assert!(Epoch::new(T1, 3).visible_to(&vc));
        assert!(Epoch::new(T1, 2).visible_to(&vc));
        assert!(!Epoch::new(T1, 4).visible_to(&vc));
        assert!(!Epoch::new(T2, 1).visible_to(&vc));
        assert!(Epoch::ZERO.visible_to(&VectorClock::new()));
        assert!(Epoch::ZERO.is_zero());
        assert!(!Epoch::new(T1, 3).is_zero());
    }

    #[test]
    fn epoch_of_reads_current_component() {
        let mut vc = VectorClock::new();
        vc.set(T1, 9);
        assert_eq!(Epoch::of(T1, &vc), Epoch::new(T1, 9));
    }

    #[test]
    fn displays() {
        let mut vc = VectorClock::new();
        vc.set(T1, 2);
        assert_eq!(format!("{vc}"), "⟨0,2⟩");
        assert_eq!(format!("{}", Epoch::new(T1, 2)), "2@T1");
    }
}

ddrace_json::json_struct!(Epoch { tid, clock });
