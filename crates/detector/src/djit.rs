//! A Djit⁺-style happens-before detector keeping **full vector clocks**
//! per shadow unit for both reads and writes.
//!
//! Detects exactly the same first races as [FastTrack](crate::FastTrack)
//! but pays O(threads) space and join time on every access — the design
//! point FastTrack's epochs optimize away. Kept as the ablation baseline
//! for experiment A1.

use crate::detector::{AccessReport, DetectorConfig, DetectorStats, Granularity, RaceDetector};
use crate::hb::HbClocks;
use crate::report::{RaceAccess, RaceKind, RaceReport, RaceReportSet};
use crate::vc::VectorClock;
use ddrace_program::{AccessKind, Addr, BarrierId, Op, ThreadId};
use ddrace_shadow::ShadowTable;

#[derive(Debug, Clone, Default)]
struct VarState {
    reads: VectorClock,
    writes: VectorClock,
    last_writer: Option<ThreadId>,
}

/// The full-vector-clock detector.
///
/// # Examples
///
/// ```
/// use ddrace_detector::{Djit, DetectorConfig, RaceDetector};
/// use ddrace_program::{AccessKind, Addr, ThreadId};
///
/// let mut d = Djit::new(DetectorConfig::default());
/// d.on_thread_start(ThreadId(0), None);
/// d.on_thread_start(ThreadId(1), Some(ThreadId(0)));
/// d.on_access(ThreadId(0), Addr(0x40), AccessKind::Write);
/// assert!(d.on_access(ThreadId(1), Addr(0x40), AccessKind::Read).race);
/// ```
#[derive(Debug, Clone)]
pub struct Djit {
    clocks: HbClocks,
    shadow: ShadowTable<VarState>,
    reports: RaceReportSet,
    stats: DetectorStats,
    granularity: Granularity,
    max_reports: usize,
}

impl Djit {
    /// Creates a detector.
    pub fn new(config: DetectorConfig) -> Self {
        Djit {
            clocks: HbClocks::new(),
            shadow: ShadowTable::new(),
            reports: RaceReportSet::new(),
            stats: DetectorStats::default(),
            granularity: config.granularity,
            max_reports: config.max_reports,
        }
    }

    /// Shadow units currently tracked.
    pub fn shadow_size(&self) -> usize {
        self.shadow.len()
    }

    fn record(&mut self, report: RaceReport) {
        self.stats.races_observed += 1;
        if self.reports.distinct() < self.max_reports {
            self.reports.record(report);
        } else {
            self.reports.merge_only(&report);
        }
    }
}

impl RaceDetector for Djit {
    fn on_thread_start(&mut self, tid: ThreadId, parent: Option<ThreadId>) {
        self.clocks.on_thread_start(tid, parent);
    }

    fn on_thread_finish(&mut self, tid: ThreadId) {
        self.clocks.on_thread_finish(tid);
    }

    fn on_sync(&mut self, tid: ThreadId, op: &Op) {
        if op.is_sync() {
            self.stats.sync_ops += 1;
        }
        self.clocks.on_sync(tid, op);
    }

    fn on_barrier_release(&mut self, barrier: BarrierId, participants: &[ThreadId]) {
        self.clocks.on_barrier_release(barrier, participants);
    }

    fn on_access(&mut self, tid: ThreadId, addr: Addr, kind: AccessKind) -> AccessReport {
        self.stats.accesses_checked += 1;
        let key = self.granularity.key(addr);
        // Borrow rather than clone the thread clock: clocks and shadow are
        // disjoint fields, so the borrows coexist.
        let tvc = self.clocks.thread(tid);
        let my_clock = tvc.get(tid);
        let var = self.shadow.get_or_insert_with(key, VarState::default);

        let shared = var.last_writer.is_some_and(|w| w != tid)
            || (0..var.reads.width() as u32).any(|u| u != tid.0 && var.reads.get(ThreadId(u)) > 0);

        let mut race = None;
        if let Some(witness) = var.writes.first_excess(tvc) {
            // An unordered prior write.
            race = Some(RaceReport {
                addr,
                shadow_key: key,
                kind: if kind.is_write() {
                    RaceKind::WriteWrite
                } else {
                    RaceKind::WriteRead
                },
                prior: RaceAccess {
                    tid: witness,
                    kind: AccessKind::Write,
                    clock: var.writes.get(witness),
                },
                current: RaceAccess {
                    tid,
                    kind,
                    clock: my_clock,
                },
            });
        } else if kind.is_write() {
            if let Some(witness) = var.reads.first_excess(tvc) {
                race = Some(RaceReport {
                    addr,
                    shadow_key: key,
                    kind: RaceKind::ReadWrite,
                    prior: RaceAccess {
                        tid: witness,
                        kind: AccessKind::Read,
                        clock: var.reads.get(witness),
                    },
                    current: RaceAccess {
                        tid,
                        kind,
                        clock: my_clock,
                    },
                });
            }
        }

        if kind.is_write() {
            var.writes.set(tid, my_clock);
            var.last_writer = Some(tid);
        } else {
            var.reads.set(tid, my_clock);
        }

        let raced = race.is_some();
        if let Some(report) = race {
            self.record(report);
        }
        AccessReport {
            race: raced,
            shared,
        }
    }

    fn reports(&self) -> &RaceReportSet {
        &self.reports
    }

    fn stats(&self) -> DetectorStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "djit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrace_program::LockId;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const X: Addr = Addr(0x40);

    fn pair() -> Djit {
        let mut d = Djit::new(DetectorConfig::default());
        d.on_thread_start(T0, None);
        d.on_thread_start(T1, Some(T0));
        d
    }

    #[test]
    fn detects_all_three_race_kinds() {
        let mut d = pair();
        d.on_access(T0, X, AccessKind::Write);
        assert!(d.on_access(T1, X, AccessKind::Read).race);

        let mut d = pair();
        d.on_access(T0, X, AccessKind::Write);
        assert!(d.on_access(T1, X, AccessKind::Write).race);
        assert_eq!(d.reports().reports()[0].kind, RaceKind::WriteWrite);

        let mut d = pair();
        d.on_access(T0, X, AccessKind::Read);
        assert!(d.on_access(T1, X, AccessKind::Write).race);
        assert_eq!(d.reports().reports()[0].kind, RaceKind::ReadWrite);
    }

    #[test]
    fn read_read_is_fine() {
        let mut d = pair();
        d.on_access(T0, X, AccessKind::Read);
        assert!(!d.on_access(T1, X, AccessKind::Read).race);
    }

    #[test]
    fn lock_discipline_prevents_races() {
        let mut d = pair();
        let l = LockId(0);
        d.on_sync(T0, &Op::Lock { lock: l });
        d.on_access(T0, X, AccessKind::Write);
        d.on_sync(T0, &Op::Unlock { lock: l });
        d.on_sync(T1, &Op::Lock { lock: l });
        let r = d.on_access(T1, X, AccessKind::Write);
        assert!(!r.race);
        assert!(r.shared);
    }

    #[test]
    fn agrees_with_fasttrack_on_racy_variables() {
        use crate::fasttrack::FastTrack;
        // FastTrack guarantees detecting *at least one* race per racy
        // variable, not every racy access (its same-epoch write fast path
        // deliberately skips re-checks). So the detectors are compared on
        // the set of racy shadow units, not per-access verdicts.
        let script: Vec<(ThreadId, Addr, AccessKind)> = vec![
            (T0, Addr(0x40), AccessKind::Write),
            (T1, Addr(0x48), AccessKind::Write),
            (T1, Addr(0x40), AccessKind::Read), // races with T0's write
            (T0, Addr(0x48), AccessKind::Read), // races with T1's write
            (T0, Addr(0x40), AccessKind::Write), // own data again
            (T1, Addr(0x50), AccessKind::Read),
            (T0, Addr(0x50), AccessKind::Write), // read-write race
            (T0, Addr(0x58), AccessKind::Write), // private, clean
            (T0, Addr(0x58), AccessKind::Read),
        ];
        let mut ft = FastTrack::new(DetectorConfig::default());
        let mut dj = Djit::new(DetectorConfig::default());
        for d in [
            &mut ft as &mut dyn RaceDetector,
            &mut dj as &mut dyn RaceDetector,
        ] {
            d.on_thread_start(T0, None);
            d.on_thread_start(T1, Some(T0));
            for &(t, a, k) in &script {
                d.on_access(t, a, k);
            }
        }
        let keys = |set: &RaceReportSet| crate::report::racy_keys(set.reports());
        assert_eq!(keys(ft.reports()), keys(dj.reports()));
        assert_eq!(ft.reports().distinct_addresses(), 3);
    }

    #[test]
    fn name_and_counters() {
        let mut d = pair();
        assert_eq!(d.name(), "djit");
        d.on_access(T0, X, AccessKind::Read);
        assert_eq!(d.stats().accesses_checked, 1);
        assert_eq!(d.shadow_size(), 1);
    }
}
