//! An Eraser-style lockset detector (Savage et al., SOSP 1997): the
//! classic pre-happens-before baseline.
//!
//! Tracks, per shadow unit, the set of locks consistently held across all
//! accesses; an empty candidate set on a written-and-shared variable is
//! reported as a race. Lockset analysis ignores fork/join and barrier
//! ordering, so it *over-reports* on structured parallel programs — the
//! known trade-off that pushed commercial tools to happens-before, and a
//! useful accuracy foil in experiments.

use crate::detector::{AccessReport, DetectorConfig, DetectorStats, Granularity, RaceDetector};
use crate::report::{RaceAccess, RaceKind, RaceReport, RaceReportSet};
use ddrace_program::{AccessKind, Addr, BarrierId, LockId, Op, ThreadId};
use std::collections::{HashMap, HashSet};

/// Eraser's per-variable state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    /// Never accessed.
    Virgin,
    /// Accessed by exactly one thread so far.
    Exclusive(ThreadId),
    /// Read by multiple threads, never written after becoming shared.
    Shared,
    /// Written while shared: races are reportable.
    SharedModified,
}

#[derive(Debug, Clone)]
struct VarState {
    phase: Phase,
    /// Candidate locks. `None` = "all locks" (not yet refined).
    candidates: Option<HashSet<LockId>>,
    /// Last accessor, for report attribution.
    last: RaceAccess,
    /// Already reported (Eraser reports each variable once).
    reported: bool,
}

impl VarState {
    fn fresh() -> Self {
        VarState {
            phase: Phase::Virgin,
            candidates: None,
            last: RaceAccess {
                tid: ThreadId(0),
                kind: AccessKind::Read,
                clock: 0,
            },
            reported: false,
        }
    }
}

/// The lockset detector.
///
/// # Examples
///
/// ```
/// use ddrace_detector::{LockSet, DetectorConfig, RaceDetector};
/// use ddrace_program::{AccessKind, Addr, ThreadId};
///
/// let mut d = LockSet::new(DetectorConfig::default());
/// d.on_thread_start(ThreadId(0), None);
/// d.on_thread_start(ThreadId(1), Some(ThreadId(0)));
/// d.on_access(ThreadId(0), Addr(0x40), AccessKind::Write);
/// // No common lock protects the variable: race.
/// assert!(d.on_access(ThreadId(1), Addr(0x40), AccessKind::Write).race);
/// ```
#[derive(Debug, Clone)]
pub struct LockSet {
    held: Vec<HashSet<LockId>>,
    shadow: HashMap<u64, VarState>,
    reports: RaceReportSet,
    stats: DetectorStats,
    granularity: Granularity,
    max_reports: usize,
}

impl LockSet {
    /// Creates a detector.
    pub fn new(config: DetectorConfig) -> Self {
        LockSet {
            held: Vec::new(),
            shadow: HashMap::new(),
            reports: RaceReportSet::new(),
            stats: DetectorStats::default(),
            granularity: config.granularity,
            max_reports: config.max_reports,
        }
    }

    /// Shadow units currently tracked.
    pub fn shadow_size(&self) -> usize {
        self.shadow.len()
    }

    fn held(&mut self, tid: ThreadId) -> &mut HashSet<LockId> {
        if self.held.len() <= tid.index() {
            self.held.resize_with(tid.index() + 1, HashSet::new);
        }
        &mut self.held[tid.index()]
    }

    fn held_ref(&self, tid: ThreadId) -> Option<&HashSet<LockId>> {
        self.held.get(tid.index())
    }
}

impl RaceDetector for LockSet {
    fn on_thread_start(&mut self, _tid: ThreadId, _parent: Option<ThreadId>) {}

    fn on_thread_finish(&mut self, _tid: ThreadId) {}

    fn on_sync(&mut self, tid: ThreadId, op: &Op) {
        if op.is_sync() {
            self.stats.sync_ops += 1;
        }
        match *op {
            Op::Lock { lock } => {
                self.held(tid).insert(lock);
            }
            Op::Unlock { lock } => {
                self.held(tid).remove(&lock);
            }
            // Pure lockset analysis has no notion of fork/join, barrier,
            // or semaphore ordering.
            _ => {}
        }
    }

    fn on_barrier_release(&mut self, _barrier: BarrierId, _participants: &[ThreadId]) {}

    fn on_access(&mut self, tid: ThreadId, addr: Addr, kind: AccessKind) -> AccessReport {
        self.stats.accesses_checked += 1;
        let key = self.granularity.key(addr);
        let held: HashSet<LockId> = self.held_ref(tid).cloned().unwrap_or_default();
        let var = self.shadow.entry(key).or_insert_with(VarState::fresh);
        let me = RaceAccess {
            tid,
            kind,
            clock: 0, // lockset analysis has no logical clocks
        };

        let mut shared = false;
        match var.phase {
            Phase::Virgin => {
                var.phase = Phase::Exclusive(tid);
                self.stats.fast_path_hits += 1;
            }
            Phase::Exclusive(owner) if owner == tid => {
                self.stats.fast_path_hits += 1;
            }
            Phase::Exclusive(_) => {
                shared = true;
                var.phase = if kind.is_write() {
                    Phase::SharedModified
                } else {
                    Phase::Shared
                };
                var.candidates = Some(held.clone());
            }
            Phase::Shared => {
                shared = true;
                if kind.is_write() {
                    var.phase = Phase::SharedModified;
                }
                refine(&mut var.candidates, &held);
            }
            Phase::SharedModified => {
                shared = true;
                refine(&mut var.candidates, &held);
            }
        }

        let mut report = None;
        if var.phase == Phase::SharedModified
            && var.candidates.as_ref().is_some_and(HashSet::is_empty)
            && !var.reported
        {
            var.reported = true;
            report = Some(RaceReport {
                addr,
                shadow_key: key,
                kind: match (var.last.kind.is_write(), kind.is_write()) {
                    (true, true) => RaceKind::WriteWrite,
                    (true, false) => RaceKind::WriteRead,
                    (false, _) => RaceKind::ReadWrite,
                },
                prior: var.last,
                current: me,
            });
        }
        var.last = me;

        let raced = report.is_some();
        if let Some(report) = report {
            self.stats.races_observed += 1;
            if self.reports.distinct() < self.max_reports {
                self.reports.record(report);
            }
        }
        AccessReport {
            race: raced,
            shared,
        }
    }

    fn reports(&self) -> &RaceReportSet {
        &self.reports
    }

    fn stats(&self) -> DetectorStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "lockset"
    }
}

fn refine(candidates: &mut Option<HashSet<LockId>>, held: &HashSet<LockId>) {
    match candidates {
        Some(set) => set.retain(|l| held.contains(l)),
        None => *candidates = Some(held.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const X: Addr = Addr(0x40);
    const L: LockId = LockId(0);
    const L2: LockId = LockId(1);

    fn pair() -> LockSet {
        let mut d = LockSet::new(DetectorConfig::default());
        d.on_thread_start(T0, None);
        d.on_thread_start(T1, Some(T0));
        d
    }

    #[test]
    fn consistent_lock_discipline_is_clean() {
        let mut d = pair();
        for &t in &[T0, T1, T0, T1] {
            d.on_sync(t, &Op::Lock { lock: L });
            d.on_access(t, X, AccessKind::Write);
            d.on_sync(t, &Op::Unlock { lock: L });
        }
        assert!(d.reports().is_empty());
    }

    #[test]
    fn unprotected_shared_write_races() {
        let mut d = pair();
        d.on_access(T0, X, AccessKind::Write);
        assert!(d.on_access(T1, X, AccessKind::Write).race);
        assert_eq!(d.reports().distinct(), 1);
    }

    #[test]
    fn inconsistent_locks_race() {
        // T0 protects with L, T1 with L2. The candidate set is seeded at
        // the access that makes the variable shared ({L2}), so the race
        // surfaces on the next refinement ({L2} ∩ {L} = ∅).
        let mut d = pair();
        d.on_sync(T0, &Op::Lock { lock: L });
        d.on_access(T0, X, AccessKind::Write);
        d.on_sync(T0, &Op::Unlock { lock: L });
        d.on_sync(T1, &Op::Lock { lock: L2 });
        let first_shared = d.on_access(T1, X, AccessKind::Write);
        d.on_sync(T1, &Op::Unlock { lock: L2 });
        assert!(!first_shared.race, "candidates just seeded with {{L2}}");
        d.on_sync(T0, &Op::Lock { lock: L });
        let r = d.on_access(T0, X, AccessKind::Write);
        d.on_sync(T0, &Op::Unlock { lock: L });
        assert!(r.race);
    }

    #[test]
    fn read_shared_data_is_not_racy_until_written() {
        let mut d = pair();
        d.on_access(T0, X, AccessKind::Read);
        assert!(!d.on_access(T1, X, AccessKind::Read).race);
        assert!(d.reports().is_empty());
        // A write with no locks flips it to SharedModified: race.
        assert!(d.on_access(T0, X, AccessKind::Write).race);
    }

    #[test]
    fn exclusive_phase_never_races() {
        let mut d = pair();
        for _ in 0..10 {
            assert!(!d.on_access(T0, X, AccessKind::Write).race);
        }
        assert!(d.reports().is_empty());
        assert!(d.stats().fast_path_hits >= 10);
    }

    #[test]
    fn fork_join_false_positive_is_expected() {
        // HB analysis would see the fork edge and stay quiet; lockset
        // flags it — the documented over-reporting.
        let mut d = pair();
        d.on_access(T0, X, AccessKind::Write); // parent init
        let r = d.on_access(T1, X, AccessKind::Write); // child, no locks
        assert!(r.race, "lockset cannot see fork edges");
    }

    #[test]
    fn reports_each_variable_once() {
        let mut d = pair();
        d.on_access(T0, X, AccessKind::Write);
        assert!(d.on_access(T1, X, AccessKind::Write).race);
        assert!(!d.on_access(T0, X, AccessKind::Write).race);
        assert!(!d.on_access(T1, X, AccessKind::Write).race);
        assert_eq!(d.reports().distinct(), 1);
    }

    #[test]
    fn shared_flag_reflects_multi_thread_access() {
        let mut d = pair();
        assert!(!d.on_access(T0, X, AccessKind::Read).shared);
        assert!(d.on_access(T1, X, AccessKind::Read).shared);
    }

    #[test]
    fn name_is_lockset() {
        assert_eq!(LockSet::new(DetectorConfig::default()).name(), "lockset");
    }
}
