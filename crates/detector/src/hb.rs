//! Shared happens-before clock machinery: per-thread vector clocks plus
//! the clocks of every synchronization object.
//!
//! Both happens-before detectors ([FastTrack](crate::FastTrack) and the
//! full-vector-clock [Djit](crate::Djit) ablation) maintain identical sync
//! state; only their shadow-memory representation differs. This module
//! factors out the sync handling, which — as in the paper's tool — stays
//! **always on** even when memory-access analysis is disabled, so clocks
//! are correct whenever analysis re-enables.
//!
//! Semaphore modelling is conservative: a `WaitSem` acquires the
//! semaphore's accumulated clock even if the matching `Post` cannot be
//! identified, which can only *add* happens-before edges (possibly hiding
//! a race, never inventing one) — the standard sound-for-false-positives
//! choice.

use crate::vc::{Epoch, VectorClock};
use ddrace_program::{BarrierId, Op, ThreadId};
use ddrace_shadow::ShadowTable;

/// The full happens-before clock state of an execution.
#[derive(Debug, Clone, Default)]
pub struct HbClocks {
    threads: Vec<VectorClock>,
    locks: ShadowTable<VectorClock>,
    sems: ShadowTable<VectorClock>,
    barriers: ShadowTable<VectorClock>,
    atomics: ShadowTable<VectorClock>,
}

impl HbClocks {
    /// Creates empty clock state.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, tid: ThreadId) {
        if self.threads.len() <= tid.index() {
            self.threads.resize_with(tid.index() + 1, VectorClock::new);
        }
    }

    /// The vector clock of `tid` (zero if the thread has not started).
    pub fn thread(&self, tid: ThreadId) -> &VectorClock {
        static ZERO: std::sync::OnceLock<VectorClock> = std::sync::OnceLock::new();
        self.threads
            .get(tid.index())
            .unwrap_or_else(|| ZERO.get_or_init(VectorClock::new))
    }

    /// The current epoch of `tid`.
    pub fn epoch(&self, tid: ThreadId) -> Epoch {
        Epoch::of(tid, self.thread(tid))
    }

    /// Handles a thread becoming runnable. `parent` is `None` for the
    /// root.
    pub fn on_thread_start(&mut self, tid: ThreadId, parent: Option<ThreadId>) {
        self.ensure(tid);
        if let Some(p) = parent {
            self.ensure(p);
            let pvc = self.threads[p.index()].clone();
            self.threads[tid.index()].join(&pvc);
            self.threads[p.index()].increment(p);
        }
        self.threads[tid.index()].increment(tid);
    }

    /// Handles a thread finishing. The clock is retained for joiners.
    pub fn on_thread_finish(&mut self, _tid: ThreadId) {}

    /// Handles a synchronization operation by `tid`. Non-sync ops are
    /// ignored, so callers may forward every op unconditionally.
    pub fn on_sync(&mut self, tid: ThreadId, op: &Op) {
        self.ensure(tid);
        match *op {
            Op::Lock { lock } => {
                if let Some(lvc) = self.locks.get(u64::from(lock.0)) {
                    self.threads[tid.index()].join(lvc);
                }
            }
            Op::Unlock { lock } => {
                self.locks
                    .get_or_insert_with(u64::from(lock.0), VectorClock::new)
                    .join(&self.threads[tid.index()]);
                self.threads[tid.index()].increment(tid);
            }
            Op::Barrier { barrier, .. } => {
                // Arrival: contribute our clock to the episode accumulator.
                self.barriers
                    .get_or_insert_with(u64::from(barrier.0), VectorClock::new)
                    .join(&self.threads[tid.index()]);
            }
            Op::Post { sem } => {
                self.sems
                    .get_or_insert_with(u64::from(sem.0), VectorClock::new)
                    .join(&self.threads[tid.index()]);
                self.threads[tid.index()].increment(tid);
            }
            Op::WaitSem { sem } => {
                if let Some(svc) = self.sems.get(u64::from(sem.0)) {
                    self.threads[tid.index()].join(svc);
                }
            }
            Op::Join { child } => {
                self.ensure(child);
                let cvc = self.threads[child.index()].clone();
                self.threads[tid.index()].join(&cvc);
            }
            // Fork edges are delivered through `on_thread_start` (the
            // scheduler reports the parent there), so the Fork op itself
            // needs no clock work.
            Op::Fork { .. } => {}
            Op::AtomicRmw { addr } => {
                // Acquire + release on a per-address clock.
                let entry = self.atomics.get_or_insert_with(addr.0, VectorClock::new);
                self.threads[tid.index()].join(entry);
                entry.join(&self.threads[tid.index()]);
                self.threads[tid.index()].increment(tid);
            }
            Op::Read { .. } | Op::Write { .. } | Op::Compute { .. } => {}
        }
    }

    /// Handles a barrier release: every participant adopts the episode's
    /// accumulated clock, and the accumulator resets for reuse.
    pub fn on_barrier_release(&mut self, barrier: BarrierId, participants: &[ThreadId]) {
        let acc = self
            .barriers
            .remove(u64::from(barrier.0))
            .unwrap_or_default();
        for &p in participants {
            self.ensure(p);
            self.threads[p.index()].join(&acc);
            self.threads[p.index()].increment(p);
        }
    }

    /// Number of thread clocks allocated.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrace_program::{Addr, LockId, SemId};

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    fn started_pair() -> HbClocks {
        let mut hb = HbClocks::new();
        hb.on_thread_start(T0, None);
        hb.on_thread_start(T1, Some(T0));
        hb
    }

    #[test]
    fn root_thread_starts_at_one() {
        let mut hb = HbClocks::new();
        hb.on_thread_start(T0, None);
        assert_eq!(hb.epoch(T0), Epoch::new(T0, 1));
    }

    #[test]
    fn fork_creates_edge_parent_to_child() {
        let hb = started_pair();
        // Child saw the parent's pre-fork epoch.
        assert_eq!(hb.thread(T1).get(T0), 1);
        // Parent advanced past the forked point.
        assert_eq!(hb.thread(T0).get(T0), 2);
        // Parent knows nothing of the child.
        assert_eq!(hb.thread(T0).get(T1), 0);
    }

    #[test]
    fn join_creates_edge_child_to_parent() {
        let mut hb = started_pair();
        hb.on_sync(T1, &Op::Compute { cycles: 1 }); // no-op
        hb.on_thread_finish(T1);
        hb.on_sync(T0, &Op::Join { child: T1 });
        assert_eq!(hb.thread(T0).get(T1), 1);
    }

    #[test]
    fn lock_release_acquire_transfers_clock() {
        let mut hb = started_pair();
        let l = LockId(0);
        let before = hb.thread(T0).get(T0);
        hb.on_sync(T0, &Op::Lock { lock: l });
        hb.on_sync(T0, &Op::Unlock { lock: l });
        assert_eq!(hb.thread(T0).get(T0), before + 1, "release increments");
        hb.on_sync(T1, &Op::Lock { lock: l });
        // T1 now knows T0 up to the release point.
        assert_eq!(hb.thread(T1).get(T0), before);
    }

    #[test]
    fn first_acquire_of_fresh_lock_is_noop() {
        let mut hb = started_pair();
        let before = hb.thread(T1).clone();
        hb.on_sync(T1, &Op::Lock { lock: LockId(9) });
        assert_eq!(hb.thread(T1), &before);
    }

    #[test]
    fn barrier_joins_all_participants() {
        let mut hb = HbClocks::new();
        hb.on_thread_start(T0, None);
        hb.on_thread_start(T1, Some(T0));
        hb.on_thread_start(T2, Some(T0));
        let b = BarrierId(0);
        for t in [T0, T1, T2] {
            hb.on_sync(
                t,
                &Op::Barrier {
                    barrier: b,
                    participants: 3,
                },
            );
        }
        hb.on_barrier_release(b, &[T0, T1, T2]);
        // Everyone has seen everyone's arrival clock.
        for t in [T0, T1, T2] {
            for u in [T0, T1, T2] {
                assert!(hb.thread(t).get(u) >= 1, "{t} must know {u}");
            }
        }
    }

    #[test]
    fn barrier_is_reusable_per_episode() {
        let mut hb = started_pair();
        let b = BarrierId(0);
        hb.on_sync(
            T0,
            &Op::Barrier {
                barrier: b,
                participants: 2,
            },
        );
        hb.on_sync(
            T1,
            &Op::Barrier {
                barrier: b,
                participants: 2,
            },
        );
        hb.on_barrier_release(b, &[T0, T1]);
        let t0_after_first = hb.thread(T0).get(T0);
        // Second episode accumulates fresh clocks (not the stale ones).
        hb.on_sync(
            T0,
            &Op::Barrier {
                barrier: b,
                participants: 2,
            },
        );
        hb.on_sync(
            T1,
            &Op::Barrier {
                barrier: b,
                participants: 2,
            },
        );
        hb.on_barrier_release(b, &[T0, T1]);
        assert!(hb.thread(T1).get(T0) >= t0_after_first);
    }

    #[test]
    fn semaphore_post_wait_edge() {
        let mut hb = started_pair();
        let s = SemId(0);
        let t0_clock = hb.thread(T0).get(T0);
        hb.on_sync(T0, &Op::Post { sem: s });
        hb.on_sync(T1, &Op::WaitSem { sem: s });
        assert_eq!(hb.thread(T1).get(T0), t0_clock);
    }

    #[test]
    fn wait_on_unposted_sem_is_noop() {
        let mut hb = started_pair();
        let before = hb.thread(T1).clone();
        hb.on_sync(T1, &Op::WaitSem { sem: SemId(5) });
        assert_eq!(hb.thread(T1), &before);
    }

    #[test]
    fn atomic_rmw_orders_through_address() {
        let mut hb = started_pair();
        let a = Addr(0x40);
        let t0_clock = hb.thread(T0).get(T0);
        hb.on_sync(T0, &Op::AtomicRmw { addr: a });
        hb.on_sync(T1, &Op::AtomicRmw { addr: a });
        assert_eq!(hb.thread(T1).get(T0), t0_clock);
        // Different address: no edge.
        let mut hb2 = started_pair();
        hb2.on_sync(T0, &Op::AtomicRmw { addr: Addr(0x40) });
        hb2.on_sync(T1, &Op::AtomicRmw { addr: Addr(0x80) });
        assert_eq!(hb2.thread(T1).get(T0), 1); // only the fork edge
    }

    #[test]
    fn plain_ops_do_not_touch_clocks() {
        let mut hb = started_pair();
        let before = hb.thread(T0).clone();
        hb.on_sync(T0, &Op::Read { addr: Addr(8) });
        hb.on_sync(T0, &Op::Write { addr: Addr(8) });
        hb.on_sync(T0, &Op::Compute { cycles: 5 });
        hb.on_sync(T0, &Op::Fork { child: T2 }); // edge made at start, not here
        assert_eq!(hb.thread(T0), &before);
    }

    #[test]
    fn unstarted_thread_has_zero_clock() {
        let hb = HbClocks::new();
        assert!(hb.thread(ThreadId(7)).is_zero());
        assert_eq!(hb.thread_count(), 0);
    }
}
