//! The oracle battery: every conformance check one fuzzed spec must pass.
//!
//! **Differential oracles** compare independent implementations on the
//! *same interleaving* (a recorded [`Trace`], so scheduling can never
//! explain a difference):
//!
//! - *detector agreement* — FastTrack and Djit⁺ must report the same
//!   racy-variable set ([`ddrace_detector::racy_keys`]);
//! - *reference divergence* — the production Djit⁺ must match [`RefHb`]
//!   (an independent reimplementation over `HashMap` instead of the
//!   open-addressed shadow table) **byte-for-byte** on report vectors;
//! - *picker equivalence* — the `RunQueue` and `LegacyScan` schedulers
//!   must resolve the program to identical traces;
//! - *demand subset* — demand-driven analysis may only ever report a
//!   subset of the continuous racy-variable set, with the controller's
//!   bookkeeping consistent (no PMIs ⇒ no reports; no enables ⇒ no
//!   analyzed accesses). Each miss is then mechanically attributed: if
//!   the *eager* oracle-indicator configuration (never disables once on)
//!   still catches the race, the demand miss is charged to a **quiet
//!   HITM indicator**; if even the eager run misses it, the racy write
//!   predates any possible enable — **enable latency**.
//!
//! **Metamorphic oracles** transform the trace in ways that provably
//! preserve (or shift, predictably) the race verdict and re-run the full
//! continuous stack: thread-id permutation, uniform data-address
//! translation, and detector-invisible compute padding.

use crate::refdet::{feed_trace, Fault, RefHb};
use crate::spec::FuzzSpec;
use ddrace_core::{AnalysisMode, DetectorKind, RunResult, SimConfig, Simulation};
use ddrace_detector::{racy_keys, DetectorConfig, RaceDetector};
use ddrace_program::{
    AddressSpace, Op, PickStrategy, SchedulerConfig, ThreadId, Trace, TraceEvent,
};

/// One failed oracle check: which oracle, and a human-readable account of
/// the disagreement. Serialized into fuzz events and reproducer files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The oracle's stable name (e.g. `detector-agreement`).
    pub oracle: String,
    /// What disagreed, with enough numbers to start debugging.
    pub detail: String,
}

impl Violation {
    fn new(oracle: &str, detail: String) -> Violation {
        Violation {
            oracle: oracle.to_string(),
            detail,
        }
    }
}

/// Everything the oracle battery concluded about one spec.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpecVerdict {
    /// Every oracle violation (empty = the spec conforms).
    pub violations: Vec<Violation>,
    /// Distinct racy variables under continuous FastTrack analysis.
    pub races_continuous: u64,
    /// Distinct racy variables under demand-HITM analysis.
    pub races_demand: u64,
    /// Demand misses attributed to a quiet HITM indicator.
    pub quiet_indicator_misses: u64,
    /// Demand misses attributed to enable latency.
    pub enable_latency_misses: u64,
}

/// Runs the full oracle battery on `spec` with a faithful reference
/// detector.
pub fn check_spec(spec: &FuzzSpec) -> SpecVerdict {
    check_spec_with(spec, Fault::None)
}

/// Runs the full oracle battery with a (possibly faulty) reference
/// detector — the fault hook the self-test and the shrinker tests use.
pub fn check_spec_with(spec: &FuzzSpec, fault: Fault) -> SpecVerdict {
    let mut verdict = SpecVerdict::default();
    let scheduler = SchedulerConfig::jittered(spec.seed);

    // Picker equivalence: both runnable-thread pickers must resolve the
    // program to the same event stream.
    let trace = match Trace::record_with(spec.to_program(), scheduler, PickStrategy::RunQueue) {
        Ok(t) => t,
        Err(e) => {
            // Specs are deadlock-free by construction; a schedule error is
            // itself a conformance failure.
            verdict
                .violations
                .push(Violation::new("schedule-error", e.to_string()));
            return verdict;
        }
    };
    match Trace::record_with(spec.to_program(), scheduler, PickStrategy::LegacyScan) {
        Ok(legacy) => {
            if legacy != trace {
                verdict.violations.push(Violation::new(
                    "picker-equivalence",
                    format!(
                        "RunQueue and LegacyScan recorded different traces \
                         ({} vs {} events)",
                        trace.events().len(),
                        legacy.events().len()
                    ),
                ));
            }
        }
        Err(e) => verdict.violations.push(Violation::new(
            "picker-equivalence",
            format!("LegacyScan failed to schedule: {e}"),
        )),
    }

    // Continuous runs of both production detectors on the same trace.
    let ft = run(
        spec,
        AnalysisMode::Continuous,
        DetectorKind::FastTrack,
        &trace,
    );
    let dj = run(spec, AnalysisMode::Continuous, DetectorKind::Djit, &trace);
    let keys_ft = racy_keys(&ft.races.reports);
    let keys_dj = racy_keys(&dj.races.reports);
    verdict.races_continuous = keys_ft.len() as u64;
    if keys_ft != keys_dj {
        verdict.violations.push(Violation::new(
            "detector-agreement",
            format!(
                "FastTrack and Djit disagree on the racy-variable set: \
                 {keys_ft:?} vs {keys_dj:?}"
            ),
        ));
    }

    // Record/replay: live detection and record-then-ingest through the
    // binary `.ddt` codec must report identical racy keys (live ≡
    // replayed). The live run records via the simulator's own capture
    // path, so this exercises recording, the varint encoder, the
    // streaming decoder, and trace replay end to end on every fuzzed
    // event shape.
    {
        let mut cfg = SimConfig::new(spec.cores.max(1) as usize, AnalysisMode::Continuous);
        cfg.scheduler = scheduler;
        match Simulation::new(cfg).run_recorded(spec.to_program()) {
            Ok((live, records)) => {
                let keys_live = racy_keys(&live.races.reports);
                if ddrace_trace::exec_trace(&records) != trace {
                    verdict.violations.push(Violation::new(
                        "record-replay",
                        format!(
                            "simulator capture diverged from the recorded trace \
                             ({} records vs {} events)",
                            records.len(),
                            trace.events().len()
                        ),
                    ));
                }
                let meta = ddrace_trace::TraceMeta {
                    source: "conform".to_string(),
                    label: format!("spec-s{:016x}", spec.seed),
                    seed: spec.seed,
                    fingerprint: spec.seed,
                };
                // Both on-disk versions must round-trip the identical
                // stream: the flat v1 records and the block-framed,
                // checksummed v2 are different codecs over one model.
                for version in [
                    ddrace_trace::FormatVersion::V1,
                    ddrace_trace::FormatVersion::V2,
                ] {
                    let bytes = ddrace_trace::encode_trace_with(&meta, &records, version);
                    match ddrace_trace::decode_trace(&bytes) {
                        Ok((_, decoded)) => {
                            if decoded != records {
                                verdict.violations.push(Violation::new(
                                    "record-replay",
                                    format!(
                                        "{version:?} codec round-trip altered the stream \
                                         ({} vs {} records)",
                                        decoded.len(),
                                        records.len()
                                    ),
                                ));
                            }
                            let replayed = run(
                                spec,
                                AnalysisMode::Continuous,
                                DetectorKind::FastTrack,
                                &ddrace_trace::exec_trace(&decoded),
                            );
                            let keys_replayed = racy_keys(&replayed.races.reports);
                            if keys_replayed != keys_live {
                                verdict.violations.push(Violation::new(
                                    "record-replay",
                                    format!(
                                        "live and {version:?}-replayed racy keys differ: \
                                         {keys_live:?} vs {keys_replayed:?}"
                                    ),
                                ));
                            }
                        }
                        Err(e) => verdict.violations.push(Violation::new(
                            "record-replay",
                            format!("decoding the {version:?}-encoded trace failed: {e}"),
                        )),
                    }
                }
            }
            Err(e) => verdict.violations.push(Violation::new(
                "record-replay",
                format!("live recorded run failed to schedule: {e}"),
            )),
        }
    }

    // Reference divergence: Djit vs the independent HashMap-backed
    // reimplementation, byte-for-byte.
    let mut reference = RefHb::with_fault(DetectorConfig::default(), fault);
    feed_trace(&trace, &mut reference);
    if reference.reports().reports() != dj.races.reports.as_slice()
        || reference.reports().occurrences() != dj.races.report_occurrences.as_slice()
    {
        verdict.violations.push(Violation::new(
            "reference-divergence",
            format!(
                "Djit and the reference detector diverge: {} vs {} distinct \
                 reports (occurrences {:?} vs {:?})",
                dj.races.distinct,
                reference.reports().distinct(),
                dj.races.report_occurrences,
                reference.reports().occurrences(),
            ),
        ));
    }

    // Demand subset + miss attribution.
    let demand = run(
        spec,
        AnalysisMode::demand_hitm(),
        DetectorKind::FastTrack,
        &trace,
    );
    let eager = run(
        spec,
        AnalysisMode::demand_oracle_eager(),
        DetectorKind::FastTrack,
        &trace,
    );
    let keys_demand = racy_keys(&demand.races.reports);
    let keys_eager = racy_keys(&eager.races.reports);
    verdict.races_demand = keys_demand.len() as u64;
    for (label, keys) in [("demand-hitm", &keys_demand), ("demand-eager", &keys_eager)] {
        let stray: Vec<u64> = keys
            .iter()
            .copied()
            .filter(|k| keys_ft.binary_search(k).is_err())
            .collect();
        if !stray.is_empty() {
            verdict.violations.push(Violation::new(
                "demand-subset",
                format!("{label} reported races continuous never saw, on shadow keys {stray:?}"),
            ));
        }
    }
    if demand.pmis == 0 && !keys_demand.is_empty() {
        verdict.violations.push(Violation::new(
            "demand-subset",
            format!(
                "demand-hitm reported {} racy variables with zero PMIs delivered",
                keys_demand.len()
            ),
        ));
    }
    let enables = demand.controller.map_or(0, |c| c.enables);
    if enables == 0 && demand.accesses_analyzed > 0 {
        verdict.violations.push(Violation::new(
            "demand-subset",
            format!(
                "demand-hitm analyzed {} accesses without a single enable",
                demand.accesses_analyzed
            ),
        ));
    }
    for key in keys_ft
        .iter()
        .filter(|k| keys_demand.binary_search(k).is_err())
    {
        if keys_eager.binary_search(key).is_ok() {
            verdict.quiet_indicator_misses += 1;
        } else {
            verdict.enable_latency_misses += 1;
        }
    }

    // Metamorphic: thread-id permutation (rotate every tid) must not
    // change the racy-variable set — addresses are untouched and the
    // happens-before relation is invariant under renaming.
    let threads = trace.thread_count() as u32;
    if threads > 1 {
        let permuted = map_tids(&trace, |t| ThreadId((t.0 + 1) % threads));
        let run_p = run(
            spec,
            AnalysisMode::Continuous,
            DetectorKind::FastTrack,
            &permuted,
        );
        let keys_p = racy_keys(&run_p.races.reports);
        if keys_p != keys_ft {
            verdict.violations.push(Violation::new(
                "metamorphic-tid-permutation",
                format!("racy-variable set changed under renaming: {keys_ft:?} vs {keys_p:?}"),
            ));
        }
    }

    // Metamorphic: translating every data address by a uniform delta must
    // shift the racy-variable set by exactly delta >> granularity.
    const DELTA: u64 = 0x4_0000;
    let translated = map_data_addrs(&trace, DELTA);
    let run_t = run(
        spec,
        AnalysisMode::Continuous,
        DetectorKind::FastTrack,
        &translated,
    );
    let keys_t = racy_keys(&run_t.races.reports);
    let shift = DELTA >> ddrace_detector::Granularity::default().shift();
    let expected: Vec<u64> = keys_ft.iter().map(|k| k + shift).collect();
    if keys_t != expected {
        verdict.violations.push(Violation::new(
            "metamorphic-address-translation",
            format!(
                "racy-variable set did not shift uniformly by {shift}: \
                 expected {expected:?}, got {keys_t:?}"
            ),
        ));
    }

    // Metamorphic: detector-invisible compute padding must leave the
    // report vector byte-identical.
    let padded = pad_with_compute(&trace);
    let run_c = run(
        spec,
        AnalysisMode::Continuous,
        DetectorKind::FastTrack,
        &padded,
    );
    if run_c.races.reports != ft.races.reports
        || run_c.races.report_occurrences != ft.races.report_occurrences
    {
        verdict.violations.push(Violation::new(
            "metamorphic-compute-padding",
            format!(
                "compute padding changed the reports: {} vs {} distinct",
                ft.races.distinct, run_c.races.distinct
            ),
        ));
    }

    verdict
}

/// Replays `trace` under `mode` with `detector` on the spec's core count.
fn run(spec: &FuzzSpec, mode: AnalysisMode, detector: DetectorKind, trace: &Trace) -> RunResult {
    let mut cfg = SimConfig::new(spec.cores.max(1) as usize, mode);
    cfg.scheduler = SchedulerConfig::jittered(spec.seed);
    cfg.detector_kind = detector;
    Simulation::new(cfg).run_trace(trace)
}

/// Rewrites every thread id in `trace` through `f` — events, parents,
/// fork/join operands, and barrier participant lists alike.
fn map_tids(trace: &Trace, f: impl Fn(ThreadId) -> ThreadId) -> Trace {
    trace
        .events()
        .iter()
        .map(|event| match event {
            TraceEvent::ThreadStarted { tid, parent } => TraceEvent::ThreadStarted {
                tid: f(*tid),
                parent: parent.map(&f),
            },
            TraceEvent::ThreadFinished { tid } => TraceEvent::ThreadFinished { tid: f(*tid) },
            TraceEvent::BarrierReleased {
                barrier,
                participants,
            } => TraceEvent::BarrierReleased {
                barrier: *barrier,
                participants: participants.iter().map(|t| f(*t)).collect(),
            },
            TraceEvent::Op { tid, op } => TraceEvent::Op {
                tid: f(*tid),
                op: match op {
                    Op::Fork { child } => Op::Fork { child: f(*child) },
                    Op::Join { child } => Op::Join { child: f(*child) },
                    other => *other,
                },
            },
        })
        .collect()
}

/// Adds `delta` to every *data* address (below the synchronization
/// region) in memory-access ops. Sync objects are addressed by id, not by
/// these fields, so they are untouched by construction.
fn map_data_addrs(trace: &Trace, delta: u64) -> Trace {
    let shift = |addr: ddrace_program::Addr| {
        if addr.0 < AddressSpace::SYNC_BASE {
            ddrace_program::Addr(addr.0 + delta)
        } else {
            addr
        }
    };
    trace
        .events()
        .iter()
        .map(|event| match event {
            TraceEvent::Op { tid, op } => TraceEvent::Op {
                tid: *tid,
                op: match op {
                    Op::Read { addr } => Op::Read { addr: shift(*addr) },
                    Op::Write { addr } => Op::Write { addr: shift(*addr) },
                    Op::AtomicRmw { addr } => Op::AtomicRmw { addr: shift(*addr) },
                    other => *other,
                },
            },
            other => other.clone(),
        })
        .collect()
}

/// Interleaves a detector-invisible `Compute` op (on the same thread)
/// after every executed operation.
fn pad_with_compute(trace: &Trace) -> Trace {
    let mut events = Vec::with_capacity(trace.events().len() * 2);
    for event in trace.events() {
        events.push(event.clone());
        if let TraceEvent::Op { tid, .. } = event {
            events.push(TraceEvent::Op {
                tid: *tid,
                op: Op::Compute { cycles: 3 },
            });
        }
    }
    events.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::spec::{FuzzOp, FuzzRound};

    fn racy_spec() -> FuzzSpec {
        FuzzSpec {
            seed: 11,
            workers: 2,
            vars: 1,
            locks: 1,
            cores: 2,
            rounds: vec![FuzzRound {
                ops: vec![
                    vec![FuzzOp::Write { var: 0 }],
                    vec![FuzzOp::Write { var: 0 }],
                ],
                barrier_after: false,
            }],
        }
    }

    fn locked_spec() -> FuzzSpec {
        FuzzSpec {
            seed: 11,
            workers: 2,
            vars: 1,
            locks: 1,
            cores: 2,
            rounds: vec![FuzzRound {
                ops: vec![
                    vec![FuzzOp::Locked {
                        lock: 0,
                        ops: vec![FuzzOp::Write { var: 0 }],
                    }],
                    vec![FuzzOp::Locked {
                        lock: 0,
                        ops: vec![FuzzOp::Write { var: 0 }],
                    }],
                ],
                barrier_after: false,
            }],
        }
    }

    #[test]
    fn faithful_stack_conforms_on_handwritten_specs() {
        for spec in [racy_spec(), locked_spec()] {
            let verdict = check_spec(&spec);
            assert_eq!(verdict.violations, vec![], "spec {spec:?}");
        }
        assert!(check_spec(&racy_spec()).races_continuous > 0);
        assert_eq!(check_spec(&locked_spec()).races_continuous, 0);
    }

    #[test]
    fn faithful_stack_conforms_on_generated_specs() {
        for seed in 0..25 {
            let verdict = check_spec(&generate(seed));
            assert_eq!(verdict.violations, vec![], "seed {seed}");
        }
    }

    #[test]
    fn planted_faults_are_caught() {
        // A fault only shows where its trigger exists: WW races for
        // DropWriteWrite, critical sections for IgnoreUnlock.
        let ww = check_spec_with(&racy_spec(), Fault::DropWriteWrite);
        assert!(
            ww.violations
                .iter()
                .any(|v| v.oracle == "reference-divergence"),
            "{:?}",
            ww.violations
        );
        let ul = check_spec_with(&locked_spec(), Fault::IgnoreUnlock);
        assert!(
            ul.violations
                .iter()
                .any(|v| v.oracle == "reference-divergence"),
            "{:?}",
            ul.violations
        );
    }

    #[test]
    fn misses_are_attributed_exhaustively() {
        for seed in 0..15 {
            let v = check_spec(&generate(seed));
            assert!(
                v.races_demand + v.quiet_indicator_misses + v.enable_latency_misses
                    >= v.races_continuous,
                "seed {seed}: misses not fully attributed: {v:?}"
            );
        }
    }

    #[test]
    fn live_equals_replayed_for_every_archetype() {
        // The acceptance bar for the record/ingest pipeline: across all
        // generator archetypes (the seed range below cycles through every
        // structural bias), the record-replay oracle must hold — live
        // racy keys equal the keys from ingesting the recorded trace.
        for seed in 0..20 {
            let v = check_spec(&generate(seed));
            assert!(
                !v.violations.iter().any(|x| x.oracle == "record-replay"),
                "seed {seed}: {:?}",
                v.violations
            );
        }
    }

    #[test]
    fn verdict_counters_are_deterministic() {
        let a = check_spec(&generate(7));
        let b = check_spec(&generate(7));
        assert_eq!(a, b);
    }
}

ddrace_json::json_struct!(Violation { oracle, detail });
