//! The fuzz campaign: many specs through the oracle battery on the
//! harness worker pool, with JSONL checkpoint events, resume, and a
//! byte-deterministic aggregate.
//!
//! Each job is one spec index: generate the spec from its derived seed,
//! run [`check_spec_with`](crate::oracles::check_spec_with), and — when
//! an oracle fails — shrink the spec and embed the minimized reproducer
//! in the job's outcome. Oracle violations are *data*, not job failures:
//! the job still finishes (so its payload lands in the checkpoint and
//! survives a resume), and the caller counts violations after the run.
//!
//! Determinism contract: with [`EventSink::with_deterministic_wall`] the
//! event stream is byte-identical across reruns up to line order (sort to
//! compare across worker counts — the `campaign_started` line also
//! differs in its `workers` field), and [`FuzzReport::aggregate_json`]
//! is byte-identical unconditionally.

use crate::gen::generate;
use crate::oracles::{check_spec_with, Violation};
use crate::refdet::Fault;
use crate::shrink::shrink_spec;
use crate::spec::FuzzSpec;
use ddrace_harness::{
    fingerprint_hex, fingerprint_of_jobs, fnv1a, run_checkpointed, CheckpointLog, EventSink,
    JobRecord, RawJob,
};
use ddrace_json::{FromJson, ToJson, Value};
use std::time::Duration;

/// What one fuzz job concluded; the checkpointable unit of the campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzOutcome {
    /// The derived generator seed of this job's spec.
    pub spec_seed: u64,
    /// The generated spec's operation count.
    pub ops: u64,
    /// Distinct racy variables under continuous analysis.
    pub races_continuous: u64,
    /// Distinct racy variables under demand-HITM analysis.
    pub races_demand: u64,
    /// Demand misses attributed to a quiet HITM indicator.
    pub quiet_indicator_misses: u64,
    /// Demand misses attributed to enable latency.
    pub enable_latency_misses: u64,
    /// Every oracle violation (empty = the spec conforms).
    pub violations: Vec<Violation>,
    /// The shrunken still-failing spec, when there were violations.
    pub reproducer: Option<FuzzSpec>,
}

/// Parameters of one fuzz campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// The campaign seed; per-spec seeds derive from it.
    pub seed: u64,
    /// How many specs to generate and check.
    pub count: usize,
    /// Worker threads for the pool.
    pub workers: usize,
    /// The planted reference-detector defect (`Fault::None` in real use).
    pub fault: Fault,
}

impl FuzzConfig {
    /// The campaign's name: encodes the identity knobs so checkpoints
    /// from a different configuration are visibly foreign.
    pub fn campaign_name(&self) -> String {
        let mut name = format!("conform-fuzz-s{}-n{}", self.seed, self.count);
        if self.fault != Fault::None {
            name.push_str("-fault-");
            name.push_str(self.fault.name());
        }
        name
    }

    /// The generator seed of spec index `i`: an odd-constant multiply
    /// keeps distinct indices on distinct seeds, the xor folds in the
    /// campaign seed. Fixed formula — reproducer seeds stay meaningful
    /// across runs.
    pub fn spec_seed(&self, i: usize) -> u64 {
        self.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    fn job_label(&self, i: usize) -> String {
        format!("spec{:04}/s{:016x}", i, self.spec_seed(i))
    }

    /// The per-job fingerprint: spec seed, fault, and a generator version
    /// tag, so a checkpoint recorded before a generator change refuses to
    /// resume instead of silently mixing spec populations.
    pub fn job_fingerprint(&self, i: usize) -> u64 {
        fnv1a(
            format!(
                "fuzz-job;gen=1;spec_seed={:016x};fault={}",
                self.spec_seed(i),
                self.fault.name()
            )
            .as_bytes(),
        )
    }

    /// The campaign fingerprint over every job fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let fps: Vec<u64> = (0..self.count).map(|i| self.job_fingerprint(i)).collect();
        fingerprint_of_jobs(&self.campaign_name(), fps)
    }
}

/// The finished campaign: per-job records plus the identity under which
/// they were produced.
#[derive(Debug)]
pub struct FuzzReport {
    /// The campaign name the run was keyed by.
    pub name: String,
    /// The campaign fingerprint.
    pub fingerprint: u64,
    /// The planted fault the battery ran with.
    pub fault: Fault,
    /// One record per spec, in index order.
    pub records: Vec<JobRecord<FuzzOutcome>>,
    /// Wall-clock duration (never part of any deterministic output).
    pub wall: Duration,
}

impl FuzzReport {
    /// Jobs that did not finish (panicked or timed out — distinct from
    /// oracle violations, which are data inside finished jobs).
    pub fn failed(&self) -> usize {
        self.records.iter().filter(|r| r.outcome.is_err()).count()
    }

    /// Finished outcomes, in index order.
    pub fn outcomes(&self) -> impl Iterator<Item = &FuzzOutcome> {
        self.records.iter().filter_map(|r| r.outcome.as_ref().ok())
    }

    /// Total oracle violations across all specs.
    pub fn violations_total(&self) -> usize {
        self.outcomes().map(|o| o.violations.len()).sum()
    }

    /// Outcomes that violated at least one oracle.
    pub fn failing_outcomes(&self) -> Vec<&FuzzOutcome> {
        self.outcomes()
            .filter(|o| !o.violations.is_empty())
            .collect()
    }

    /// The deterministic aggregate document: campaign identity, headline
    /// counters, and the full violation/reproducer detail for every
    /// failing spec. Contains no wall-clock or host data — byte-identical
    /// across reruns and worker counts.
    pub fn aggregate_json(&self) -> Value {
        let sum = |f: fn(&FuzzOutcome) -> u64| Value::UInt(self.outcomes().map(f).sum());
        let failures: Vec<Value> = self
            .failing_outcomes()
            .iter()
            .map(|o| {
                Value::Object(vec![
                    ("spec_seed".to_string(), Value::UInt(o.spec_seed)),
                    ("ops".to_string(), Value::UInt(o.ops)),
                    ("violations".to_string(), o.violations.to_json()),
                    (
                        "reproducer".to_string(),
                        o.reproducer
                            .as_ref()
                            .map_or(Value::Null, |spec| spec.to_json()),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("campaign".to_string(), Value::Str(self.name.clone())),
            (
                "fingerprint".to_string(),
                Value::Str(fingerprint_hex(self.fingerprint)),
            ),
            (
                "fault".to_string(),
                Value::Str(self.fault.name().to_string()),
            ),
            ("specs".to_string(), Value::UInt(self.records.len() as u64)),
            ("jobs_failed".to_string(), Value::UInt(self.failed() as u64)),
            (
                "violations".to_string(),
                Value::UInt(self.violations_total() as u64),
            ),
            (
                "failing_specs".to_string(),
                Value::UInt(self.failing_outcomes().len() as u64),
            ),
            ("races_continuous".to_string(), sum(|o| o.races_continuous)),
            ("races_demand".to_string(), sum(|o| o.races_demand)),
            (
                "quiet_indicator_misses".to_string(),
                sum(|o| o.quiet_indicator_misses),
            ),
            (
                "enable_latency_misses".to_string(),
                sum(|o| o.enable_latency_misses),
            ),
            ("failures".to_string(), Value::Array(failures)),
        ])
    }
}

/// Runs (or resumes) a fuzz campaign on the harness worker pool.
///
/// # Errors
///
/// Returns an error when `resume` holds a checkpoint recorded for a
/// different campaign (name, fingerprint, or job set) or with undecodable
/// payloads — the same refusal, with the same words, as the simulator
/// campaign's resume path.
pub fn run_fuzz(
    cfg: &FuzzConfig,
    sink: &EventSink,
    resume: Option<&CheckpointLog>,
) -> Result<FuzzReport, String> {
    let name = cfg.campaign_name();
    let fingerprint = cfg.fingerprint();
    let job_fps: Vec<u64> = (0..cfg.count).map(|i| cfg.job_fingerprint(i)).collect();

    let prefilled = match resume {
        Some(log) => log.prefill_with(&name, fingerprint, &job_fps, |id, raw| {
            FuzzOutcome::from_json(&raw.result).map_err(|e| {
                format!(
                    "job_finished #{id} ({}): invalid result payload: {e}",
                    raw.label
                )
            })
        })?,
        None => Vec::new(),
    };

    let jobs: Vec<RawJob<FuzzOutcome>> = (0..cfg.count)
        .map(|i| {
            let spec_seed = cfg.spec_seed(i);
            let fault = cfg.fault;
            RawJob {
                id: i,
                label: cfg.job_label(i),
                timeout: None,
                summary: Some(Box::new(outcome_summary)),
                resume_payload: Some(Box::new(|o: &FuzzOutcome| o.to_json())),
                meta: vec![
                    ("spec_seed".to_string(), Value::UInt(spec_seed)),
                    (
                        "fingerprint".to_string(),
                        Value::Str(fingerprint_hex(cfg.job_fingerprint(i))),
                    ),
                ],
                body: Box::new(move |_token| Ok(run_one(spec_seed, fault))),
            }
        })
        .collect();

    let run = run_checkpointed(&name, fingerprint, jobs, prefilled, cfg.workers, sink);
    Ok(FuzzReport {
        name,
        fingerprint,
        fault: cfg.fault,
        records: run.records,
        wall: run.wall,
    })
}

/// One fuzz job: generate, check, shrink on failure.
fn run_one(spec_seed: u64, fault: Fault) -> FuzzOutcome {
    let spec = generate(spec_seed);
    let verdict = check_spec_with(&spec, fault);
    let reproducer = (!verdict.violations.is_empty()).then(|| shrink_spec(&spec, fault).value);
    FuzzOutcome {
        spec_seed,
        ops: spec.op_count() as u64,
        races_continuous: verdict.races_continuous,
        races_demand: verdict.races_demand,
        quiet_indicator_misses: verdict.quiet_indicator_misses,
        enable_latency_misses: verdict.enable_latency_misses,
        violations: verdict.violations,
        reproducer,
    }
}

fn outcome_summary(o: &FuzzOutcome) -> Value {
    Value::Object(vec![
        ("ops".to_string(), Value::UInt(o.ops)),
        (
            "races_continuous".to_string(),
            Value::UInt(o.races_continuous),
        ),
        ("races_demand".to_string(), Value::UInt(o.races_demand)),
        (
            "violations".to_string(),
            Value::UInt(o.violations.len() as u64),
        ),
    ])
}

/// Serializes a reproducer file: the fault the battery ran with and the
/// shrunken spec, replayable with `ddrace fuzz --replay FILE`.
pub fn reproducer_json(fault: Fault, spec: &FuzzSpec) -> Value {
    Value::Object(vec![
        ("fault".to_string(), Value::Str(fault.name().to_string())),
        ("spec".to_string(), spec.to_json()),
    ])
}

/// Parses a reproducer file back into its fault and spec.
///
/// # Errors
///
/// Returns a message naming the malformed part.
pub fn parse_reproducer(text: &str) -> Result<(Fault, FuzzSpec), String> {
    let value = Value::parse(text).map_err(|e| format!("reproducer is not valid JSON: {e}"))?;
    let fault = Fault::parse(
        value["fault"]
            .as_str()
            .ok_or("reproducer is missing the `fault` field")?,
    )?;
    let spec = FuzzSpec::from_json(&value["spec"])
        .map_err(|e| format!("reproducer has an invalid `spec`: {e}"))?;
    Ok((fault, spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64, count: usize, workers: usize, fault: Fault) -> FuzzConfig {
        FuzzConfig {
            seed,
            count,
            workers,
            fault,
        }
    }

    #[test]
    fn spec_seeds_are_distinct_and_stable() {
        let c = cfg(1, 64, 1, Fault::None);
        let seeds: std::collections::HashSet<u64> = (0..64).map(|i| c.spec_seed(i)).collect();
        assert_eq!(seeds.len(), 64);
        assert_eq!(c.spec_seed(0), cfg(1, 8, 4, Fault::None).spec_seed(0));
    }

    #[test]
    fn clean_campaign_has_no_violations_and_is_deterministic() {
        let c = cfg(1, 6, 2, Fault::None);
        let a = run_fuzz(&c, &EventSink::null(), None).unwrap();
        let b = run_fuzz(&c, &EventSink::null(), None).unwrap();
        assert_eq!(a.violations_total(), 0);
        assert_eq!(a.failed(), 0);
        assert_eq!(
            a.aggregate_json().to_compact(),
            b.aggregate_json().to_compact()
        );
    }

    #[test]
    fn aggregate_is_identical_across_worker_counts() {
        let one = run_fuzz(&cfg(3, 8, 1, Fault::None), &EventSink::null(), None).unwrap();
        let many = run_fuzz(&cfg(3, 8, 7, Fault::None), &EventSink::null(), None).unwrap();
        assert_eq!(
            one.aggregate_json().to_compact(),
            many.aggregate_json().to_compact()
        );
    }

    #[test]
    fn faulty_campaign_produces_shrunken_reproducers() {
        let report = run_fuzz(
            &cfg(1, 8, 2, Fault::DropWriteWrite),
            &EventSink::null(),
            None,
        )
        .unwrap();
        assert!(report.violations_total() > 0, "the fault must be caught");
        let failing = report.failing_outcomes();
        for outcome in &failing {
            let spec = outcome.reproducer.as_ref().expect("reproducer present");
            assert!(
                !check_spec_with(spec, Fault::DropWriteWrite)
                    .violations
                    .is_empty(),
                "reproducer must still fail"
            );
            assert!(
                spec.op_count() <= 8,
                "reproducer too large: {} ops",
                spec.op_count()
            );
        }
    }

    #[test]
    fn outcome_round_trips_through_json() {
        let outcome = run_one(
            cfg(1, 8, 1, Fault::DropWriteWrite).spec_seed(0),
            Fault::DropWriteWrite,
        );
        let back = FuzzOutcome::from_json(&outcome.to_json()).unwrap();
        assert_eq!(back, outcome);
    }

    #[test]
    fn campaign_resumes_from_its_own_events() {
        let c = cfg(5, 6, 2, Fault::None);
        let buffer = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = EventSink::new(Some(Box::new(SharedBuf(buffer.clone()))), false)
            .with_deterministic_wall();
        let full = run_fuzz(&c, &sink, None).unwrap();
        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        let log = CheckpointLog::parse(&text).unwrap();
        assert_eq!(log.finished.len(), 6);
        let resumed = run_fuzz(&c, &EventSink::null(), Some(&log)).unwrap();
        assert_eq!(
            resumed.aggregate_json().to_compact(),
            full.aggregate_json().to_compact()
        );
    }

    #[test]
    fn resume_refuses_a_foreign_checkpoint() {
        let c = cfg(5, 6, 2, Fault::None);
        let buffer = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = EventSink::new(Some(Box::new(SharedBuf(buffer.clone()))), false);
        run_fuzz(&c, &sink, None).unwrap();
        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        let log = CheckpointLog::parse(&text).unwrap();
        let other = cfg(6, 6, 2, Fault::None);
        let err = run_fuzz(&other, &EventSink::null(), Some(&log)).unwrap_err();
        assert!(err.contains("refusing to resume"), "{err}");
        assert!(err.contains(&fingerprint_hex(c.fingerprint())), "{err}");
    }

    #[test]
    fn reproducer_files_round_trip() {
        let spec = generate(9);
        let text = reproducer_json(Fault::IgnoreUnlock, &spec).to_compact();
        let (fault, back) = parse_reproducer(&text).unwrap();
        assert_eq!(fault, Fault::IgnoreUnlock);
        assert_eq!(back, spec);
        assert!(parse_reproducer("{}").is_err());
        assert!(parse_reproducer("not json").is_err());
    }

    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}

ddrace_json::json_struct!(FuzzOutcome {
    spec_seed,
    ops,
    races_continuous,
    races_demand,
    quiet_indicator_misses,
    enable_latency_misses,
    violations,
    reproducer
});
