//! Seeded random [`FuzzSpec`] generation.
//!
//! Generation is a pure function of the spec seed (the same splitmix64
//! [`Prng`] the workload synthesizers use), biased toward the structures
//! the detector stack actually has to get right: fork-join phases,
//! lock-heavy mutual exclusion, barrier-phased ownership transfer, and
//! deliberately racy variants of each. Roughly half the specs carry a
//! planted race; the oracles must hold on both halves.

use crate::spec::{FuzzOp, FuzzRound, FuzzSpec};
use ddrace_program::Prng;

/// Structural bias applied to a generated spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Archetype {
    /// Workers mostly touch disjoint variable ranges (fork-join style);
    /// racy variants let a worker stray into a shared hot word.
    ForkJoin,
    /// Accesses go through critical sections on a small lock pool; racy
    /// variants leave one access outside the lock.
    LockHeavy,
    /// Barriers separate writer rounds from reader rounds; racy variants
    /// put a write and a foreign read in the same round.
    BarrierPhased,
    /// Every worker hammers the same unprotected words — dense races.
    RacyKernel,
    /// No structural bias: anything the op distribution allows.
    Mixed,
}

const ARCHETYPES: [Archetype; 5] = [
    Archetype::ForkJoin,
    Archetype::LockHeavy,
    Archetype::BarrierPhased,
    Archetype::RacyKernel,
    Archetype::Mixed,
];

/// Generates the spec for `seed`. Deterministic: equal seeds, equal specs.
pub fn generate(seed: u64) -> FuzzSpec {
    let mut rng = Prng::seed_from_u64(seed);
    let archetype = ARCHETYPES[rng.below(ARCHETYPES.len() as u64) as usize];
    generate_with(seed, archetype, &mut rng)
}

fn generate_with(seed: u64, archetype: Archetype, rng: &mut Prng) -> FuzzSpec {
    let workers = rng.range_u32(2, 4);
    let vars = rng.range_u32(2, 8);
    let locks = rng.range_u32(1, 3);
    let cores = rng.range_u32(2, 4);
    let round_count = rng.range_u32(1, 3);
    // Racy variants: leave a hole in whatever discipline the archetype
    // otherwise enforces.
    let racy = rng.chance(1, 2);

    let rounds = (0..round_count)
        .map(|round| {
            let barrier_after = match archetype {
                Archetype::BarrierPhased => true,
                Archetype::ForkJoin | Archetype::RacyKernel => false,
                _ => rng.chance(1, 3),
            };
            let ops = (0..workers)
                .map(|w| worker_ops(archetype, racy, round, w, workers, vars, locks, rng))
                .collect();
            FuzzRound { ops, barrier_after }
        })
        .collect();

    FuzzSpec {
        seed,
        workers,
        vars,
        locks,
        cores,
        rounds,
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_ops(
    archetype: Archetype,
    racy: bool,
    round: u32,
    worker: u32,
    workers: u32,
    vars: u32,
    locks: u32,
    rng: &mut Prng,
) -> Vec<FuzzOp> {
    let len = rng.range_u32(1, 6);
    // The variable this worker "owns" under disjoint disciplines.
    let own = worker % vars;
    let mut ops = Vec::with_capacity(len as usize);
    for _ in 0..len {
        let op = match archetype {
            Archetype::ForkJoin => {
                // Disjoint by default; racy specs stray onto word 0.
                let var = if racy && rng.chance(1, 4) { 0 } else { own };
                leaf(rng, var)
            }
            Archetype::LockHeavy => {
                let lock = rng.below(u64::from(locks)) as u32;
                let var = rng.below(u64::from(vars)) as u32;
                if racy && rng.chance(1, 6) {
                    // The forgotten-lock bug: one access outside the section.
                    leaf(rng, var)
                } else {
                    let body = (0..rng.range_u32(1, 3)).map(|_| leaf(rng, var)).collect();
                    FuzzOp::Locked { lock, ops: body }
                }
            }
            Archetype::BarrierPhased => {
                // Even rounds write your own word, odd rounds read the
                // next worker's — ordered by the barrier unless racy.
                let neighbour = (worker + 1) % workers.max(1) % vars;
                if racy && rng.chance(1, 5) {
                    FuzzOp::Read { var: neighbour }
                } else if round.is_multiple_of(2) {
                    FuzzOp::Write { var: own }
                } else {
                    FuzzOp::Read { var: neighbour }
                }
            }
            Archetype::RacyKernel => {
                let var = rng.below(2.min(u64::from(vars))) as u32;
                leaf(rng, var)
            }
            Archetype::Mixed => match rng.below(4) {
                0 => {
                    let var = rng.below(u64::from(vars)) as u32;
                    leaf(rng, var)
                }
                1 => FuzzOp::Rmw {
                    var: rng.below(u64::from(vars)) as u32,
                },
                2 => FuzzOp::Compute {
                    cycles: rng.range_u32(1, 40),
                },
                _ => {
                    let lock = rng.below(u64::from(locks)) as u32;
                    let var = rng.below(u64::from(vars)) as u32;
                    FuzzOp::Locked {
                        lock,
                        ops: vec![leaf(rng, var)],
                    }
                }
            },
        };
        ops.push(op);
    }
    ops
}

fn leaf(rng: &mut Prng, var: u32) -> FuzzOp {
    match rng.below(3) {
        0 => FuzzOp::Read { var },
        1 => FuzzOp::Write { var },
        _ => FuzzOp::Compute {
            cycles: rng.range_u32(1, 20),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrace_program::{run_program, NullListener, SchedulerConfig};

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..50 {
            assert_eq!(generate(seed), generate(seed));
        }
    }

    #[test]
    fn every_generated_spec_lowers_and_runs() {
        for seed in 0..80 {
            let spec = generate(seed);
            assert!(spec.workers >= 2);
            assert!(!spec.rounds.is_empty());
            run_program(
                spec.to_program(),
                SchedulerConfig::jittered(spec.seed),
                &mut NullListener,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn seeds_cover_multiple_archetypes() {
        let distinct: std::collections::HashSet<String> = (0..40)
            .map(|s| format!("{:?}", generate(s).rounds))
            .collect();
        assert!(distinct.len() > 10, "generator output looks degenerate");
    }
}
