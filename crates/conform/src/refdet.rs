//! The independent reference detector and the trace feeder.
//!
//! [`RefHb`] re-implements the Djit⁺ algorithm *from its specification* —
//! full read/write vector clocks per shadow word over [`HbClocks`] — but
//! on top of `std::collections::HashMap` instead of the production
//! [`ShadowTable`](ddrace_shadow::ShadowTable). Comparing its report
//! vector **byte-for-byte** against the production `Djit` run on the same
//! trace therefore discharges two oracles at once: a third independent
//! happens-before implementation must agree, and the open-addressed
//! shadow table must behave exactly like the reference map.
//!
//! [`Fault`] is the test-only defect hook: the fuzz harness proves it can
//! catch (and shrink) real detector bugs by switching a deliberate one on
//! and watching the differential oracle fail.
//!
//! [`feed_trace`] replays a recorded [`Trace`] into any [`RaceDetector`]
//! exactly the way `ddrace-core`'s simulator dispatches events under
//! continuous analysis: data reads/writes as `on_access`, every
//! synchronizing op (atomics included) as `on_sync`, plus the thread and
//! barrier lifecycle hooks.

use ddrace_detector::{
    AccessReport, DetectorConfig, DetectorStats, Granularity, HbClocks, RaceAccess, RaceDetector,
    RaceKind, RaceReport, RaceReportSet, VectorClock,
};
use ddrace_program::{AccessKind, Addr, BarrierId, Op, ThreadId, Trace, TraceEvent};
use std::collections::HashMap;

/// A deliberately planted detector defect, for validating that the
/// differential oracles (and the shrinker behind them) actually fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// No defect: the faithful reference.
    #[default]
    None,
    /// Silently drop write-write races — the classic "first writer wins"
    /// metadata-update-before-check bug.
    DropWriteWrite,
    /// Ignore `Unlock` in the clock machinery, so lock releases publish
    /// nothing and lock-protected accesses look racy.
    IgnoreUnlock,
}

impl Fault {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Result<Fault, String> {
        Ok(match s {
            "none" => Fault::None,
            "drop-write-write" => Fault::DropWriteWrite,
            "ignore-unlock" => Fault::IgnoreUnlock,
            other => {
                return Err(format!(
                    "unknown fault `{other}` (expected none, drop-write-write, ignore-unlock)"
                ))
            }
        })
    }

    /// The CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::DropWriteWrite => "drop-write-write",
            Fault::IgnoreUnlock => "ignore-unlock",
        }
    }
}

#[derive(Debug, Clone, Default)]
struct VarState {
    reads: VectorClock,
    writes: VectorClock,
    last_writer: Option<ThreadId>,
}

/// The reference happens-before detector (see module docs).
#[derive(Debug, Clone)]
pub struct RefHb {
    clocks: HbClocks,
    shadow: HashMap<u64, VarState>,
    reports: RaceReportSet,
    stats: DetectorStats,
    granularity: Granularity,
    max_reports: usize,
    fault: Fault,
}

impl RefHb {
    /// A faithful reference detector.
    pub fn new(config: DetectorConfig) -> Self {
        RefHb::with_fault(config, Fault::None)
    }

    /// A reference detector with a planted defect.
    pub fn with_fault(config: DetectorConfig, fault: Fault) -> Self {
        RefHb {
            clocks: HbClocks::new(),
            shadow: HashMap::new(),
            reports: RaceReportSet::new(),
            stats: DetectorStats::default(),
            granularity: config.granularity,
            max_reports: config.max_reports,
            fault,
        }
    }

    fn record(&mut self, report: RaceReport) {
        self.stats.races_observed += 1;
        if self.reports.distinct() < self.max_reports {
            self.reports.record(report);
        } else {
            self.reports.merge_only(&report);
        }
    }
}

impl RaceDetector for RefHb {
    fn on_thread_start(&mut self, tid: ThreadId, parent: Option<ThreadId>) {
        self.clocks.on_thread_start(tid, parent);
    }

    fn on_thread_finish(&mut self, tid: ThreadId) {
        self.clocks.on_thread_finish(tid);
    }

    fn on_sync(&mut self, tid: ThreadId, op: &Op) {
        if op.is_sync() {
            self.stats.sync_ops += 1;
        }
        if self.fault == Fault::IgnoreUnlock && matches!(op, Op::Unlock { .. }) {
            return;
        }
        self.clocks.on_sync(tid, op);
    }

    fn on_barrier_release(&mut self, barrier: BarrierId, participants: &[ThreadId]) {
        self.clocks.on_barrier_release(barrier, participants);
    }

    fn on_access(&mut self, tid: ThreadId, addr: Addr, kind: AccessKind) -> AccessReport {
        self.stats.accesses_checked += 1;
        let key = self.granularity.key(addr);
        let tvc = self.clocks.thread(tid);
        let my_clock = tvc.get(tid);
        let var = self.shadow.entry(key).or_default();

        let shared = var.last_writer.is_some_and(|w| w != tid)
            || (0..var.reads.width() as u32).any(|u| u != tid.0 && var.reads.get(ThreadId(u)) > 0);

        let mut race = None;
        if let Some(witness) = var.writes.first_excess(tvc) {
            race = Some(RaceReport {
                addr,
                shadow_key: key,
                kind: if kind.is_write() {
                    RaceKind::WriteWrite
                } else {
                    RaceKind::WriteRead
                },
                prior: RaceAccess {
                    tid: witness,
                    kind: AccessKind::Write,
                    clock: var.writes.get(witness),
                },
                current: RaceAccess {
                    tid,
                    kind,
                    clock: my_clock,
                },
            });
        } else if kind.is_write() {
            if let Some(witness) = var.reads.first_excess(tvc) {
                race = Some(RaceReport {
                    addr,
                    shadow_key: key,
                    kind: RaceKind::ReadWrite,
                    prior: RaceAccess {
                        tid: witness,
                        kind: AccessKind::Read,
                        clock: var.reads.get(witness),
                    },
                    current: RaceAccess {
                        tid,
                        kind,
                        clock: my_clock,
                    },
                });
            }
        }

        if kind.is_write() {
            var.writes.set(tid, my_clock);
            var.last_writer = Some(tid);
        } else {
            var.reads.set(tid, my_clock);
        }

        if self.fault == Fault::DropWriteWrite {
            race = race.filter(|r| r.kind != RaceKind::WriteWrite);
        }

        let raced = race.is_some();
        if let Some(report) = race {
            self.record(report);
        }
        AccessReport {
            race: raced,
            shared,
        }
    }

    fn reports(&self) -> &RaceReportSet {
        &self.reports
    }

    fn stats(&self) -> DetectorStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "ref-hb"
    }
}

/// Replays `trace` into `detector`, dispatching exactly like the
/// simulator does under continuous analysis (see module docs). The
/// production detectors and [`RefHb`] can therefore be compared on
/// identical event streams without involving the simulator's cost or
/// cache machinery.
pub fn feed_trace(trace: &Trace, detector: &mut dyn RaceDetector) {
    for event in trace.events() {
        match event {
            TraceEvent::ThreadStarted { tid, parent } => detector.on_thread_start(*tid, *parent),
            TraceEvent::ThreadFinished { tid } => detector.on_thread_finish(*tid),
            TraceEvent::BarrierReleased {
                barrier,
                participants,
            } => detector.on_barrier_release(*barrier, participants),
            TraceEvent::Op { tid, op } => match op {
                Op::Read { addr } => {
                    detector.on_access(*tid, *addr, AccessKind::Read);
                }
                Op::Write { addr } => {
                    detector.on_access(*tid, *addr, AccessKind::Write);
                }
                Op::Compute { .. } => {}
                // Atomics and every other synchronizing op reach the
                // detector through on_sync only, as in the simulator.
                sync => detector.on_sync(*tid, sync),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrace_program::{ProgramBuilder, SchedulerConfig};

    fn racy_trace(seed: u64) -> Trace {
        let mut b = ProgramBuilder::new();
        let shared = b.alloc_shared(64);
        let x = shared.base();
        let l = b.new_lock();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN)
            .fork(t1)
            .write(x)
            .lock(l)
            .write(shared.base().offset(8))
            .unlock(l)
            .join(t1);
        b.on(t1)
            .write(x)
            .lock(l)
            .read(shared.base().offset(8))
            .unlock(l);
        Trace::record(b.build(), SchedulerConfig::jittered(seed)).unwrap()
    }

    #[test]
    fn faithful_reference_matches_production_djit() {
        let trace = racy_trace(5);
        let mut reference = RefHb::new(DetectorConfig::default());
        let mut production = ddrace_detector::Djit::new(DetectorConfig::default());
        feed_trace(&trace, &mut reference);
        feed_trace(&trace, &mut production);
        assert_eq!(
            reference.reports().reports(),
            production.reports().reports()
        );
        assert_eq!(
            reference.reports().occurrences(),
            production.reports().occurrences()
        );
        assert!(!reference.reports().is_empty());
    }

    #[test]
    fn drop_write_write_fault_diverges() {
        let trace = racy_trace(5);
        let mut faulty = RefHb::with_fault(DetectorConfig::default(), Fault::DropWriteWrite);
        let mut production = ddrace_detector::Djit::new(DetectorConfig::default());
        feed_trace(&trace, &mut faulty);
        feed_trace(&trace, &mut production);
        assert_ne!(faulty.reports().reports(), production.reports().reports());
    }

    #[test]
    fn ignore_unlock_fault_reports_phantom_races() {
        let trace = racy_trace(5);
        let mut faulty = RefHb::with_fault(DetectorConfig::default(), Fault::IgnoreUnlock);
        let mut production = ddrace_detector::Djit::new(DetectorConfig::default());
        feed_trace(&trace, &mut faulty);
        feed_trace(&trace, &mut production);
        // The lock-protected word (offset 8, shadow key 0x1000/8 + 1) must
        // now look racy to the faulty detector.
        assert!(faulty.reports().distinct() > production.reports().distinct());
    }

    #[test]
    fn fault_names_round_trip() {
        for fault in [Fault::None, Fault::DropWriteWrite, Fault::IgnoreUnlock] {
            assert_eq!(Fault::parse(fault.name()), Ok(fault));
        }
        assert!(Fault::parse("bogus").is_err());
    }
}
