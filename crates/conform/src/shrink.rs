//! Spec minimization: when an oracle fails, shrink the offending
//! [`FuzzSpec`] to a local minimum that still fails, then package it as a
//! replayable reproducer.
//!
//! The candidate moves are domain-specific and ordered
//! most-aggressive-first (see `miniprop`'s `shrink` module docs): drop a
//! whole round, silence a whole worker, then remove single ops, unwrap
//! lock sections, and strip barriers. Every candidate is again a valid
//! spec (lowering is total), so the walk can never leave the input space.

use crate::oracles::check_spec_with;
use crate::refdet::Fault;
use crate::spec::{FuzzOp, FuzzSpec};
use proptest::shrink::{shrink_budgeted, Shrunk};

/// Evaluation budget for one shrink run. Each evaluation replays the full
/// oracle battery (~10 small simulations), so this bounds a shrink to a
/// few seconds even for pathological specs.
pub const SHRINK_BUDGET: usize = 400;

/// Minimizes `spec` while the oracle battery (under `fault`) keeps
/// failing. Deterministic; returns the original spec unchanged if no
/// candidate reproduces the failure.
pub fn shrink_spec(spec: &FuzzSpec, fault: Fault) -> Shrunk<FuzzSpec> {
    shrink_budgeted(
        spec.clone(),
        |s| !check_spec_with(s, fault).violations.is_empty(),
        candidates,
        SHRINK_BUDGET,
    )
}

/// Every one-step simplification of `spec`, most aggressive first.
fn candidates(spec: &FuzzSpec) -> Vec<FuzzSpec> {
    let mut out = Vec::new();

    // Drop a whole round.
    for i in 0..spec.rounds.len() {
        let mut s = spec.clone();
        s.rounds.remove(i);
        out.push(s);
    }

    // Drop the last worker entirely (its op lists with it).
    if spec.workers > 1 {
        let mut s = spec.clone();
        s.workers -= 1;
        for round in &mut s.rounds {
            round.ops.truncate(s.workers as usize);
        }
        out.push(s);
    }

    // Silence one worker's ops in one round.
    for (r, round) in spec.rounds.iter().enumerate() {
        for (w, ops) in round.ops.iter().enumerate() {
            if !ops.is_empty() {
                let mut s = spec.clone();
                s.rounds[r].ops[w].clear();
                out.push(s);
            }
        }
    }

    // Remove a single op; unwrap or thin lock sections; strip barriers.
    for (r, round) in spec.rounds.iter().enumerate() {
        for (w, ops) in round.ops.iter().enumerate() {
            for (i, op) in ops.iter().enumerate() {
                let mut removed = spec.clone();
                removed.rounds[r].ops[w].remove(i);
                out.push(removed);
                if let FuzzOp::Locked { ops: body, .. } = op {
                    // Splice the body in place of the section.
                    let mut unwrapped = spec.clone();
                    unwrapped.rounds[r].ops[w].splice(i..=i, body.iter().cloned());
                    out.push(unwrapped);
                    // Drop one op from inside the section.
                    for j in 0..body.len() {
                        let mut thinner = spec.clone();
                        if let FuzzOp::Locked { ops: b, .. } = &mut thinner.rounds[r].ops[w][i] {
                            b.remove(j);
                        }
                        out.push(thinner);
                    }
                }
            }
        }
        if round.barrier_after {
            let mut s = spec.clone();
            s.rounds[r].barrier_after = false;
            out.push(s);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FuzzRound;

    fn bloated_racy_spec() -> FuzzSpec {
        // Plenty of irrelevant structure around one WW race on var 0.
        let noise = |w: u32| {
            vec![
                FuzzOp::Compute { cycles: 9 },
                FuzzOp::Write { var: 0 },
                FuzzOp::Locked {
                    lock: 0,
                    ops: vec![FuzzOp::Read { var: 1 + w }, FuzzOp::Write { var: 1 + w }],
                },
                FuzzOp::Compute { cycles: 4 },
            ]
        };
        FuzzSpec {
            seed: 21,
            workers: 3,
            vars: 4,
            locks: 2,
            cores: 2,
            rounds: vec![
                FuzzRound {
                    ops: vec![noise(0), noise(1), noise(2)],
                    barrier_after: true,
                },
                FuzzRound {
                    ops: vec![vec![FuzzOp::Read { var: 3 }], vec![], vec![]],
                    barrier_after: false,
                },
            ],
        }
    }

    #[test]
    fn shrinks_fault_repro_to_a_handful_of_ops() {
        let spec = bloated_racy_spec();
        assert!(
            !check_spec_with(&spec, Fault::DropWriteWrite)
                .violations
                .is_empty(),
            "the fault must fire on the bloated spec"
        );
        let shrunk = shrink_spec(&spec, Fault::DropWriteWrite);
        assert!(
            !check_spec_with(&shrunk.value, Fault::DropWriteWrite)
                .violations
                .is_empty(),
            "the shrunken spec must still fail"
        );
        assert!(
            shrunk.value.op_count() <= 8,
            "expected <= 8 ops, got {} ({:?})",
            shrunk.value.op_count(),
            shrunk.value
        );
        assert!(shrunk.steps > 0);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let spec = bloated_racy_spec();
        let a = shrink_spec(&spec, Fault::DropWriteWrite);
        let b = shrink_spec(&spec, Fault::DropWriteWrite);
        assert_eq!(a, b);
    }

    #[test]
    fn conforming_spec_shrinks_to_itself() {
        let spec = FuzzSpec {
            seed: 1,
            workers: 2,
            vars: 1,
            locks: 1,
            cores: 2,
            rounds: vec![FuzzRound {
                ops: vec![
                    vec![FuzzOp::Write { var: 0 }],
                    vec![FuzzOp::Write { var: 0 }],
                ],
                barrier_after: false,
            }],
        };
        let shrunk = shrink_spec(&spec, Fault::None);
        assert_eq!(shrunk.value, spec);
        assert_eq!(shrunk.steps, 0);
    }
}
