//! # ddrace-conform — differential + metamorphic fuzzing of the detector stack
//!
//! The simulator, the detectors, the shadow memory, and the scheduler all
//! claim invariants about each other ("demand-driven finds a subset of
//! continuous", "FastTrack and Djit⁺ flag the same variables", "thread
//! numbering is arbitrary"). This crate turns those claims into executable
//! oracles and hammers them with generated programs:
//!
//! - [`spec`] — the [`FuzzSpec`](spec::FuzzSpec) intermediate
//!   representation and its total lowering to a runnable
//!   [`Program`](ddrace_program::Program);
//! - [`gen`] — seeded spec generation, biased toward lock, fork-join,
//!   barrier, and deliberately racy structures;
//! - [`refdet`] — [`RefHb`](refdet::RefHb), a from-spec reference
//!   happens-before detector over a plain `HashMap`, plus
//!   [`feed_trace`](refdet::feed_trace) and the planted
//!   [`Fault`](refdet::Fault) hook that proves the oracles can catch real
//!   bugs;
//! - [`oracles`] — the battery: differential (FastTrack vs Djit⁺ vs
//!   reference; demand ⊆ continuous with every miss attributed; scheduler
//!   picker equivalence) and metamorphic (thread permutation, address
//!   translation, compute padding);
//! - [`shrink`] — greedy spec minimization of failures into ≤-a-handful
//!   of-ops reproducers;
//! - [`campaign`] — the `ddrace fuzz` campaign on the harness worker
//!   pool, with JSONL checkpoints, `--resume`, and a byte-deterministic
//!   aggregate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod gen;
pub mod oracles;
pub mod refdet;
pub mod shrink;
pub mod spec;

pub use campaign::{
    parse_reproducer, reproducer_json, run_fuzz, FuzzConfig, FuzzOutcome, FuzzReport,
};
pub use gen::{generate, Archetype};
pub use oracles::{check_spec, check_spec_with, SpecVerdict, Violation};
pub use refdet::{feed_trace, Fault, RefHb};
pub use shrink::{shrink_spec, SHRINK_BUDGET};
pub use spec::{FuzzOp, FuzzRound, FuzzSpec};
