//! The fuzzer's program model: a [`FuzzSpec`] is a tiny, structured,
//! deadlock-free-by-construction description of a multithreaded program.
//!
//! The shape is deliberately restrictive — rounds of straight-line
//! per-worker op lists, an optional uniform barrier between rounds, and
//! well-nested lock sections — because every spec must *lower* to a
//! [`Program`] that the scheduler can always run to completion. Locks are
//! acquired and released in a single `Locked` block (no lock-order
//! inversions), barriers are arrived at by every worker in the same round
//! (no participant mismatch), and the main thread only forks and joins.
//! Any `FuzzSpec` value, including every intermediate value the shrinker
//! produces, is therefore a valid fuzz input.

use ddrace_program::{LockId, Program, ProgramBuilder, ThreadCursor, ThreadId};

/// One operation a fuzzed worker performs. `var` and `lock` are indices
/// into the spec's shared-variable and lock pools (taken modulo the pool
/// size at lowering, so shrunk specs never dangle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuzzOp {
    /// Read shared variable `var`.
    Read {
        /// Shared-variable index.
        var: u32,
    },
    /// Write shared variable `var`.
    Write {
        /// Shared-variable index.
        var: u32,
    },
    /// Atomic read-modify-write on shared variable `var`.
    Rmw {
        /// Shared-variable index.
        var: u32,
    },
    /// Pure computation (detector-invisible).
    Compute {
        /// Simulated cycles.
        cycles: u32,
    },
    /// A well-nested critical section: acquire `lock`, run `ops`, release.
    Locked {
        /// Lock index.
        lock: u32,
        /// The section body (leaf ops; generators do not nest sections).
        ops: Vec<FuzzOp>,
    },
}

impl FuzzOp {
    /// Number of spec operations this op counts as: one per node, so a
    /// `Locked` section is the wrapper plus its body. This is the size
    /// metric shrink quality is measured in.
    pub fn count(&self) -> usize {
        match self {
            FuzzOp::Locked { ops, .. } => 1 + ops.iter().map(FuzzOp::count).sum::<usize>(),
            _ => 1,
        }
    }
}

/// One execution round: each worker runs its op list, then (optionally)
/// all workers meet at a barrier before the next round starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzRound {
    /// Per-worker op lists; index = worker number. Workers beyond the
    /// list's length simply idle this round.
    pub ops: Vec<Vec<FuzzOp>>,
    /// Whether every worker synchronizes on a barrier after this round.
    pub barrier_after: bool,
}

/// A complete fuzz input: the program structure plus the simulation
/// parameters it runs under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzSpec {
    /// Seed for the scheduler (interleaving jitter), not the generator.
    pub seed: u64,
    /// Worker thread count (the main thread forks and joins these).
    pub workers: u32,
    /// Shared-variable pool size (8-byte words).
    pub vars: u32,
    /// Lock pool size.
    pub locks: u32,
    /// Simulated core count.
    pub cores: u32,
    /// The rounds, in order.
    pub rounds: Vec<FuzzRound>,
}

impl FuzzSpec {
    /// Total spec operations across all rounds and workers.
    pub fn op_count(&self) -> usize {
        self.rounds
            .iter()
            .flat_map(|r| r.ops.iter())
            .flat_map(|ops| ops.iter())
            .map(FuzzOp::count)
            .sum()
    }

    /// Lowers the spec to a runnable [`Program`]: main forks every
    /// worker, each worker runs its rounds (with the round barriers), and
    /// main joins them all. Total by construction — every spec value
    /// lowers, with out-of-range `var`/`lock` indices wrapped into the
    /// pools.
    pub fn to_program(&self) -> Program {
        let workers = self.workers.max(1);
        let vars = u64::from(self.vars.max(1));
        let mut b = ProgramBuilder::new();
        let shared = b.alloc_shared(vars * 8);
        let locks: Vec<LockId> = (0..self.locks.max(1)).map(|_| b.new_lock()).collect();
        let tids: Vec<ThreadId> = (0..workers).map(|_| b.add_thread()).collect();
        // One barrier object per barriered round; reuse across rounds
        // would make a worker that races ahead rejoin the wrong episode.
        let barriers: Vec<_> = self
            .rounds
            .iter()
            .map(|r| r.barrier_after.then(|| b.new_barrier()))
            .collect();

        let mut main = b.on(ThreadId::MAIN);
        for &t in &tids {
            main = main.fork(t);
        }
        for &t in &tids {
            main = main.join(t);
        }
        let _ = main;

        for (w, &tid) in tids.iter().enumerate() {
            let mut c = b.on(tid);
            for (round, bar) in self.rounds.iter().zip(&barriers) {
                if let Some(ops) = round.ops.get(w) {
                    for op in ops {
                        c = lower_op(c, op, &shared, vars, &locks);
                    }
                }
                if let Some(bar) = bar {
                    c = c.barrier(*bar, workers);
                }
            }
            let _ = c;
        }
        b.build()
    }
}

fn lower_op<'b>(
    c: ThreadCursor<'b>,
    op: &FuzzOp,
    shared: &ddrace_program::Region,
    vars: u64,
    locks: &[LockId],
) -> ThreadCursor<'b> {
    match op {
        FuzzOp::Read { var } => c.read(shared.word(u64::from(*var) % vars)),
        FuzzOp::Write { var } => c.write(shared.word(u64::from(*var) % vars)),
        FuzzOp::Rmw { var } => c.atomic_rmw(shared.word(u64::from(*var) % vars)),
        FuzzOp::Compute { cycles } => c.compute((*cycles).max(1)),
        FuzzOp::Locked { lock, ops } => {
            let l = locks[*lock as usize % locks.len()];
            let mut c = c.lock(l);
            for inner in ops {
                c = lower_op(c, inner, shared, vars, locks);
            }
            c.unlock(l)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrace_program::{run_program, NullListener, SchedulerConfig};

    fn tiny() -> FuzzSpec {
        FuzzSpec {
            seed: 3,
            workers: 2,
            vars: 2,
            locks: 1,
            cores: 2,
            rounds: vec![
                FuzzRound {
                    ops: vec![
                        vec![
                            FuzzOp::Write { var: 0 },
                            FuzzOp::Locked {
                                lock: 0,
                                ops: vec![FuzzOp::Read { var: 1 }],
                            },
                        ],
                        vec![FuzzOp::Rmw { var: 1 }, FuzzOp::Compute { cycles: 5 }],
                    ],
                    barrier_after: true,
                },
                FuzzRound {
                    ops: vec![vec![FuzzOp::Read { var: 0 }]],
                    barrier_after: false,
                },
            ],
        }
    }

    #[test]
    fn op_count_counts_nodes() {
        assert_eq!(tiny().op_count(), 6);
    }

    #[test]
    fn lowering_runs_to_completion() {
        run_program(
            tiny().to_program(),
            SchedulerConfig::jittered(9),
            &mut NullListener,
        )
        .unwrap();
    }

    #[test]
    fn out_of_range_indices_wrap() {
        let mut spec = tiny();
        spec.rounds[0].ops[0].push(FuzzOp::Locked {
            lock: 77,
            ops: vec![FuzzOp::Write { var: 99 }],
        });
        run_program(
            spec.to_program(),
            SchedulerConfig::default(),
            &mut NullListener,
        )
        .unwrap();
    }

    #[test]
    fn degenerate_specs_lower() {
        // No rounds, zero pools: lowering clamps and still builds.
        let spec = FuzzSpec {
            seed: 0,
            workers: 0,
            vars: 0,
            locks: 0,
            cores: 1,
            rounds: vec![],
        };
        run_program(
            spec.to_program(),
            SchedulerConfig::default(),
            &mut NullListener,
        )
        .unwrap();
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = tiny();
        let json = ddrace_json::to_string(&spec).unwrap();
        let back: FuzzSpec = ddrace_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}

ddrace_json::json_enum!(FuzzOp {
    Read { var },
    Write { var },
    Rmw { var },
    Compute { cycles },
    Locked { lock, ops },
});
ddrace_json::json_struct!(FuzzRound { ops, barrier_after });
ddrace_json::json_struct!(FuzzSpec {
    seed,
    workers,
    vars,
    locks,
    cores,
    rounds
});
