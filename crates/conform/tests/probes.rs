//! The oracle battery's pieces, applied to the handwritten workload
//! probes instead of fuzzed specs: each probe's documented racy/clean
//! verdict must come out of the production stack, and the differential
//! oracles (FastTrack vs Djit⁺ vs the reference detector, demand ⊆
//! continuous) must hold on real workload shapes — publication idioms,
//! delayed sharing, lock discipline, barrier hand-offs.
//!
//! `Program` is intentionally not `Clone`, so every use regenerates the
//! probe set — [`conformance_probes`] is a pure constructor.

use ddrace_conform::{feed_trace, RefHb};
use ddrace_core::{AnalysisMode, DetectorKind, SimConfig, Simulation};
use ddrace_detector::{racy_keys, DetectorConfig, Djit, FastTrack, RaceDetector};
use ddrace_program::{PickStrategy, Program, SchedulerConfig, Trace};
use ddrace_workloads::racy::conformance_probes;

fn run_mode(program: Program, seed: u64, mode: AnalysisMode) -> Vec<u64> {
    let mut cfg = SimConfig::new(2, mode);
    cfg.scheduler = SchedulerConfig::jittered(seed);
    cfg.detector_kind = DetectorKind::FastTrack;
    let result = Simulation::new(cfg)
        .run(program)
        .expect("probe must schedule");
    racy_keys(&result.races.reports)
}

#[test]
fn probes_match_their_documented_verdicts() {
    for seed in [1, 7, 23] {
        for (name, program, racy) in conformance_probes() {
            let keys = run_mode(program, seed, AnalysisMode::Continuous);
            assert_eq!(
                !keys.is_empty(),
                racy,
                "probe {name} seed {seed}: expected racy={racy}, racy keys {keys:?}"
            );
        }
    }
}

#[test]
fn probes_agree_across_detectors_and_reference() {
    for seed in [1, 7, 23] {
        for (name, program, _racy) in conformance_probes() {
            let trace = Trace::record_with(
                program,
                SchedulerConfig::jittered(seed),
                PickStrategy::RunQueue,
            )
            .unwrap_or_else(|e| panic!("probe {name} seed {seed}: {e}"));
            let mut ft = FastTrack::new(DetectorConfig::default());
            let mut dj = Djit::new(DetectorConfig::default());
            let mut reference = RefHb::new(DetectorConfig::default());
            feed_trace(&trace, &mut ft);
            feed_trace(&trace, &mut dj);
            feed_trace(&trace, &mut reference);
            assert_eq!(
                racy_keys(ft.reports().reports()),
                racy_keys(dj.reports().reports()),
                "probe {name} seed {seed}: FastTrack vs Djit"
            );
            assert_eq!(
                reference.reports().reports(),
                dj.reports().reports(),
                "probe {name} seed {seed}: reference vs Djit reports"
            );
            assert_eq!(
                reference.reports().occurrences(),
                dj.reports().occurrences(),
                "probe {name} seed {seed}: reference vs Djit occurrences"
            );
        }
    }
}

#[test]
fn probes_keep_demand_a_subset_of_continuous() {
    for seed in [1, 7] {
        // Two passes over the same deterministic constructor: one program
        // for the continuous run, one for the demand run.
        for ((name, continuous_prog, _), (_, demand_prog, _)) in
            conformance_probes().into_iter().zip(conformance_probes())
        {
            let continuous = run_mode(continuous_prog, seed, AnalysisMode::Continuous);
            let demand = run_mode(demand_prog, seed, AnalysisMode::demand_hitm());
            for key in demand {
                assert!(
                    continuous.binary_search(&key).is_ok(),
                    "probe {name} seed {seed}: demand-only racy key {key}"
                );
            }
        }
    }
}
