//! Cross-engine and demand-driven-toggle tests for the sharded monitor:
//! the sharded engine must report the same racy addresses as the legacy
//! single-lock engine, recorded traces must replay to the same racy
//! addresses they were detected with live, `join` must be idempotent,
//! and the enable/disable drain must survive concurrent hammering.

use ddrace_detector::{racy_keys, DetectorConfig, FastTrack, RaceDetector};
use ddrace_native::{addr_of, Monitor, ThreadToken};
use ddrace_program::{AccessKind, Addr, Op, TraceEvent};
use ddrace_trace::TraceRecord;
use std::sync::Arc;
use std::sync::Mutex;

/// Fixed addresses so racy-key sets are comparable across runs and
/// engines (stack addresses would differ per run).
const LOCKED: Addr = Addr(0x1000);
const RACY_WW: Addr = Addr(0x2000);
const RACY_WR: Addr = Addr(0x2040);
const PRIVATE_BASE: u64 = 0x3000;

/// A deterministic mixed workload: four threads share a lock-protected
/// counter, two race on a write-write pair, two race on a write-read
/// pair, and each has a private working set. The racy-address set is
/// schedule-independent (happens-before judges the sync structure, not
/// the interleaving).
fn mixed_workload(monitor: &Arc<Monitor>, root: ThreadToken) {
    let real_lock = Arc::new(Mutex::new(0u64));
    let mut tokens = Vec::new();
    let mut handles = Vec::new();
    for i in 0..4u64 {
        let token = monitor.fork(root);
        tokens.push(token);
        let m = monitor.clone();
        let real = real_lock.clone();
        handles.push(std::thread::spawn(move || {
            for rep in 0..50 {
                // Clean: lock-protected shared counter.
                let guard = real.lock().unwrap();
                m.lock_acquired(token, 1);
                m.read(token, LOCKED);
                m.write(token, LOCKED);
                m.lock_released(token, 1);
                drop(guard);
                // Racy: threads 0 and 1 write RACY_WW unsynchronized;
                // thread 2 writes RACY_WR, thread 3 reads it.
                if i < 2 {
                    m.write(token, RACY_WW);
                } else if i == 2 {
                    m.write(token, RACY_WR);
                } else {
                    m.read(token, RACY_WR);
                }
                // Clean: private working set.
                let private = Addr(PRIVATE_BASE + i * 0x100 + (rep % 8) * 8);
                m.write(token, private);
                m.read(token, private);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for token in tokens {
        assert!(monitor.join(root, token));
    }
}

fn replay_racy_keys(records: &[TraceRecord]) -> Vec<u64> {
    let mut d = FastTrack::new(DetectorConfig::default());
    for record in records {
        match record {
            TraceRecord::Exec(event) => match event {
                TraceEvent::ThreadStarted { tid, parent } => d.on_thread_start(*tid, *parent),
                TraceEvent::ThreadFinished { tid } => d.on_thread_finish(*tid),
                TraceEvent::Op { tid, op } => match op {
                    Op::Read { addr } => {
                        d.on_access(*tid, *addr, AccessKind::Read);
                    }
                    Op::Write { addr } => {
                        d.on_access(*tid, *addr, AccessKind::Write);
                    }
                    other => d.on_sync(*tid, other),
                },
                TraceEvent::BarrierReleased {
                    barrier,
                    participants,
                } => d.on_barrier_release(*barrier, participants),
            },
            TraceRecord::Hitm { .. } => {}
        }
    }
    racy_keys(d.reports().reports())
}

#[test]
fn sharded_and_legacy_report_identical_racy_keys() {
    for _ in 0..5 {
        let (sharded, sharded_root) = Monitor::new();
        mixed_workload(&sharded, sharded_root);
        let (legacy, legacy_root) = Monitor::legacy();
        mixed_workload(&legacy, legacy_root);

        let sharded_keys = racy_keys(&sharded.reports());
        let legacy_keys = racy_keys(&legacy.reports());
        assert!(!sharded_keys.is_empty(), "the workload has genuine races");
        assert_eq!(
            sharded_keys, legacy_keys,
            "engines must agree on which addresses race"
        );
    }
}

#[test]
fn shard_count_is_configurable_and_equivalent() {
    for shards in [1, 4, 64] {
        let (monitor, root) = Monitor::with_shards(DetectorConfig::default(), shards);
        assert_eq!(monitor.shard_count(), shards.max(1));
        mixed_workload(&monitor, root);
        let (reference, ref_root) = Monitor::legacy();
        mixed_workload(&reference, ref_root);
        assert_eq!(
            racy_keys(&monitor.reports()),
            racy_keys(&reference.reports())
        );
    }
}

/// The lock-ordering fix, pinned end to end: a multi-threaded recorded
/// run must replay (as `ddrace ingest` would) to exactly the racy
/// addresses detected live. Before buffering moved under the shard /
/// detector lock, a hook could be detected in one order and captured in
/// another, letting replays disagree with live detection.
#[test]
fn recorded_runs_replay_to_the_same_racy_keys() {
    for _ in 0..5 {
        let (monitor, root) = Monitor::recording();
        mixed_workload(&monitor, root);
        let live = racy_keys(&monitor.reports());
        let trace = monitor.recorded_trace().expect("recording is on");
        assert!(!live.is_empty());
        assert_eq!(replay_racy_keys(&trace), live);
    }
    // Same pin for the legacy engine's tightened lock scope.
    let (monitor, root) = Monitor::legacy_recording();
    mixed_workload(&monitor, root);
    let live = racy_keys(&monitor.reports());
    let trace = monitor.recorded_trace().expect("recording is on");
    assert_eq!(replay_racy_keys(&trace), live);
}

#[test]
fn join_is_idempotent_and_rejects_unknown_children() {
    let (monitor, root) = Monitor::recording();
    let child = monitor.fork(root);
    let m = monitor.clone();
    std::thread::spawn(move || {
        m.write(child, RACY_WW);
    })
    .join()
    .unwrap();

    assert!(monitor.join(root, child), "first join is performed");
    assert!(!monitor.join(root, child), "double join is a no-op");
    assert!(!monitor.join(root, root), "the root has no joiner");

    // A token this monitor never forked (here: from a different monitor
    // with more threads) is rejected rather than corrupting state.
    let (other, other_root) = Monitor::new();
    let foreign = other.fork(other_root);
    let foreign = other.fork(foreign);
    assert!(!monitor.join(root, foreign));

    let trace = monitor.recorded_trace().expect("recording is on");
    let finishes = trace
        .iter()
        .filter(|r| {
            matches!(
                r,
                TraceRecord::Exec(TraceEvent::ThreadFinished { tid }) if *tid == child.thread_id()
            )
        })
        .count();
    assert_eq!(finishes, 1, "exactly one ThreadFinished despite re-joins");
}

#[test]
fn disable_suppresses_detection_and_enable_restores_it() {
    let (monitor, root) = Monitor::new();
    assert!(monitor.is_enabled());

    let a = Addr(0x100);
    let b = Addr(0x200);
    let c = Addr(0x300);

    // Enabled: an unsynchronized write pair races.
    let t1 = monitor.fork(root);
    let m = monitor.clone();
    std::thread::spawn(move || {
        m.write(t1, a);
    })
    .join()
    .unwrap();
    monitor.write(root, a);
    assert_eq!(monitor.race_count(), 1);

    // Disabled: the same shape goes unobserved, and hooks report no race.
    monitor.disable();
    assert!(!monitor.is_enabled());
    let checked_before = monitor.stats().accesses_checked;
    let t2 = monitor.fork(root);
    let m = monitor.clone();
    std::thread::spawn(move || {
        assert!(!m.write(t2, b));
    })
    .join()
    .unwrap();
    assert!(!monitor.write(root, b));
    assert_eq!(monitor.race_count(), 1, "disabled accesses are not checked");
    assert_eq!(monitor.stats().accesses_checked, checked_before);

    // Re-enabled: detection resumes (sync tracking never stopped, so the
    // join edges made while disabled still order accesses correctly).
    monitor.enable();
    monitor.join(root, t1);
    monitor.join(root, t2);
    let t3 = monitor.fork(root);
    let m = monitor.clone();
    std::thread::spawn(move || {
        m.write(t3, c);
    })
    .join()
    .unwrap();
    monitor.write(root, c);
    assert_eq!(monitor.race_count(), 2);
    // Ordered-by-join accesses stay clean after the toggle round-trip.
    assert!(!monitor.read(root, a));
}

/// Hammer the toggle from one thread while workers stream accesses:
/// exercises the drain protocol (flag, then a sweep of every shard
/// lock) under real contention. The assertions are completion (no
/// deadlock — the drain must not hold two locks at once) plus detector
/// sanity: the racy pair is present, the clean keys stay clean.
#[test]
fn toggle_stress_under_concurrent_access() {
    let (monitor, root) = Monitor::new();
    let mut tokens = Vec::new();
    let mut handles = Vec::new();
    for i in 0..4u64 {
        let token = monitor.fork(root);
        tokens.push(token);
        let m = monitor.clone();
        handles.push(std::thread::spawn(move || {
            for rep in 0..5_000u64 {
                m.write(token, Addr(0x9000 + i * 0x100));
                m.read(token, Addr(0x9000 + i * 0x100));
                if i < 2 {
                    m.write(token, RACY_WW);
                }
                if rep % 64 == 0 {
                    m.atomic(token, Addr(0xA000 + i * 8));
                }
            }
        }));
    }
    for _ in 0..100 {
        monitor.disable();
        std::thread::yield_now();
        monitor.enable();
    }
    for h in handles {
        h.join().unwrap();
    }
    for token in tokens {
        assert!(monitor.join(root, token));
    }
    monitor.enable();
    let keys = racy_keys(&monitor.reports());
    // Private per-thread addresses never race, toggling or not.
    assert!(keys.iter().all(|&k| !(0x9000..0xA000).contains(&(k << 3))));
    let stats = monitor.stats();
    assert!(stats.accesses_checked <= 4 * 5_000 * 3);
    assert!(stats.sync_ops > 0);
}

/// The per-thread epoch filter answers repeat same-epoch accesses
/// without touching a shard lock, and its hits are folded into the
/// fast-path counters.
#[test]
fn epoch_filter_counts_repeat_accesses_as_fast_path_hits() {
    let (monitor, root) = Monitor::new();
    let data = 0u64;
    let addr = addr_of(&data);
    for _ in 0..1_000 {
        monitor.write(root, addr);
    }
    let stats = monitor.stats();
    assert_eq!(stats.accesses_checked, 1_000);
    assert_eq!(stats.fast_path_hits, 999, "all repeats are fast-path");

    // Epoch advance (a release op) invalidates the cached epoch: the
    // next access misses the filter and re-checks under the shard lock.
    monitor.lock_acquired(root, 7);
    monitor.lock_released(root, 7);
    monitor.write(root, addr);
    let stats = monitor.stats();
    assert_eq!(stats.accesses_checked, 1_001);
    assert_eq!(stats.fast_path_hits, 999);
}

/// Unknown thread ids must not be silently registered by data hooks.
#[test]
#[should_panic(expected = "does not belong to this monitor")]
fn foreign_token_data_hook_panics() {
    let (monitor, _root) = Monitor::new();
    let (other, other_root) = Monitor::new();
    let foreign = other.fork(other_root);
    let _ = monitor.write(foreign, Addr(0x40));
}
