//! Race detection for **real threads**: a manual-instrumentation monitor
//! backed by the same FastTrack engine the simulator uses.
//!
//! The simulation crates reproduce the paper's hardware mechanism; this
//! crate is the complementary deployment surface the reproduction bands
//! call feasible — instrumenting native Rust threads. There is no
//! portable user-space access to HITM performance counters, so the
//! *demand-driven toggle* stays in the simulator; what carries over is
//! the detector: annotate the memory accesses and synchronization of a
//! concurrent component under test, run it on real `std::thread`s, and
//! get happens-before race reports.
//!
//! Because detection is happens-before-based, verdicts do not depend on
//! the actual interleaving the OS produced: two accesses with no
//! monitor-visible synchronization between them are racy on *every*
//! schedule, so tests written against [`Monitor`] are deterministic.
//!
//! # Example
//!
//! ```
//! use ddrace_native::{addr_of, Monitor};
//!
//! let (monitor, main_token) = Monitor::new();
//! let data = 42u64;
//! let addr = addr_of(&data);
//!
//! let child_token = monitor.fork(main_token);
//! let m = monitor.clone();
//! let handle = std::thread::spawn(move || {
//!     m.write(child_token, addr); // unsynchronized with main's read
//! });
//! monitor.read(main_token, addr);
//! handle.join().unwrap();
//! monitor.join(main_token, child_token);
//!
//! assert!(monitor.race_count() >= 1);
//! ```
//!
//! ## Hook placement
//!
//! * Call [`Monitor::read`]/[`Monitor::write`] adjacent to the access they
//!   describe (immediately before or after; the tiny window between hook
//!   and access is the usual manual-instrumentation caveat).
//! * Call [`Monitor::lock_acquired`] **after** acquiring the real lock and
//!   [`Monitor::lock_released`] **before** releasing it: the recorded
//!   critical section then nests inside the real one, which can only
//!   under-approximate ordering — conservative in the false-positive-free
//!   direction is impossible for manual hooks, but this placement keeps
//!   the recorded edges truthful.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use ddrace_detector::{DetectorConfig, FastTrack, RaceDetector, RaceReport};
use ddrace_program::{AccessKind, Addr, LockId, Op, ThreadId, TraceEvent};
use ddrace_trace::TraceRecord;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

/// Identifies one registered thread to the monitor. Cheap to copy; send
/// it into the thread it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadToken {
    tid: ThreadId,
}

impl ThreadToken {
    /// The underlying detector thread id.
    pub fn thread_id(self) -> ThreadId {
        self.tid
    }
}

/// The race monitor: wraps a [`FastTrack`] detector behind a lock so real
/// threads can feed it concurrently.
///
/// Lock-serialized hooks are how early dynamic-analysis prototypes worked
/// (and why the paper's continuous mode is so slow); this crate is a
/// correctness tool for tests, not a production profiler.
#[derive(Debug)]
pub struct Monitor {
    detector: Mutex<FastTrack>,
    /// `Some` when recording: per-thread buffered capture of the hook
    /// stream, emitted as `.ddt` records via [`Monitor::recorded_trace`].
    recorder: Option<Mutex<Recorder>>,
    next_tid: AtomicU32,
}

/// Buffered trace capture for real-thread runs.
///
/// Data accesses append to a pre-grown per-thread buffer (no global
/// ordering decision, amortized O(1), no per-event allocation); the
/// buffer is drained into the global log whenever its thread performs a
/// synchronization operation. Cross-thread placement of data accesses
/// *between* sync points is therefore approximate — which is exactly
/// the precision a happens-before detector needs, since unsynchronized
/// accesses carry no ordering anyway. Sync and thread-lifecycle events
/// land in the log in the same global order the detector observed them
/// (the recorder lock is taken while the detector lock is held).
#[derive(Debug, Default)]
struct Recorder {
    log: Vec<TraceRecord>,
    buffers: Vec<Vec<TraceRecord>>,
}

impl Recorder {
    /// Moves `tid`'s buffered data accesses into the global log.
    fn flush(&mut self, tid: ThreadId) {
        if let Some(buf) = self.buffers.get_mut(tid.index()) {
            self.log.append(buf);
        }
    }

    fn buffer(&mut self, tid: ThreadId, op: Op) {
        let idx = tid.index();
        if self.buffers.len() <= idx {
            self.buffers.resize_with(idx + 1, || Vec::with_capacity(64));
        }
        self.buffers[idx].push(TraceRecord::Exec(TraceEvent::Op { tid, op }));
    }

    fn push(&mut self, event: TraceEvent) {
        self.log.push(TraceRecord::Exec(event));
    }
}

impl Monitor {
    /// Creates a monitor and registers the calling thread as the root.
    pub fn new() -> (Arc<Monitor>, ThreadToken) {
        Self::with_config(DetectorConfig::default())
    }

    /// Creates a monitor with an explicit detector configuration.
    pub fn with_config(config: DetectorConfig) -> (Arc<Monitor>, ThreadToken) {
        Self::build(config, false)
    }

    /// Creates a monitor that also records the hook stream as a trace
    /// (see [`Monitor::recorded_trace`]).
    pub fn recording() -> (Arc<Monitor>, ThreadToken) {
        Self::build(DetectorConfig::default(), true)
    }

    fn build(config: DetectorConfig, record: bool) -> (Arc<Monitor>, ThreadToken) {
        let monitor = Arc::new(Monitor {
            detector: Mutex::new(FastTrack::new(config)),
            recorder: record.then(|| Mutex::new(Recorder::default())),
            next_tid: AtomicU32::new(1),
        });
        let root = ThreadToken { tid: ThreadId(0) };
        monitor
            .detector
            .lock()
            .unwrap()
            .on_thread_start(root.tid, None);
        if let Some(rec) = &monitor.recorder {
            rec.lock().unwrap().push(TraceEvent::ThreadStarted {
                tid: root.tid,
                parent: None,
            });
        }
        (monitor, root)
    }

    /// Registers a new thread forked by `parent`, recording the creation
    /// happens-before edge. Call before (or as the first act of) the new
    /// thread.
    pub fn fork(&self, parent: ThreadToken) -> ThreadToken {
        let tid = ThreadId(self.next_tid.fetch_add(1, Ordering::Relaxed));
        let mut d = self.detector.lock().unwrap();
        d.on_thread_start(tid, Some(parent.tid));
        if let Some(rec) = &self.recorder {
            let mut rec = rec.lock().unwrap();
            rec.flush(parent.tid);
            rec.push(TraceEvent::Op {
                tid: parent.tid,
                op: Op::Fork { child: tid },
            });
            rec.push(TraceEvent::ThreadStarted {
                tid,
                parent: Some(parent.tid),
            });
        }
        ThreadToken { tid }
    }

    /// Records that `parent` joined `child` (call **after** the real
    /// `JoinHandle::join` returns).
    pub fn join(&self, parent: ThreadToken, child: ThreadToken) {
        let mut d = self.detector.lock().unwrap();
        d.on_thread_finish(child.tid);
        d.on_sync(parent.tid, &Op::Join { child: child.tid });
        if let Some(rec) = &self.recorder {
            let mut rec = rec.lock().unwrap();
            // The child has stopped calling hooks (join returned), so its
            // remaining buffered accesses precede its finish event.
            rec.flush(child.tid);
            rec.flush(parent.tid);
            rec.push(TraceEvent::ThreadFinished { tid: child.tid });
            rec.push(TraceEvent::Op {
                tid: parent.tid,
                op: Op::Join { child: child.tid },
            });
        }
    }

    /// Records a read of `addr` by the calling thread. Returns `true` if
    /// this access completed a race.
    pub fn read(&self, token: ThreadToken, addr: Addr) -> bool {
        let race = self
            .detector
            .lock()
            .unwrap()
            .on_access(token.tid, addr, AccessKind::Read)
            .race;
        if let Some(rec) = &self.recorder {
            rec.lock().unwrap().buffer(token.tid, Op::Read { addr });
        }
        race
    }

    /// Records a write of `addr` by the calling thread. Returns `true`
    /// if this access completed a race.
    pub fn write(&self, token: ThreadToken, addr: Addr) -> bool {
        let race = self
            .detector
            .lock()
            .unwrap()
            .on_access(token.tid, addr, AccessKind::Write)
            .race;
        if let Some(rec) = &self.recorder {
            rec.lock().unwrap().buffer(token.tid, Op::Write { addr });
        }
        race
    }

    /// Records that the calling thread acquired lock `lock_id` (call
    /// after the real acquisition).
    pub fn lock_acquired(&self, token: ThreadToken, lock_id: u32) {
        let op = Op::Lock {
            lock: LockId(lock_id),
        };
        let mut d = self.detector.lock().unwrap();
        d.on_sync(token.tid, &op);
        self.record_sync(token.tid, op);
    }

    /// Records that the calling thread is about to release lock
    /// `lock_id` (call before the real release).
    pub fn lock_released(&self, token: ThreadToken, lock_id: u32) {
        let op = Op::Unlock {
            lock: LockId(lock_id),
        };
        let mut d = self.detector.lock().unwrap();
        d.on_sync(token.tid, &op);
        self.record_sync(token.tid, op);
    }

    /// Records an acquire-release atomic on `addr` (e.g. around a real
    /// `AtomicUsize` the component synchronizes through).
    pub fn atomic(&self, token: ThreadToken, addr: Addr) {
        let op = Op::AtomicRmw { addr };
        let mut d = self.detector.lock().unwrap();
        d.on_sync(token.tid, &op);
        self.record_sync(token.tid, op);
    }

    /// Appends a sync op to the recorder log (flushing the thread's
    /// buffered accesses first). Call with the detector lock held so the
    /// log's sync order matches the order the detector saw.
    fn record_sync(&self, tid: ThreadId, op: Op) {
        if let Some(rec) = &self.recorder {
            let mut rec = rec.lock().unwrap();
            rec.flush(tid);
            rec.push(TraceEvent::Op { tid, op });
        }
    }

    /// Number of distinct races found so far.
    pub fn race_count(&self) -> usize {
        self.detector.lock().unwrap().reports().distinct()
    }

    /// Snapshot of the distinct race reports found so far.
    pub fn reports(&self) -> Vec<RaceReport> {
        self.detector.lock().unwrap().reports().reports().to_vec()
    }

    /// Snapshot of the recorded trace, or `None` when the monitor was
    /// not built with [`Monitor::recording`].
    ///
    /// Flushes every thread's buffer, so call it at a quiescent point
    /// (typically after joining all workers); records buffered by
    /// still-running threads would otherwise be placed at the snapshot
    /// point rather than at their next sync boundary.
    pub fn recorded_trace(&self) -> Option<Vec<TraceRecord>> {
        let rec = self.recorder.as_ref()?;
        let mut rec = rec.lock().unwrap();
        let tids: Vec<ThreadId> = (0..rec.buffers.len() as u32).map(ThreadId).collect();
        for tid in tids {
            rec.flush(tid);
        }
        Some(rec.log.clone())
    }
}

/// The monitor-visible address of a value: its real memory address. Stable
/// for the value's lifetime, which is all a race check needs.
pub fn addr_of<T>(value: &T) -> Addr {
    Addr(value as *const T as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn unsynchronized_threads_race_deterministically() {
        // No monitor-level sync edges between the children: flagged on
        // every OS schedule.
        for _ in 0..10 {
            let (monitor, root) = Monitor::new();
            let data = 0u64;
            let addr = addr_of(&data);
            let t1 = monitor.fork(root);
            let t2 = monitor.fork(root);
            let m1 = monitor.clone();
            let m2 = monitor.clone();
            let h1 = std::thread::spawn(move || {
                m1.write(t1, addr);
            });
            let h2 = std::thread::spawn(move || {
                m2.write(t2, addr);
            });
            h1.join().unwrap();
            h2.join().unwrap();
            monitor.join(root, t1);
            monitor.join(root, t2);
            assert_eq!(monitor.race_count(), 1, "write-write race must be found");
        }
    }

    #[test]
    fn lock_protected_threads_never_race() {
        for _ in 0..10 {
            let (monitor, root) = Monitor::new();
            let shared = StdArc::new(Mutex::new(0u64));
            let addr = addr_of(&*shared);
            let mut tokens = Vec::new();
            let mut handles = Vec::new();
            for _ in 0..4 {
                let token = monitor.fork(root);
                tokens.push(token);
                let m = monitor.clone();
                let s = shared.clone();
                handles.push(std::thread::spawn(move || {
                    for _ in 0..100 {
                        let mut guard = s.lock().unwrap();
                        m.lock_acquired(token, 0);
                        m.read(token, addr);
                        *guard += 1;
                        m.write(token, addr);
                        m.lock_released(token, 0);
                        drop(guard);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            for token in tokens {
                monitor.join(root, token);
            }
            assert_eq!(monitor.race_count(), 0, "lock discipline must be clean");
            assert_eq!(*shared.lock().unwrap(), 400);
        }
    }

    #[test]
    fn fork_and_join_edges_order_accesses() {
        let (monitor, root) = Monitor::new();
        let data = 7u64;
        let addr = addr_of(&data);
        // Parent writes before fork: ordered.
        assert!(!monitor.write(root, addr));
        let child = monitor.fork(root);
        let m = monitor.clone();
        let h = std::thread::spawn(move || !m.read(child, addr));
        assert!(h.join().unwrap(), "fork edge must order the read");
        monitor.join(root, child);
        assert!(!monitor.write(root, addr), "join edge must order the write");
        assert_eq!(monitor.race_count(), 0);
    }

    #[test]
    fn atomic_publication_is_clean() {
        let (monitor, root) = Monitor::new();
        let data = 1u64;
        let flag = 0u64;
        let (daddr, faddr) = (addr_of(&data), addr_of(&flag));
        let child = monitor.fork(root);

        // Producer (this thread): write data, release via atomic.
        monitor.write(root, daddr);
        monitor.atomic(root, faddr);

        // Consumer: acquire via atomic, read data.
        let m = monitor.clone();
        let h = std::thread::spawn(move || {
            m.atomic(child, faddr);
            m.read(child, daddr)
        });
        assert!(!h.join().unwrap());
        monitor.join(root, child);
        assert_eq!(monitor.race_count(), 0);
    }

    #[test]
    fn missing_release_hook_is_reported() {
        // The consumer reads without the acquire hook: the monitor cannot
        // see an ordering edge, so it (correctly, per its inputs) reports
        // a race.
        let (monitor, root) = Monitor::new();
        let data = 1u64;
        let daddr = addr_of(&data);
        let child = monitor.fork(root);
        let m = monitor.clone();
        let h = std::thread::spawn(move || m.read(child, daddr));
        // The parent's write is unordered with the child's read (no
        // release/acquire hooks, and the join hook has not run yet).
        monitor.write(root, daddr);
        h.join().unwrap();
        monitor.join(root, child);
        assert!(monitor.race_count() >= 1);
    }

    #[test]
    fn reports_are_inspectable() {
        let (monitor, root) = Monitor::new();
        let data = 0u8;
        let addr = addr_of(&data);
        let child = monitor.fork(root);
        let m = monitor.clone();
        std::thread::spawn(move || {
            m.write(child, addr);
        })
        .join()
        .unwrap();
        monitor.write(root, addr);
        let reports = monitor.reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].addr, addr);
    }

    #[test]
    fn recording_monitor_captures_the_hook_stream() {
        let (monitor, root) = Monitor::recording();
        let data = 0u64;
        let addr = addr_of(&data);
        let child = monitor.fork(root);
        let m = monitor.clone();
        std::thread::spawn(move || {
            m.lock_acquired(child, 3);
            m.write(child, addr);
            m.lock_released(child, 3);
        })
        .join()
        .unwrap();
        monitor.write(root, addr);
        monitor.join(root, child);

        let trace = monitor.recorded_trace().expect("recording is on");
        let events: Vec<&TraceEvent> = trace
            .iter()
            .map(|r| match r {
                TraceRecord::Exec(e) => e,
                TraceRecord::Hitm { .. } => panic!("monitor never records HITM samples"),
            })
            .collect();
        // Lifecycle: root + child started, child finished.
        let starts = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::ThreadStarted { .. }))
            .count();
        assert_eq!(starts, 2);
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::ThreadFinished { tid } if *tid == child.tid)));
        // Both writes survive, attributed to their threads.
        let writes: Vec<ThreadId> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Op {
                    tid,
                    op: Op::Write { addr: a },
                } if *a == addr => Some(*tid),
                _ => None,
            })
            .collect();
        assert_eq!(writes.len(), 2);
        assert!(writes.contains(&root.tid) && writes.contains(&child.tid));
        // The child's buffered write was flushed before its critical
        // section closed: it appears before the Unlock in the log.
        let write_at = events
            .iter()
            .position(
                |e| matches!(e, TraceEvent::Op { tid, op: Op::Write { .. } } if *tid == child.tid),
            )
            .unwrap();
        let unlock_at = events
            .iter()
            .position(|e| {
                matches!(
                    e,
                    TraceEvent::Op {
                        op: Op::Unlock { .. },
                        ..
                    }
                )
            })
            .unwrap();
        assert!(write_at < unlock_at);
        // A non-recording monitor reports no trace.
        let (plain, _) = Monitor::new();
        assert!(plain.recorded_trace().is_none());
    }

    #[test]
    fn scoped_threads_work_too() {
        let (monitor, root) = Monitor::new();
        let counter = Mutex::new(0u32);
        let addr = addr_of(&counter);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let token = monitor.fork(root);
                let monitor = &monitor;
                let counter = &counter;
                scope.spawn(move || {
                    let mut g = counter.lock().unwrap();
                    monitor.lock_acquired(token, 9);
                    monitor.write(token, addr);
                    *g += 1;
                    monitor.lock_released(token, 9);
                    drop(g);
                });
            }
        });
        assert_eq!(monitor.race_count(), 0);
        assert_eq!(*counter.lock().unwrap(), 3);
    }
}
