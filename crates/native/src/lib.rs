//! Race detection for **real threads**: a manual-instrumentation monitor
//! backed by the same FastTrack engine the simulator uses.
//!
//! The simulation crates reproduce the paper's hardware mechanism; this
//! crate is the complementary deployment surface the reproduction bands
//! call feasible — instrumenting native Rust threads. The detector
//! carries over wholesale: annotate the memory accesses and
//! synchronization of a concurrent component under test, run it on real
//! `std::thread`s, and get happens-before race reports. The paper's
//! *demand-driven* posture carries over too, as a monitor-level
//! [`enable`](Monitor::enable)/[`disable`](Monitor::disable) toggle:
//! synchronization tracking stays always-on (so clocks are correct the
//! moment analysis re-enables, exactly as in the paper's tool), while
//! the expensive per-access checking can be switched off on the hook
//! fast path at the cost of one atomic load.
//!
//! Because detection is happens-before-based, verdicts do not depend on
//! the actual interleaving the OS produced: two accesses with no
//! monitor-visible synchronization between them are racy on *every*
//! schedule, so tests written against [`Monitor`] are deterministic.
//!
//! # Sharded shadow state
//!
//! The default engine shards FastTrack's per-address shadow state into
//! [`DEFAULT_SHARDS`] independently locked
//! [`FastTrackShard`](ddrace_detector::FastTrackShard)s keyed by address
//! hash, keeps per-thread clocks in lock-free-to-locate per-thread
//! cells, and front-ends every data hook with a per-thread **epoch
//! filter**: a small owner-only table remembering which shadow keys this
//! thread already checked *at its current epoch*. A filter hit needs no
//! lock at all — within one epoch the thread has published nothing, so
//! repeating an access it already checked cannot change which addresses
//! are racy (see DESIGN.md for the argument). The single-global-lock
//! engine is retained behind [`Monitor::legacy`] so benchmarks
//! (`bench_native`, emitting `BENCH_native.json`) measure the delta
//! live.
//!
//! # Example
//!
//! ```
//! use ddrace_native::{addr_of, Monitor};
//!
//! let (monitor, main_token) = Monitor::new();
//! let data = 42u64;
//! let addr = addr_of(&data);
//!
//! let child_token = monitor.fork(main_token);
//! let m = monitor.clone();
//! let handle = std::thread::spawn(move || {
//!     m.write(child_token, addr); // unsynchronized with main's read
//! });
//! monitor.read(main_token, addr);
//! handle.join().unwrap();
//! monitor.join(main_token, child_token);
//!
//! assert!(monitor.race_count() >= 1);
//! ```
//!
//! ## Hook placement
//!
//! * Call [`Monitor::read`]/[`Monitor::write`] adjacent to the access they
//!   describe (immediately before or after; the tiny window between hook
//!   and access is the usual manual-instrumentation caveat).
//! * Call [`Monitor::lock_acquired`] **after** acquiring the real lock and
//!   [`Monitor::lock_released`] **before** releasing it: the recorded
//!   critical section then nests inside the real one, which can only
//!   under-approximate ordering — conservative in the false-positive-free
//!   direction is impossible for manual hooks, but this placement keeps
//!   the recorded edges truthful.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use ddrace_detector::{
    DetectorConfig, DetectorStats, Epoch, FastTrack, FastTrackShard, RaceDetector, RaceReport,
    RaceReportSet, VectorClock,
};
use ddrace_program::{AccessKind, Addr, LockId, Op, ThreadId, TraceEvent};
use ddrace_shadow::ShadowTable;
use ddrace_trace::TraceRecord;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default shard count for the sharded engine (a power of two).
///
/// Sixteen shards keep the per-shard tables small (which the paper's
/// cache-resident shadow arguments favor) while making same-shard
/// collisions between unrelated hot addresses rare for the thread counts
/// the bench exercises (1/8/64); the quiescent drain in
/// [`Monitor::disable`] stays a sweep of 16 uncontended locks. Use
/// [`Monitor::with_shards`] to pick another power of two.
pub const DEFAULT_SHARDS: usize = 16;

/// Multiplier for shard routing and filter slots. Deliberately distinct
/// from `ShadowTable`'s probe multiplier (`0x9E37_79B9_7F4A_7C15`): the
/// shard index uses the *top* bits of `key * SHARD_MIX`, and if the two
/// hashes agreed, every key in a shard would share its high bits and
/// collapse onto the same in-table home slots.
const SHARD_MIX: u64 = 0x9FB2_1C65_1E98_DF25;

/// Per-thread epoch-filter slots (direct-mapped, power of two).
const FILTER_SLOTS: usize = 256;

/// Generation bits stored per filter entry (see [`EpochFilter`]).
const GEN_BITS: u32 = 30;
const GEN_MASK: u32 = (1 << GEN_BITS) - 1;

/// Registry segment count: supports `2^SEGMENTS - 1` thread cells.
const SEGMENTS: usize = 26;

/// Identifies one registered thread to the monitor. Cheap to copy; send
/// it into the thread it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadToken {
    tid: ThreadId,
}

impl ThreadToken {
    /// The underlying detector thread id.
    pub fn thread_id(self) -> ThreadId {
        self.tid
    }
}

/// A per-thread, owner-only cache of shadow keys already checked at the
/// thread's current epoch.
///
/// Direct-mapped over [`FILTER_SLOTS`] slots; each entry stores the full
/// shadow key plus a meta word packing the epoch's clock value, the
/// monitor's enable generation, and which access kinds were seen
/// (`wrote` covers both kinds — a cached write makes a same-epoch read
/// redundant too; a cached read covers only reads, because the first
/// write at an epoch must still reach the shard to set the write
/// epoch). Only the owning thread reads or writes its filter, so plain
/// relaxed atomics suffice (the atomics exist only to keep the type
/// `Sync` without `unsafe`). Entries are invalidated implicitly: by
/// epoch advance (the owner's next release op), by slot reuse, and by
/// the generation bump in [`Monitor::enable`].
#[derive(Debug, Default)]
#[repr(align(16))] // a probe's key+meta pair never straddles a cache line
struct FilterSlot {
    key: AtomicU64,
    meta: AtomicU64,
}

#[derive(Debug)]
struct EpochFilter {
    // Stored inline (no indirection): the cell address reaches a slot
    // with one offset, keeping the hit path's dependent-load chain short.
    slots: [FilterSlot; FILTER_SLOTS],
}

impl EpochFilter {
    fn new() -> Self {
        EpochFilter {
            slots: std::array::from_fn(|_| FilterSlot::default()),
        }
    }

    #[inline]
    fn slot(&self, key: u64) -> &FilterSlot {
        // Low-order key bits, like a hardware cache's index function: a
        // contiguous hot working set (the common shape — arrays, stack
        // frames, struct runs) maps collision-free, where a mixed index
        // would scatter it onto ~63% of the slots and let the colliding
        // keys evict each other every lap. Pathological strides only
        // cost hit rate, never correctness.
        &self.slots[key as usize & (FILTER_SLOTS - 1)]
    }

    fn pack(clock: u32, generation: u32) -> u64 {
        (u64::from(clock) << 32) | (u64::from(generation & GEN_MASK) << 2)
    }

    /// Returns `true` if `key` was already checked at this epoch and
    /// generation by an access that makes `kind` redundant.
    #[inline]
    fn hit(&self, key: u64, clock: u32, generation: u32, kind: AccessKind) -> bool {
        let s = self.slot(key);
        if s.key.load(Ordering::Relaxed) != key {
            return false;
        }
        let m = s.meta.load(Ordering::Relaxed);
        if m & !0b11 != Self::pack(clock, generation) {
            return false;
        }
        match kind {
            AccessKind::Read => m & 0b11 != 0,
            AccessKind::Write | AccessKind::AtomicRmw => m & 0b10 != 0,
        }
    }

    /// Records that `key` was checked at this epoch and generation.
    #[inline]
    fn remember(&self, key: u64, clock: u32, generation: u32, kind: AccessKind) {
        let s = self.slot(key);
        let base = Self::pack(clock, generation);
        let bit = match kind {
            AccessKind::Read => 0b01,
            AccessKind::Write | AccessKind::AtomicRmw => 0b10,
        };
        // Accumulate kinds while the entry matches; otherwise evict.
        let m = if s.key.load(Ordering::Relaxed) == key
            && s.meta.load(Ordering::Relaxed) & !0b11 == base
        {
            s.meta.load(Ordering::Relaxed) | bit
        } else {
            base | bit
        };
        s.key.store(key, Ordering::Relaxed);
        s.meta.store(m, Ordering::Relaxed);
    }
}

/// Per-thread clock state for the sharded engine.
#[derive(Debug)]
struct ThreadCell {
    /// Mirror of `vc[tid]` readable without the clock lock. Only the
    /// owning thread advances its own component (all increments happen
    /// in hooks the owner itself calls), so data hooks read it with a
    /// relaxed load.
    epoch: AtomicU32,
    vc: Mutex<VectorClock>,
    filter: EpochFilter,
    /// Epoch-filter hits. Owner-only writer, so a load+store pair (no
    /// read-modify-write) is enough.
    filter_hits: AtomicU64,
    /// Set by [`Registry::register`] once the cell holds a real thread's
    /// clock (segments pre-build blank cells; see [`Registry`]).
    registered: AtomicBool,
}

impl ThreadCell {
    fn blank() -> ThreadCell {
        ThreadCell {
            epoch: AtomicU32::new(0),
            vc: Mutex::new(VectorClock::new()),
            filter: EpochFilter::new(),
            filter_hits: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }
}

/// Lock-free-to-read registry of [`ThreadCell`]s, indexed by thread id.
///
/// Storage is a sequence of power-of-two segments (1, 2, 4, … cells);
/// each segment is allocated once, on the first registration that lands
/// in it, with every cell in it fully constructed (blank) up front.
/// That keeps the data-hook path short — one shift, one acquire load,
/// one offset — with no per-cell initialization check and no lock.
/// Registration happens on [`Monitor::fork`], which the per-monitor
/// sync mutex already serializes; it only *fills in* the pre-built cell
/// (every cell field is interior-mutable), flipping `registered` last.
#[derive(Debug)]
struct Registry {
    segments: [OnceLock<Box<[ThreadCell]>>; SEGMENTS],
}

impl Registry {
    fn new() -> Self {
        Registry {
            segments: std::array::from_fn(|_| OnceLock::new()),
        }
    }

    #[inline]
    fn locate(tid: ThreadId) -> (usize, usize) {
        let n = tid.index() + 1;
        let seg = (usize::BITS - 1 - n.leading_zeros()) as usize;
        (seg, n - (1 << seg))
    }

    fn register(&self, tid: ThreadId, vc: VectorClock, clock: u32) {
        let (seg, idx) = Self::locate(tid);
        assert!(seg < SEGMENTS, "thread id space exhausted");
        let slab = self.segments[seg]
            .get_or_init(|| (0..1usize << seg).map(|_| ThreadCell::blank()).collect());
        let cell = &slab[idx];
        *cell.vc.lock().unwrap() = vc;
        cell.epoch.store(clock, Ordering::Relaxed);
        cell.registered.store(true, Ordering::Relaxed);
    }

    #[inline]
    fn get(&self, tid: ThreadId) -> Option<&ThreadCell> {
        let (seg, idx) = Self::locate(tid);
        let cell = self.segments.get(seg)?.get()?.get(idx)?;
        // The blank pre-built cells in a live segment are
        // indistinguishable from epoch-0 threads, so gate on the
        // registration flag in debug builds; the release hot path
        // elides the check (a foreign token is caller error, and the
        // segment-allocation checks above still catch most of them).
        debug_assert!(
            cell.registered.load(Ordering::Relaxed),
            "ThreadToken does not belong to this monitor"
        );
        Some(cell)
    }

    fn for_each(&self, mut f: impl FnMut(&ThreadCell)) {
        for seg in &self.segments {
            if let Some(slab) = seg.get() {
                for cell in slab.iter().filter(|c| c.registered.load(Ordering::Relaxed)) {
                    f(cell);
                }
            }
        }
    }
}

/// Clock state of synchronization objects (locks and atomic addresses),
/// guarded by the sync mutex.
#[derive(Debug, Default)]
struct SyncSpace {
    locks: ShadowTable<VectorClock>,
    atomics: ShadowTable<VectorClock>,
}

/// Race-report collection for the sharded engine (a lock of its own, at
/// the bottom of the hierarchy, taken only when a race fires).
#[derive(Debug)]
struct ReportBook {
    set: RaceReportSet,
    races_observed: u64,
    max_reports: usize,
}

impl ReportBook {
    fn record(&mut self, report: RaceReport) {
        self.races_observed += 1;
        if self.set.distinct() < self.max_reports {
            self.set.record(report);
        } else {
            self.set.merge_only(&report);
        }
    }
}

/// The sharded engine: N independently locked shadow shards, per-thread
/// clock cells, and a sync mutex serializing clock-transfer operations.
///
/// Lock hierarchy (always acquired top-down; reports and the recorder
/// are leaves):
///
/// ```text
/// sync ops:    sync mutex  → thread cell(s) → recorder
/// data hooks:  shard mutex → thread cell    → reports / recorder
/// ```
///
/// No path holds a shard and the sync mutex together, and a thread cell
/// is never held while acquiring a shard or the sync mutex, so the
/// hierarchy is acyclic.
#[derive(Debug)]
struct Sharded {
    shards: Box<[Mutex<FastTrackShard>]>,
    shard_bits: u32,
    registry: Registry,
    sync: Mutex<SyncSpace>,
    reports: Mutex<ReportBook>,
    sync_ops: AtomicU64,
    /// `config.granularity.shift()`, hoisted so the data-hook hot path
    /// computes the shadow key with one shift instead of a match.
    key_shift: u32,
    /// Whether the epoch filter may answer data hooks (false on a
    /// recording monitor: every access must reach a shard so it is
    /// captured). Fixed at construction, so the hot path branches on a
    /// plain bool instead of probing the recorder option.
    filtered: bool,
}

impl Sharded {
    fn build(config: &DetectorConfig, shards: usize, filtered: bool) -> Self {
        let n = shards.max(1).next_power_of_two();
        Sharded {
            shards: (0..n).map(|_| Mutex::new(FastTrackShard::new())).collect(),
            shard_bits: n.trailing_zeros(),
            registry: Registry::new(),
            sync: Mutex::new(SyncSpace::default()),
            reports: Mutex::new(ReportBook {
                set: RaceReportSet::new(),
                races_observed: 0,
                max_reports: config.max_reports,
            }),
            sync_ops: AtomicU64::new(0),
            key_shift: config.granularity.shift(),
            filtered,
        }
    }

    fn shard_of(&self, key: u64) -> &Mutex<FastTrackShard> {
        let i = if self.shard_bits == 0 {
            0
        } else {
            (key.wrapping_mul(SHARD_MIX) >> (64 - self.shard_bits)) as usize
        };
        &self.shards[i]
    }

    fn cell(&self, tid: ThreadId) -> &ThreadCell {
        self.registry
            .get(tid)
            .expect("ThreadToken does not belong to this monitor")
    }
}

#[derive(Debug)]
enum Engine {
    /// The original single-global-lock engine, kept so the sharded
    /// engine's win is measured live (`bench_native`).
    Legacy(Box<Mutex<FastTrack>>),
    Sharded(Box<Sharded>),
}

/// The race monitor: feeds real threads' hooks to a FastTrack engine.
///
/// [`Monitor::new`] builds the sharded engine (per-shard locks plus
/// per-thread epoch filters); [`Monitor::legacy`] builds the original
/// engine that serializes every hook on one global detector lock — the
/// configuration early dynamic-analysis prototypes used, and why the
/// paper's continuous mode is so slow.
#[derive(Debug)]
pub struct Monitor {
    engine: Engine,
    /// `Some` when recording: per-thread buffered capture of the hook
    /// stream, emitted as `.ddt` records via [`Monitor::recorded_trace`].
    recorder: Option<Mutex<Recorder>>,
    /// Demand-driven toggle for access checking (sync tracking ignores
    /// it), packed with the filter generation so the data-hook fast path
    /// reads both with a single atomic load: bit 0 is the enabled flag,
    /// the remaining bits are the generation, bumped on every
    /// [`Monitor::enable`] so epoch-filter entries cached before a
    /// disabled window cannot satisfy hits after it.
    gate: AtomicU64,
    next_tid: AtomicU32,
    /// `joined[tid]` once `tid` has been joined (the root is born
    /// joined: it has no joiner). Guards [`Monitor::join`] against
    /// double joins and unknown children.
    joined: Mutex<Vec<bool>>,
}

/// Buffered trace capture for real-thread runs.
///
/// Data accesses append to a pre-grown per-thread buffer (no global
/// ordering decision, amortized O(1), no per-event allocation); the
/// buffer is drained into the global log whenever its thread performs a
/// synchronization operation. Cross-thread placement of data accesses
/// *between* sync points is therefore approximate — which is exactly
/// the precision a happens-before detector needs, since unsynchronized
/// accesses carry no ordering anyway. Sync and thread-lifecycle events
/// land in the log in the same global order the detector observed them,
/// and a data access is buffered in the same critical section that
/// detected it (under the detector lock on the legacy engine, under the
/// access's shard lock on the sharded engine), so detection and capture
/// of one access are atomic with respect to the rest of the monitor.
#[derive(Debug, Default)]
struct Recorder {
    log: Vec<TraceRecord>,
    buffers: Vec<Vec<TraceRecord>>,
}

impl Recorder {
    /// Moves `tid`'s buffered data accesses into the global log.
    fn flush(&mut self, tid: ThreadId) {
        if let Some(buf) = self.buffers.get_mut(tid.index()) {
            self.log.append(buf);
        }
    }

    fn buffer(&mut self, tid: ThreadId, op: Op) {
        let idx = tid.index();
        if self.buffers.len() <= idx {
            self.buffers.resize_with(idx + 1, || Vec::with_capacity(64));
        }
        self.buffers[idx].push(TraceRecord::Exec(TraceEvent::Op { tid, op }));
    }

    fn push(&mut self, event: TraceEvent) {
        self.log.push(TraceRecord::Exec(event));
    }
}

impl Monitor {
    /// Creates a sharded monitor and registers the calling thread as the
    /// root.
    pub fn new() -> (Arc<Monitor>, ThreadToken) {
        Self::with_config(DetectorConfig::default())
    }

    /// Creates a sharded monitor with an explicit detector configuration.
    pub fn with_config(config: DetectorConfig) -> (Arc<Monitor>, ThreadToken) {
        Self::build(config, Some(DEFAULT_SHARDS), false)
    }

    /// Creates a sharded monitor with an explicit shard count (rounded
    /// up to a power of two; `0` behaves as `1`).
    pub fn with_shards(config: DetectorConfig, shards: usize) -> (Arc<Monitor>, ThreadToken) {
        Self::build(config, Some(shards), false)
    }

    /// Creates a sharded monitor that also records the hook stream as a
    /// trace (see [`Monitor::recorded_trace`]).
    pub fn recording() -> (Arc<Monitor>, ThreadToken) {
        Self::build(DetectorConfig::default(), Some(DEFAULT_SHARDS), true)
    }

    /// Creates a monitor on the legacy single-global-lock engine.
    pub fn legacy() -> (Arc<Monitor>, ThreadToken) {
        Self::build(DetectorConfig::default(), None, false)
    }

    /// Creates a legacy-engine monitor with an explicit configuration.
    pub fn legacy_with_config(config: DetectorConfig) -> (Arc<Monitor>, ThreadToken) {
        Self::build(config, None, false)
    }

    /// Creates a recording monitor on the legacy engine.
    pub fn legacy_recording() -> (Arc<Monitor>, ThreadToken) {
        Self::build(DetectorConfig::default(), None, true)
    }

    fn build(
        config: DetectorConfig,
        shards: Option<usize>,
        record: bool,
    ) -> (Arc<Monitor>, ThreadToken) {
        let root = ThreadToken { tid: ThreadId(0) };
        let engine = match shards {
            Some(n) => {
                let sharded = Sharded::build(&config, n, !record);
                let mut vc = VectorClock::new();
                let clock = vc.increment(root.tid);
                sharded.registry.register(root.tid, vc, clock);
                Engine::Sharded(Box::new(sharded))
            }
            None => {
                let mut detector = FastTrack::new(config);
                detector.on_thread_start(root.tid, None);
                Engine::Legacy(Box::new(Mutex::new(detector)))
            }
        };
        let monitor = Arc::new(Monitor {
            engine,
            recorder: record.then(|| Mutex::new(Recorder::default())),
            gate: AtomicU64::new(Self::pack_gate(1, true)),
            next_tid: AtomicU32::new(1),
            joined: Mutex::new(vec![true]),
        });
        if let Some(rec) = &monitor.recorder {
            rec.lock().unwrap().push(TraceEvent::ThreadStarted {
                tid: root.tid,
                parent: None,
            });
        }
        (monitor, root)
    }

    /// Number of shadow shards (1 on the legacy engine).
    pub fn shard_count(&self) -> usize {
        match &self.engine {
            Engine::Legacy(_) => 1,
            Engine::Sharded(s) => s.shards.len(),
        }
    }

    /// Packs the demand-driven gate word: bit 0 enabled, the rest the
    /// filter generation.
    fn pack_gate(generation: u64, enabled: bool) -> u64 {
        (generation << 1) | u64::from(enabled)
    }

    /// Whether access checking is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.gate.load(Ordering::Acquire) & 1 != 0
    }

    /// Re-enables access checking after [`Monitor::disable`].
    ///
    /// Bumps the filter generation in the same atomic update that
    /// publishes the flag, so per-thread epoch-filter entries cached
    /// before the disabled window cannot answer for accesses after it.
    pub fn enable(&self) {
        self.gate
            .fetch_update(Ordering::SeqCst, Ordering::Acquire, |gate| {
                (gate & 1 == 0).then(|| Self::pack_gate((gate >> 1) + 1, true))
            })
            .ok();
    }

    /// Disables access checking (the demand-driven "off" state).
    ///
    /// Synchronization hooks keep maintaining clocks — as in the paper's
    /// tool, sync tracking is always-on so analysis is correct the
    /// moment it re-enables — but data hooks become a single atomic
    /// load, and while disabled a recording monitor captures no data
    /// accesses.
    ///
    /// Quiescent drain: after the flag is cleared, this method acquires
    /// and releases every shard lock (the detector lock on the legacy
    /// engine). An access hook re-checks the flag *inside* its shard
    /// critical section before touching shadow state, and mutex
    /// ordering guarantees any hook locking a shard after the drain
    /// swept it observes the cleared flag — so when `disable` returns,
    /// every in-flight access has either fully completed (detected and,
    /// if recording, captured) or will complete as a no-op. No access is
    /// half-applied and no shard update is dropped.
    pub fn disable(&self) {
        self.gate.fetch_and(!1, Ordering::SeqCst);
        match &self.engine {
            Engine::Legacy(detector) => drop(detector.lock().unwrap()),
            Engine::Sharded(s) => {
                for shard in s.shards.iter() {
                    drop(shard.lock().unwrap());
                }
            }
        }
    }

    /// Registers a new thread forked by `parent`, recording the creation
    /// happens-before edge. Call before (or as the first act of) the new
    /// thread.
    pub fn fork(&self, parent: ThreadToken) -> ThreadToken {
        let tid = ThreadId(self.next_tid.fetch_add(1, Ordering::Relaxed));
        {
            let mut joined = self.joined.lock().unwrap();
            if joined.len() <= tid.index() {
                joined.resize(tid.index() + 1, false);
            }
            joined[tid.index()] = false;
        }
        match &self.engine {
            Engine::Legacy(detector) => {
                let mut d = detector.lock().unwrap();
                d.on_thread_start(tid, Some(parent.tid));
                if let Some(rec) = &self.recorder {
                    let mut rec = rec.lock().unwrap();
                    rec.flush(parent.tid);
                    rec.push(TraceEvent::Op {
                        tid: parent.tid,
                        op: Op::Fork { child: tid },
                    });
                    rec.push(TraceEvent::ThreadStarted {
                        tid,
                        parent: Some(parent.tid),
                    });
                }
            }
            Engine::Sharded(s) => {
                let _space = s.sync.lock().unwrap();
                let pcell = s.cell(parent.tid);
                // Same edge recipe as `HbClocks::on_thread_start`: the
                // child adopts the parent's pre-fork clock, then both
                // sides step into fresh epochs.
                let (child_vc, child_clock) = {
                    let mut pvc = pcell.vc.lock().unwrap();
                    let snapshot = pvc.clone();
                    let pc = pvc.increment(parent.tid);
                    pcell.epoch.store(pc, Ordering::Relaxed);
                    let mut cvc = VectorClock::new();
                    cvc.join(&snapshot);
                    let cc = cvc.increment(tid);
                    (cvc, cc)
                };
                s.registry.register(tid, child_vc, child_clock);
                if let Some(rec) = &self.recorder {
                    let mut rec = rec.lock().unwrap();
                    rec.flush(parent.tid);
                    rec.push(TraceEvent::Op {
                        tid: parent.tid,
                        op: Op::Fork { child: tid },
                    });
                    rec.push(TraceEvent::ThreadStarted {
                        tid,
                        parent: Some(parent.tid),
                    });
                }
            }
        }
        ThreadToken { tid }
    }

    /// Records that `parent` joined `child` (call **after** the real
    /// `JoinHandle::join` returns).
    ///
    /// Returns `true` if the join was performed. Joining the same child
    /// twice, a token this monitor never forked, or the root token is a
    /// no-op returning `false`: a duplicate join would re-run the
    /// finish edge and log a second `ThreadFinished`, corrupting
    /// recorded traces on replay.
    pub fn join(&self, parent: ThreadToken, child: ThreadToken) -> bool {
        {
            let mut joined = self.joined.lock().unwrap();
            let idx = child.tid.index();
            if joined.get(idx).is_none_or(|done| *done) {
                return false;
            }
            joined[idx] = true;
        }
        match &self.engine {
            Engine::Legacy(detector) => {
                let mut d = detector.lock().unwrap();
                d.on_thread_finish(child.tid);
                d.on_sync(parent.tid, &Op::Join { child: child.tid });
                if let Some(rec) = &self.recorder {
                    let mut rec = rec.lock().unwrap();
                    // The child has stopped calling hooks (join
                    // returned), so its remaining buffered accesses
                    // precede its finish event.
                    rec.flush(child.tid);
                    rec.flush(parent.tid);
                    rec.push(TraceEvent::ThreadFinished { tid: child.tid });
                    rec.push(TraceEvent::Op {
                        tid: parent.tid,
                        op: Op::Join { child: child.tid },
                    });
                }
            }
            Engine::Sharded(s) => {
                let _space = s.sync.lock().unwrap();
                // Same recipe as `HbClocks`: thread finish is a clock
                // no-op (the clock is retained for the joiner); the join
                // edge folds the child's clock into the parent's.
                let snapshot = s.cell(child.tid).vc.lock().unwrap().clone();
                s.cell(parent.tid).vc.lock().unwrap().join(&snapshot);
                s.sync_ops.fetch_add(1, Ordering::Relaxed);
                if let Some(rec) = &self.recorder {
                    let mut rec = rec.lock().unwrap();
                    rec.flush(child.tid);
                    rec.flush(parent.tid);
                    rec.push(TraceEvent::ThreadFinished { tid: child.tid });
                    rec.push(TraceEvent::Op {
                        tid: parent.tid,
                        op: Op::Join { child: child.tid },
                    });
                }
            }
        }
        true
    }

    /// Records a read of `addr` by the calling thread. Returns `true` if
    /// this access completed a race (always `false` while disabled).
    #[inline]
    pub fn read(&self, token: ThreadToken, addr: Addr) -> bool {
        self.access(token, addr, AccessKind::Read)
    }

    /// Records a write of `addr` by the calling thread. Returns `true`
    /// if this access completed a race (always `false` while disabled).
    #[inline]
    pub fn write(&self, token: ThreadToken, addr: Addr) -> bool {
        self.access(token, addr, AccessKind::Write)
    }

    #[inline]
    fn access(&self, token: ThreadToken, addr: Addr, kind: AccessKind) -> bool {
        // One load answers both "is checking on?" and "which filter
        // generation?" — the gate word is the only Monitor state the
        // filtered fast path touches. Everything past the filter probe
        // lives in `#[inline(never)]` continuations, so the code that
        // inlines into instrumented call sites is only this short
        // straight-line fast path.
        let gate = self.gate.load(Ordering::Acquire);
        if gate & 1 == 0 {
            return false;
        }
        match &self.engine {
            Engine::Legacy(detector) => self.legacy_access(detector, token, addr, kind),
            Engine::Sharded(s) => {
                let cell = s.cell(token.tid);
                // Owner-only epoch: stable for the duration of this hook,
                // because only the owner's own sync hooks advance it.
                let clock = cell.epoch.load(Ordering::Relaxed);
                let key = addr.0 >> s.key_shift;
                let generation = (gate >> 1) as u32;
                if s.filtered && cell.filter.hit(key, clock, generation, kind) {
                    let h = cell.filter_hits.load(Ordering::Relaxed);
                    cell.filter_hits.store(h + 1, Ordering::Relaxed);
                    return false;
                }
                self.sharded_miss(s, cell, token, addr, key, clock, generation, kind)
            }
        }
    }

    /// The legacy engine's whole access path (every access takes the
    /// global detector lock).
    #[inline(never)]
    fn legacy_access(
        &self,
        detector: &Mutex<FastTrack>,
        token: ThreadToken,
        addr: Addr,
        kind: AccessKind,
    ) -> bool {
        let mut d = detector.lock().unwrap();
        if self.gate.load(Ordering::Relaxed) & 1 == 0 {
            return false;
        }
        let race = d.on_access(token.tid, addr, kind).race;
        if let Some(rec) = &self.recorder {
            // Buffer while the detector lock is held so capture is
            // atomic with detection (lock order detector → recorder,
            // same as the sync hooks).
            rec.lock()
                .unwrap()
                .buffer(token.tid, Self::access_op(addr, kind));
        }
        race
    }

    /// The sharded engine past a filter miss: shard-locked detection,
    /// report recording, capture, and filter refill.
    #[allow(clippy::too_many_arguments)]
    #[inline(never)]
    fn sharded_miss(
        &self,
        s: &Sharded,
        cell: &ThreadCell,
        token: ThreadToken,
        addr: Addr,
        key: u64,
        clock: u32,
        generation: u32,
        kind: AccessKind,
    ) -> bool {
        let e = Epoch::new(token.tid, clock);
        let mut shard = s.shard_of(key).lock().unwrap();
        if self.gate.load(Ordering::Relaxed) & 1 == 0 {
            // A disable() drain swept this shard between our pre-check
            // and the lock: count this access as after the disable.
            return false;
        }
        let (report, race) = match shard.try_fast(key, e, kind) {
            Some(report) => (report, None),
            None => {
                let vc = cell.vc.lock().unwrap();
                shard.check(token.tid, addr, key, e, &vc, kind)
            }
        };
        if let Some(race) = race {
            s.reports.lock().unwrap().record(race);
        }
        if let Some(rec) = &self.recorder {
            // Buffer under the shard lock (lock order shard → recorder):
            // detection and capture of this access are one atomic step.
            rec.lock()
                .unwrap()
                .buffer(token.tid, Self::access_op(addr, kind));
        } else {
            cell.filter.remember(key, clock, generation, kind);
        }
        report.race
    }

    fn access_op(addr: Addr, kind: AccessKind) -> Op {
        match kind {
            AccessKind::Read => Op::Read { addr },
            AccessKind::Write | AccessKind::AtomicRmw => Op::Write { addr },
        }
    }

    /// Records that the calling thread acquired lock `lock_id` (call
    /// after the real acquisition).
    pub fn lock_acquired(&self, token: ThreadToken, lock_id: u32) {
        self.sync_hook(
            token,
            Op::Lock {
                lock: LockId(lock_id),
            },
        );
    }

    /// Records that the calling thread is about to release lock
    /// `lock_id` (call before the real release).
    pub fn lock_released(&self, token: ThreadToken, lock_id: u32) {
        self.sync_hook(
            token,
            Op::Unlock {
                lock: LockId(lock_id),
            },
        );
    }

    /// Records an acquire-release atomic on `addr` (e.g. around a real
    /// `AtomicUsize` the component synchronizes through).
    pub fn atomic(&self, token: ThreadToken, addr: Addr) {
        self.sync_hook(token, Op::AtomicRmw { addr });
    }

    /// Clock-transfer hooks. Always-on regardless of the demand-driven
    /// toggle, so clocks are correct when analysis re-enables.
    fn sync_hook(&self, token: ThreadToken, op: Op) {
        match &self.engine {
            Engine::Legacy(detector) => {
                let mut d = detector.lock().unwrap();
                d.on_sync(token.tid, &op);
                self.record_sync(token.tid, op);
            }
            Engine::Sharded(s) => {
                // The sync mutex is the registry-wide lock the design
                // reserves for sync ops: it serializes clock transfers
                // so the recorded sync order matches detection order.
                let mut space = s.sync.lock().unwrap();
                let cell = s.cell(token.tid);
                match op {
                    // Same recipes as `HbClocks::on_sync`.
                    Op::Lock { lock } => {
                        if let Some(lvc) = space.locks.get(u64::from(lock.0)) {
                            cell.vc.lock().unwrap().join(lvc);
                        }
                    }
                    Op::Unlock { lock } => {
                        let vc = &mut *cell.vc.lock().unwrap();
                        space
                            .locks
                            .get_or_insert_with(u64::from(lock.0), VectorClock::new)
                            .join(vc);
                        let clock = vc.increment(token.tid);
                        cell.epoch.store(clock, Ordering::Relaxed);
                    }
                    Op::AtomicRmw { addr } => {
                        let entry = space.atomics.get_or_insert_with(addr.0, VectorClock::new);
                        let vc = &mut *cell.vc.lock().unwrap();
                        vc.join(entry);
                        entry.join(vc);
                        let clock = vc.increment(token.tid);
                        cell.epoch.store(clock, Ordering::Relaxed);
                    }
                    _ => {}
                }
                if op.is_sync() {
                    s.sync_ops.fetch_add(1, Ordering::Relaxed);
                }
                self.record_sync(token.tid, op);
            }
        }
    }

    /// Appends a sync op to the recorder log (flushing the thread's
    /// buffered accesses first). Call with the detector/sync lock held
    /// so the log's sync order matches the order the detector saw.
    fn record_sync(&self, tid: ThreadId, op: Op) {
        if let Some(rec) = &self.recorder {
            let mut rec = rec.lock().unwrap();
            rec.flush(tid);
            rec.push(TraceEvent::Op { tid, op });
        }
    }

    /// Number of distinct races found so far.
    pub fn race_count(&self) -> usize {
        match &self.engine {
            Engine::Legacy(detector) => detector.lock().unwrap().reports().distinct(),
            Engine::Sharded(s) => s.reports.lock().unwrap().set.distinct(),
        }
    }

    /// Snapshot of the distinct race reports found so far.
    pub fn reports(&self) -> Vec<RaceReport> {
        match &self.engine {
            Engine::Legacy(detector) => detector.lock().unwrap().reports().reports().to_vec(),
            Engine::Sharded(s) => s.reports.lock().unwrap().set.reports().to_vec(),
        }
    }

    /// Aggregated detector counters: shard counters summed, with
    /// epoch-filter hits folded into `accesses_checked` and
    /// `fast_path_hits` (a filter hit *is* the same-epoch fast path,
    /// answered without a lock).
    pub fn stats(&self) -> DetectorStats {
        match &self.engine {
            Engine::Legacy(detector) => detector.lock().unwrap().stats(),
            Engine::Sharded(s) => {
                let mut stats = DetectorStats::default();
                for shard in s.shards.iter() {
                    let x = shard.lock().unwrap().stats();
                    stats.accesses_checked += x.accesses_checked;
                    stats.fast_path_hits += x.fast_path_hits;
                    stats.escalations += x.escalations;
                }
                s.registry.for_each(|cell| {
                    let hits = cell.filter_hits.load(Ordering::Relaxed);
                    stats.accesses_checked += hits;
                    stats.fast_path_hits += hits;
                });
                stats.sync_ops = s.sync_ops.load(Ordering::Relaxed);
                stats.races_observed = s.reports.lock().unwrap().races_observed;
                stats
            }
        }
    }

    /// Snapshot of the recorded trace, or `None` when the monitor was
    /// not built with [`Monitor::recording`].
    ///
    /// Flushes every thread's buffer, so call it at a quiescent point
    /// (typically after joining all workers); records buffered by
    /// still-running threads would otherwise be placed at the snapshot
    /// point rather than at their next sync boundary.
    pub fn recorded_trace(&self) -> Option<Vec<TraceRecord>> {
        let rec = self.recorder.as_ref()?;
        let mut rec = rec.lock().unwrap();
        let tids: Vec<ThreadId> = (0..rec.buffers.len() as u32).map(ThreadId).collect();
        for tid in tids {
            rec.flush(tid);
        }
        Some(rec.log.clone())
    }
}

/// The monitor-visible address of a value: its real memory address. Stable
/// for the value's lifetime, which is all a race check needs.
pub fn addr_of<T>(value: &T) -> Addr {
    Addr(value as *const T as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn unsynchronized_threads_race_deterministically() {
        // No monitor-level sync edges between the children: flagged on
        // every OS schedule.
        for _ in 0..10 {
            let (monitor, root) = Monitor::new();
            let data = 0u64;
            let addr = addr_of(&data);
            let t1 = monitor.fork(root);
            let t2 = monitor.fork(root);
            let m1 = monitor.clone();
            let m2 = monitor.clone();
            let h1 = std::thread::spawn(move || {
                m1.write(t1, addr);
            });
            let h2 = std::thread::spawn(move || {
                m2.write(t2, addr);
            });
            h1.join().unwrap();
            h2.join().unwrap();
            monitor.join(root, t1);
            monitor.join(root, t2);
            assert_eq!(monitor.race_count(), 1, "write-write race must be found");
        }
    }

    #[test]
    fn lock_protected_threads_never_race() {
        for _ in 0..10 {
            let (monitor, root) = Monitor::new();
            let shared = StdArc::new(Mutex::new(0u64));
            let addr = addr_of(&*shared);
            let mut tokens = Vec::new();
            let mut handles = Vec::new();
            for _ in 0..4 {
                let token = monitor.fork(root);
                tokens.push(token);
                let m = monitor.clone();
                let s = shared.clone();
                handles.push(std::thread::spawn(move || {
                    for _ in 0..100 {
                        let mut guard = s.lock().unwrap();
                        m.lock_acquired(token, 0);
                        m.read(token, addr);
                        *guard += 1;
                        m.write(token, addr);
                        m.lock_released(token, 0);
                        drop(guard);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            for token in tokens {
                monitor.join(root, token);
            }
            assert_eq!(monitor.race_count(), 0, "lock discipline must be clean");
            assert_eq!(*shared.lock().unwrap(), 400);
        }
    }

    #[test]
    fn fork_and_join_edges_order_accesses() {
        let (monitor, root) = Monitor::new();
        let data = 7u64;
        let addr = addr_of(&data);
        // Parent writes before fork: ordered.
        assert!(!monitor.write(root, addr));
        let child = monitor.fork(root);
        let m = monitor.clone();
        let h = std::thread::spawn(move || !m.read(child, addr));
        assert!(h.join().unwrap(), "fork edge must order the read");
        monitor.join(root, child);
        assert!(!monitor.write(root, addr), "join edge must order the write");
        assert_eq!(monitor.race_count(), 0);
    }

    #[test]
    fn atomic_publication_is_clean() {
        let (monitor, root) = Monitor::new();
        let data = 1u64;
        let flag = 0u64;
        let (daddr, faddr) = (addr_of(&data), addr_of(&flag));
        let child = monitor.fork(root);

        // Producer (this thread): write data, release via atomic.
        monitor.write(root, daddr);
        monitor.atomic(root, faddr);

        // Consumer: acquire via atomic, read data.
        let m = monitor.clone();
        let h = std::thread::spawn(move || {
            m.atomic(child, faddr);
            m.read(child, daddr)
        });
        assert!(!h.join().unwrap());
        monitor.join(root, child);
        assert_eq!(monitor.race_count(), 0);
    }

    #[test]
    fn missing_release_hook_is_reported() {
        // The consumer reads without the acquire hook: the monitor cannot
        // see an ordering edge, so it (correctly, per its inputs) reports
        // a race.
        let (monitor, root) = Monitor::new();
        let data = 1u64;
        let daddr = addr_of(&data);
        let child = monitor.fork(root);
        let m = monitor.clone();
        let h = std::thread::spawn(move || m.read(child, daddr));
        // The parent's write is unordered with the child's read (no
        // release/acquire hooks, and the join hook has not run yet).
        monitor.write(root, daddr);
        h.join().unwrap();
        monitor.join(root, child);
        assert!(monitor.race_count() >= 1);
    }

    #[test]
    fn reports_are_inspectable() {
        let (monitor, root) = Monitor::new();
        let data = 0u8;
        let addr = addr_of(&data);
        let child = monitor.fork(root);
        let m = monitor.clone();
        std::thread::spawn(move || {
            m.write(child, addr);
        })
        .join()
        .unwrap();
        monitor.write(root, addr);
        let reports = monitor.reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].addr, addr);
    }

    #[test]
    fn recording_monitor_captures_the_hook_stream() {
        let (monitor, root) = Monitor::recording();
        let data = 0u64;
        let addr = addr_of(&data);
        let child = monitor.fork(root);
        let m = monitor.clone();
        std::thread::spawn(move || {
            m.lock_acquired(child, 3);
            m.write(child, addr);
            m.lock_released(child, 3);
        })
        .join()
        .unwrap();
        monitor.write(root, addr);
        monitor.join(root, child);

        let trace = monitor.recorded_trace().expect("recording is on");
        let events: Vec<&TraceEvent> = trace
            .iter()
            .map(|r| match r {
                TraceRecord::Exec(e) => e,
                TraceRecord::Hitm { .. } => panic!("monitor never records HITM samples"),
            })
            .collect();
        // Lifecycle: root + child started, child finished.
        let starts = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::ThreadStarted { .. }))
            .count();
        assert_eq!(starts, 2);
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::ThreadFinished { tid } if *tid == child.tid)));
        // Both writes survive, attributed to their threads.
        let writes: Vec<ThreadId> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Op {
                    tid,
                    op: Op::Write { addr: a },
                } if *a == addr => Some(*tid),
                _ => None,
            })
            .collect();
        assert_eq!(writes.len(), 2);
        assert!(writes.contains(&root.tid) && writes.contains(&child.tid));
        // The child's buffered write was flushed before its critical
        // section closed: it appears before the Unlock in the log.
        let write_at = events
            .iter()
            .position(
                |e| matches!(e, TraceEvent::Op { tid, op: Op::Write { .. } } if *tid == child.tid),
            )
            .unwrap();
        let unlock_at = events
            .iter()
            .position(|e| {
                matches!(
                    e,
                    TraceEvent::Op {
                        op: Op::Unlock { .. },
                        ..
                    }
                )
            })
            .unwrap();
        assert!(write_at < unlock_at);
        // A non-recording monitor reports no trace.
        let (plain, _) = Monitor::new();
        assert!(plain.recorded_trace().is_none());
    }

    #[test]
    fn scoped_threads_work_too() {
        let (monitor, root) = Monitor::new();
        let counter = Mutex::new(0u32);
        let addr = addr_of(&counter);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let token = monitor.fork(root);
                let monitor = &monitor;
                let counter = &counter;
                scope.spawn(move || {
                    let mut g = counter.lock().unwrap();
                    monitor.lock_acquired(token, 9);
                    monitor.write(token, addr);
                    *g += 1;
                    monitor.lock_released(token, 9);
                    drop(g);
                });
            }
        });
        assert_eq!(monitor.race_count(), 0);
        assert_eq!(*counter.lock().unwrap(), 3);
    }
}
