//! Property suite: arbitrary [`Value`] trees must survive
//! `write → parse → write` untouched. Three properties carry the weight:
//!
//! - **parse∘write = id** for both the compact and the pretty writer, on
//!   trees stressing string escapes (quotes, backslashes, control
//!   characters, astral-plane text) and deep array/object nesting;
//! - **formatting is stable**: re-encoding a parsed document reproduces
//!   the original bytes — floats in particular, whose shortest-round-trip
//!   rendering the campaign goldens depend on.
//!
//! Numbers are generated in the parser's canonical form (negative →
//! [`Value::Int`], non-negative → [`Value::UInt`], finite → `Float`), the
//! same form every writer in the workspace produces.

use ddrace_json::{to_string_pretty, Value};
use proptest::prelude::*;
use proptest::BoxedStrategy;

/// Characters that exercise every branch of the string escaper, plus
/// ordinary text.
const PALETTE: &[char] = &[
    '"', '\\', '\n', '\r', '\t', '\u{8}', '\u{c}', '\u{0}', '\u{1f}', '/', ' ', 'a', 'Z', '0', 'é',
    'ß', '中', '🦀', '\u{7f}', '\u{2028}',
];

fn json_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(|i| PALETTE[i as usize % PALETTE.len()]),
            any::<u32>().prop_map(|c| char::from_u32(c % 0x11_0000).unwrap_or('\u{fffd}')),
        ],
        0..12,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// A finite float; the writer encodes non-finite values as `null`, so
/// they cannot round-trip and are mapped away.
fn json_float() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let f = f64::from_bits(bits);
        if f.is_finite() {
            f
        } else {
            f64::from_bits(bits & 0x000F_FFFF_FFFF_FFFF)
        }
    })
}

fn json_leaf() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        // Canonical split: the parser yields Int only for negatives.
        any::<i64>().prop_map(|i| Value::Int(if i >= 0 { -i - 1 } else { i })),
        any::<u64>().prop_map(Value::UInt),
        json_float().prop_map(Value::Float),
        json_string().prop_map(Value::Str),
    ]
    .boxed()
}

fn json_value(depth: u32) -> BoxedStrategy<Value> {
    if depth == 0 {
        return json_leaf();
    }
    let element = json_value(depth - 1);
    prop_oneof![
        2 => json_leaf(),
        1 => proptest::collection::vec(element.clone(), 0..4).prop_map(Value::Array),
        1 => proptest::collection::vec((json_string(), element), 0..4)
            .prop_map(Value::Object),
    ]
    .boxed()
}

proptest! {
    #[test]
    fn compact_round_trips(value in json_value(3)) {
        let text = value.to_compact();
        let parsed = Value::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("{text}: {e}")))?;
        prop_assert_eq!(&parsed, &value, "compact text: {}", text);
    }

    #[test]
    fn pretty_round_trips(value in json_value(3)) {
        let text = to_string_pretty(&value)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let parsed = Value::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("{text}: {e}")))?;
        prop_assert_eq!(&parsed, &value, "pretty text: {}", text);
    }

    #[test]
    fn compact_formatting_is_stable(value in json_value(3)) {
        let first = value.to_compact();
        let reparsed = Value::parse(&first)
            .map_err(|e| TestCaseError::fail(format!("{first}: {e}")))?;
        prop_assert_eq!(reparsed.to_compact(), first);
    }

    #[test]
    fn float_formatting_is_stable(f in json_float()) {
        let text = Value::Float(f).to_compact();
        let reparsed = Value::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("{text}: {e}")))?;
        prop_assert_eq!(reparsed.to_compact(), text, "float source: {:?}", f);
        // The rendering must also be exact, not merely stable.
        prop_assert_eq!(reparsed, Value::Float(f));
    }

    #[test]
    fn string_escapes_round_trip(s in json_string()) {
        let text = Value::Str(s.clone()).to_compact();
        let parsed = Value::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("{text}: {e}")))?;
        prop_assert_eq!(parsed, Value::Str(s));
    }
}
