//! A strict recursive-descent JSON parser.

use crate::Value;

/// A parse or decode failure, with a byte offset for parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    offset: Option<usize>,
}

impl JsonError {
    /// Builds a decode-stage error (no source offset).
    pub fn decode(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: None,
        }
    }

    fn at(message: impl Into<String>, offset: usize) -> JsonError {
        JsonError {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} at byte {off}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for JsonError {}

pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::at("trailing characters", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(
                format!("expected '{}'", byte as char),
                self.pos,
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(JsonError::at(format!("expected '{text}'"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(JsonError::at("unexpected character", self.pos)),
            None => Err(JsonError::at("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(JsonError::at("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(JsonError::at("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::at("invalid UTF-8 in string", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::at("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(JsonError::at("lone surrogate", self.pos));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(JsonError::at("invalid low surrogate", self.pos));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(
                                ch.ok_or_else(|| JsonError::at("invalid codepoint", self.pos))?,
                            );
                        }
                        _ => return Err(JsonError::at("unknown escape", self.pos - 1)),
                    }
                }
                Some(_) => return Err(JsonError::at("control character in string", self.pos)),
                None => return Err(JsonError::at("unterminated string", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| JsonError::at("truncated \\u escape", self.pos))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| JsonError::at("invalid hex digit", self.pos))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(JsonError::at("expected digit", self.pos));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(JsonError::at("expected fraction digit", self.pos));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(JsonError::at("expected exponent digit", self.pos));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !float {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::Int(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| JsonError::at("invalid number", start))
    }
}
