//! Derive-style macros replicating serde's default data formats.

use crate::{FromJson, JsonError, Value};

/// Decodes one struct field, adding the field name to any error.
/// Used by the generated `FromJson` impls; call sites rarely need it directly.
pub fn field<T: FromJson>(object: &Value, name: &str) -> Result<T, JsonError> {
    T::from_json(object.get_or_null(name))
        .map_err(|e| JsonError::decode(format!("field `{name}`: {e}")))
}

/// Implements [`ToJson`](crate::ToJson) and [`FromJson`](crate::FromJson) for
/// a struct with named fields, encoding it as an object in field order.
///
/// ```
/// # use ddrace_json::json_struct;
/// #[derive(PartialEq, Debug)]
/// struct P { x: u32, y: Option<u32> }
/// json_struct!(P { x, y });
/// let p: P = ddrace_json::from_str(r#"{"x":1}"#).unwrap();
/// assert_eq!(p, P { x: 1, y: None });
/// ```
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        $crate::json_struct!(@to $ty { $($field),+ });
        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Value) -> ::core::result::Result<Self, $crate::JsonError> {
                ::core::result::Result::Ok(Self {
                    $($field: $crate::field(value, stringify!($field))?,)+
                })
            }
        }
    };
    // Serialize-only form, for types that are reported but never read back.
    (@to $ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

/// Implements the traits for a single-field tuple struct transparently, as
/// serde does for newtype wrappers: `ThreadId(3)` encodes as `3`.
#[macro_export]
macro_rules! json_newtype {
    ($($ty:ident),+ $(,)?) => {$(
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                $crate::ToJson::to_json(&self.0)
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Value) -> ::core::result::Result<Self, $crate::JsonError> {
                ::core::result::Result::Ok($ty($crate::FromJson::from_json(value)?))
            }
        }
    )+};
}

/// Implements the traits for an enum of unit variants, encoded as bare
/// variant-name strings.
#[macro_export]
macro_rules! json_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                $crate::Value::Str(
                    match self {
                        $($ty::$variant => stringify!($variant),)+
                    }
                    .to_string(),
                )
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Value) -> ::core::result::Result<Self, $crate::JsonError> {
                match value.as_str() {
                    $(::core::option::Option::Some(s) if s == stringify!($variant) => {
                        ::core::result::Result::Ok($ty::$variant)
                    })+
                    _ => ::core::result::Result::Err($crate::JsonError::decode(format!(
                        "unknown {} variant: {value}",
                        stringify!($ty)
                    ))),
                }
            }
        }
    };
}

/// Implements the traits for an enum mixing unit and struct variants.
/// Unit variants encode as strings; struct variants as externally tagged
/// objects `{"Variant": {"field": …}}`, matching serde's default.
///
/// ```
/// # use ddrace_json::json_enum;
/// #[derive(PartialEq, Debug)]
/// enum E { A, B { n: u32 } }
/// json_enum!(E { A, B { n } });
/// assert_eq!(ddrace_json::to_string(&E::B { n: 2 }).unwrap(), r#"{"B":{"n":2}}"#);
/// assert_eq!(ddrace_json::from_str::<E>(r#""A""#).unwrap(), E::A);
/// ```
#[macro_export]
macro_rules! json_enum {
    ($ty:ident { $($variant:ident $({ $($field:ident),+ $(,)? })?),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                match self {
                    $($crate::json_enum!(@pat $ty $variant $({ $($field),+ })?) =>
                        $crate::json_enum!(@encode $variant $({ $($field),+ })?),)+
                }
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Value) -> ::core::result::Result<Self, $crate::JsonError> {
                $(
                    if let ::core::option::Option::Some(parsed) =
                        $crate::json_enum!(@decode $ty value $variant $({ $($field),+ })?)
                    {
                        return parsed;
                    }
                )+
                ::core::result::Result::Err($crate::JsonError::decode(format!(
                    "unknown {} variant: {value}",
                    stringify!($ty)
                )))
            }
        }
    };
    (@pat $ty:ident $variant:ident) => { $ty::$variant };
    (@pat $ty:ident $variant:ident { $($field:ident),+ }) => { $ty::$variant { $($field),+ } };
    (@encode $variant:ident) => {
        $crate::Value::Str(stringify!($variant).to_string())
    };
    (@encode $variant:ident { $($field:ident),+ }) => {
        $crate::Value::Object(vec![(
            stringify!($variant).to_string(),
            $crate::Value::Object(vec![
                $((stringify!($field).to_string(), $crate::ToJson::to_json($field)),)+
            ]),
        )])
    };
    (@decode $ty:ident $value:ident $variant:ident) => {
        match $value.as_str() {
            ::core::option::Option::Some(s) if s == stringify!($variant) => {
                ::core::option::Option::Some(::core::result::Result::Ok($ty::$variant))
            }
            _ => ::core::option::Option::None,
        }
    };
    (@decode $ty:ident $value:ident $variant:ident { $($field:ident),+ }) => {
        $value.tagged(stringify!($variant)).map(|inner| {
            ::core::result::Result::Ok($ty::$variant {
                $($field: $crate::field(inner, stringify!($field))?,)+
            })
        })
    };
}

#[cfg(test)]
mod tests {
    use crate as ddrace_json;

    #[derive(Debug, PartialEq)]
    struct Point {
        x: u32,
        label: String,
    }
    json_struct!(Point { x, label });

    #[derive(Debug, PartialEq)]
    struct Wrap(u64);
    json_newtype!(Wrap);

    #[derive(Debug, PartialEq)]
    enum Kind {
        Read,
        Write,
    }
    json_unit_enum!(Kind { Read, Write });

    #[derive(Debug, PartialEq)]
    enum Mode {
        Native,
        Demand { period: u64, wrapped: Wrap },
    }
    json_enum!(Mode { Native, Demand { period, wrapped } });

    #[test]
    fn struct_roundtrip() {
        let p = Point {
            x: 7,
            label: "hot".to_string(),
        };
        let text = ddrace_json::to_string(&p).unwrap();
        assert_eq!(text, r#"{"x":7,"label":"hot"}"#);
        assert_eq!(ddrace_json::from_str::<Point>(&text).unwrap(), p);
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(ddrace_json::to_string(&Wrap(5)).unwrap(), "5");
        assert_eq!(ddrace_json::from_str::<Wrap>("5").unwrap(), Wrap(5));
    }

    #[test]
    fn unit_enum_as_string() {
        assert_eq!(ddrace_json::to_string(&Kind::Write).unwrap(), r#""Write""#);
        assert_eq!(
            ddrace_json::from_str::<Kind>(r#""Read""#).unwrap(),
            Kind::Read
        );
        assert!(ddrace_json::from_str::<Kind>(r#""Flush""#).is_err());
    }

    #[test]
    fn mixed_enum_externally_tagged() {
        let m = Mode::Demand {
            period: 10,
            wrapped: Wrap(1),
        };
        let text = ddrace_json::to_string(&m).unwrap();
        assert_eq!(text, r#"{"Demand":{"period":10,"wrapped":1}}"#);
        assert_eq!(ddrace_json::from_str::<Mode>(&text).unwrap(), m);
        assert_eq!(
            ddrace_json::from_str::<Mode>(r#""Native""#).unwrap(),
            Mode::Native
        );
    }

    #[test]
    fn decode_errors_name_the_field() {
        let err = ddrace_json::from_str::<Point>(r#"{"x":true,"label":"a"}"#).unwrap_err();
        assert!(err.to_string().contains("field `x`"), "{err}");
    }
}
