//! # ddrace-json — self-contained JSON for the ddrace workspace
//!
//! The simulator runs in hermetic environments with no crate registry, so
//! everything that used to go through `serde`/`serde_json` goes through this
//! crate instead: a [`Value`] model, a strict parser, compact and pretty
//! writers, the [`ToJson`]/[`FromJson`] traits, and `macro_rules!` macros
//! ([`json_struct!`](crate::json_struct), [`json_newtype!`](crate::json_newtype),
//! [`json_unit_enum!`](crate::json_unit_enum)) that replicate the default
//! serde data formats:
//!
//! - structs → objects in field-declaration order,
//! - newtype wrappers → transparent (the inner value),
//! - unit enum variants → bare strings,
//! - struct enum variants → externally tagged `{"Variant": {…}}`,
//! - tuples → arrays, `Option` → value-or-null.
//!
//! Object keys keep insertion order (a `Vec` of pairs, not a hash map), so
//! output is byte-deterministic — a property the campaign harness relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod macros;
mod parse;
mod traits;
mod write;

pub use macros::field;
pub use parse::JsonError;
pub use traits::{FromJson, ToJson};

/// A parsed or constructed JSON document.
///
/// Numbers are split into signed, unsigned and floating variants so that
/// `u64` counters round-trip without precision loss.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// A negative integer (positive integers parse as [`Value::UInt`]).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Parses a JSON document from text.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        parse::parse(text)
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a key in an object, yielding `Null` when absent — the shape
    /// `FromJson` impls want for optional fields.
    pub fn get_or_null(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }

    /// For an externally tagged enum value `{"Variant": inner}`, returns the
    /// inner value when the single key matches `tag`.
    pub fn tagged(&self, tag: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) if pairs.len() == 1 && pairs[0].0 == tag => Some(&pairs[0].1),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        write::compact(self)
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty(&self) -> String {
        write::pretty(self)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_compact())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get_or_null(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Serializes a value compactly (single line).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, JsonError> {
    Ok(value.to_json().to_compact())
}

/// Serializes a value with two-space pretty indentation, matching the layout
/// of the JSON files under `results/`.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, JsonError> {
    Ok(value.to_json().to_pretty())
}

/// Parses a typed value out of JSON text.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Value::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalar_values() {
        for text in ["null", "true", "false", "0", "-7", "18446744073709551615"] {
            assert_eq!(Value::parse(text).unwrap().to_compact(), text);
        }
        assert_eq!(Value::parse("1.5").unwrap(), Value::Float(1.5));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Value::parse(r#"{"z":1,"a":{"nested":[1,2,3]},"m":null}"#).unwrap();
        assert_eq!(v.to_compact(), r#"{"z":1,"a":{"nested":[1,2,3]},"m":null}"#);
        assert_eq!(v["a"]["nested"][2].as_u64(), Some(3));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn pretty_matches_expected_layout() {
        let v = Value::parse(r#"{"a":[1,2],"b":{}}"#).unwrap();
        assert_eq!(
            v.to_pretty(),
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}"
        );
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::Str("a\"b\\c\n\t\u{1}".to_string());
        let text = v.to_compact();
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_always_carry_a_fraction_marker() {
        assert_eq!(Value::Float(1.0).to_compact(), "1.0");
        assert_eq!(Value::Float(0.25).to_compact(), "0.25");
    }

    #[test]
    fn typed_roundtrip_via_traits() {
        let xs: Vec<u64> = vec![1, 2, 3];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[1,2,3]");
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
        let opt: Option<u32> = from_str("null").unwrap();
        assert_eq!(opt, None);
        let pair: (u32, bool) = from_str("[4,true]").unwrap();
        assert_eq!(pair, (4, true));
    }

    #[test]
    fn parse_rejects_garbage() {
        for text in ["", "{", "[1,", "tru", "\"unterminated", "1 2", "{\"a\" 1}"] {
            assert!(Value::parse(text).is_err(), "{text:?} should not parse");
        }
    }
}
