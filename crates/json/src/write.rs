//! Compact and pretty JSON writers with deterministic output.

use crate::Value;
use std::fmt::Write;

pub fn compact(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

pub fn pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some("  "), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; degrade to null like lossy encoders do.
        out.push_str("null");
        return;
    }
    let text = format!("{f}");
    out.push_str(&text);
    // Keep floats visually distinct from integers ("1.0", not "1").
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
