//! The [`ToJson`]/[`FromJson`] traits and implementations for std types.

use crate::{JsonError, Value};

/// Conversion into a JSON [`Value`].
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Value;
}

/// Conversion out of a JSON [`Value`].
pub trait FromJson: Sized {
    /// Decodes `Self` from a JSON value.
    fn from_json(value: &Value) -> Result<Self, JsonError>;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(value.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value
            .as_bool()
            .ok_or_else(|| JsonError::decode(format!("expected bool, got {value}")))
    }
}

macro_rules! impl_json_uint {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl FromJson for $ty {
            fn from_json(value: &Value) -> Result<Self, JsonError> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| JsonError::decode(format!("expected unsigned integer, got {value}")))?;
                <$ty>::try_from(n).map_err(|_| {
                    JsonError::decode(format!("{n} out of range for {}", stringify!($ty)))
                })
            }
        }
    )+};
}

macro_rules! impl_json_int {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl FromJson for $ty {
            fn from_json(value: &Value) -> Result<Self, JsonError> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| JsonError::decode(format!("expected integer, got {value}")))?;
                <$ty>::try_from(n).map_err(|_| {
                    JsonError::decode(format!("{n} out of range for {}", stringify!($ty)))
                })
            }
        }
    )+};
}

impl_json_uint!(u8, u16, u32, u64, usize);
impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value
            .as_f64()
            .ok_or_else(|| JsonError::decode(format!("expected number, got {value}")))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        f64::from_json(value).map(|f| f as f32)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::decode(format!("expected string, got {value}")))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_json(value).map(Some)
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(T::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value
            .as_array()
            .ok_or_else(|| JsonError::decode(format!("expected array, got {value}")))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

macro_rules! impl_json_tuple {
    ($($name:ident : $idx:tt),+ ; $len:expr) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: FromJson),+> FromJson for ($($name,)+) {
            fn from_json(value: &Value) -> Result<Self, JsonError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| JsonError::decode(format!("expected array, got {value}")))?;
                if items.len() != $len {
                    return Err(JsonError::decode(format!(
                        "expected {}-tuple, got {} elements",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_json(&items[$idx])?,)+))
            }
        }
    };
}

impl_json_tuple!(A: 0, B: 1; 2);
impl_json_tuple!(A: 0, B: 1, C: 2; 3);
impl_json_tuple!(A: 0, B: 1, C: 2, D: 3; 4);
