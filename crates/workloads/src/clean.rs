//! Structured, provably race-free kernels built op by op: the classic
//! synchronization patterns (bounded buffer, double-buffered stencil,
//! locked work queue). They stress the semaphore and barrier machinery
//! harder than the profile-driven suite generators and serve as negative
//! controls — any detector report on these is a detector bug.

use ddrace_program::{Program, ProgramBuilder, ThreadId};

/// A bounded buffer (capacity `capacity`) with one producer and one
/// consumer moving `items` items, synchronized by the textbook
/// empty/full semaphore pair. Every slot write is consumed by a
/// semaphore-ordered read: heavy W→R sharing, zero races.
///
/// # Panics
///
/// Panics if `capacity` or `items` is zero.
pub fn bounded_buffer(capacity: u32, items: u32) -> Program {
    assert!(
        capacity > 0 && items > 0,
        "capacity and items must be positive"
    );
    let mut b = ProgramBuilder::new();
    let slots = b.alloc_shared(u64::from(capacity) * 64); // one line per slot
    let empty = b.new_sem();
    let full = b.new_sem();
    let producer = b.add_thread();
    let consumer = b.add_thread();

    // Main primes the empty semaphore with the buffer capacity.
    let mut main = b.on(ThreadId::MAIN);
    for _ in 0..capacity {
        main = main.post(empty);
    }
    main.fork(producer)
        .fork(consumer)
        .join(producer)
        .join(consumer);

    let slot_addr = |i: u32| slots.index(u64::from(i % capacity) * 64);
    let mut p = b.on(producer);
    for i in 0..items {
        p = p.wait_sem(empty).write(slot_addr(i)).compute(5).post(full);
    }
    let _ = p;
    let mut c = b.on(consumer);
    for i in 0..items {
        c = c.wait_sem(full).read(slot_addr(i)).compute(5).post(empty);
    }
    let _ = c;
    b.build()
}

/// A barrier-phased, double-buffered 1-D stencil: `workers` threads each
/// own `seg_words` words; every iteration reads the neighbours' boundary
/// words from the *previous* buffer and writes the *current* buffer, with
/// a barrier between phases. Neighbour boundary reads are real
/// inter-thread W→R sharing; double buffering plus barriers make it
/// race-free.
///
/// # Panics
///
/// Panics if `workers < 2` or `seg_words < 2` or `iterations == 0`.
pub fn stencil(workers: u32, seg_words: u64, iterations: u32) -> Program {
    assert!(workers >= 2, "a stencil needs neighbours");
    assert!(seg_words >= 2 && iterations > 0, "degenerate stencil");
    let mut b = ProgramBuilder::new();
    let buf_a = b.alloc_shared(u64::from(workers) * seg_words * 8);
    let buf_b = b.alloc_shared(u64::from(workers) * seg_words * 8);
    let bar = b.new_barrier();
    let tids: Vec<ThreadId> = (0..workers).map(|_| b.add_thread()).collect();

    let mut main = b.on(ThreadId::MAIN);
    for &t in &tids {
        main = main.fork(t);
    }
    for &t in &tids {
        main = main.join(t);
    }
    let _ = main;

    for (w, &t) in tids.iter().enumerate() {
        let w = w as u64;
        let mut c = b.on(t);
        for iter in 0..iterations {
            // Even iterations read A / write B; odd iterations the
            // reverse.
            let (read_buf, write_buf) = if iter % 2 == 0 {
                (buf_a, buf_b)
            } else {
                (buf_b, buf_a)
            };
            // Read my segment plus my neighbours' boundary words.
            for i in 0..seg_words {
                c = c.read(read_buf.word(w * seg_words + i));
            }
            if w > 0 {
                c = c.read(read_buf.word(w * seg_words - 1));
            }
            if w + 1 < u64::from(workers) {
                c = c.read(read_buf.word((w + 1) * seg_words));
            }
            // Compute and write my segment of the other buffer.
            c = c.compute(20);
            for i in 0..seg_words {
                c = c.write(write_buf.word(w * seg_words + i));
            }
            c = c.barrier(bar, workers);
        }
        let _ = c;
    }
    b.build()
}

/// A lock-protected work queue: main pre-fills `tasks` descriptors, then
/// `workers` threads repeatedly take the next index under a lock and
/// process the task against private scratch. Clean by construction;
/// produces contended lock traffic plus W→R reads of main-written task
/// descriptors.
///
/// # Panics
///
/// Panics if `workers` or `tasks` is zero.
pub fn work_queue(workers: u32, tasks: u32) -> Program {
    assert!(
        workers > 0 && tasks > 0,
        "workers and tasks must be positive"
    );
    let mut b = ProgramBuilder::new();
    let queue = b.alloc_shared(u64::from(tasks) * 8 + 8); // head index + descriptors
    let head = queue.word(0);
    let lock = b.new_lock();
    let tids: Vec<ThreadId> = (0..workers).map(|_| b.add_thread()).collect();
    let scratches: Vec<_> = tids.iter().map(|&t| b.alloc_private(t, 4 * 1024)).collect();

    let mut main = b.on(ThreadId::MAIN);
    // Publish the descriptors before forking anyone.
    for i in 0..tasks {
        main = main.write(queue.word(1 + u64::from(i)));
    }
    for &t in &tids {
        main = main.fork(t);
    }
    for &t in &tids {
        main = main.join(t);
    }
    let _ = main;

    // Each worker takes a static share of pops; which task each pop
    // yields depends on interleaving, but every pop is lock-ordered.
    let pops_per_worker = tasks / workers;
    for (w, &t) in tids.iter().enumerate() {
        let scratch = scratches[w];
        let mut c = b.on(t);
        for p in 0..pops_per_worker {
            // Take the next index under the lock.
            c = c.lock(lock).read(head).write(head).unlock(lock);
            // Read "the" descriptor (modelled as a rotating slot: which
            // exact slot is irrelevant to sharing behaviour) and work.
            c = c.read(queue.word(1 + (w as u64 * 131 + u64::from(p)) % u64::from(tasks)));
            for i in 0..32u64 {
                c = c.write(scratch.word(i)).read(scratch.word(i));
            }
            c = c.compute(10);
        }
        let _ = c;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrace_program::{run_program, NullListener, SchedulerConfig, StatsCollector};

    fn runs_clean(program: Program, seed: u64) -> ddrace_program::OpCounts {
        let mut c = StatsCollector::new(NullListener);
        run_program(program, SchedulerConfig::jittered(seed), &mut c).unwrap();
        *c.counts()
    }

    #[test]
    fn bounded_buffer_moves_every_item() {
        let counts = runs_clean(bounded_buffer(4, 100), 3);
        assert_eq!(counts.writes, 100);
        assert_eq!(counts.reads, 100);
        // capacity priming + producer posts + consumer posts
        assert_eq!(counts.posts, 4 + 100 + 100);
        assert_eq!(counts.waits, 200);
    }

    #[test]
    fn bounded_buffer_capacity_one_still_flows() {
        let counts = runs_clean(bounded_buffer(1, 25), 9);
        assert_eq!(counts.writes, 25);
        assert_eq!(counts.reads, 25);
    }

    #[test]
    fn stencil_shape() {
        let workers = 4u32;
        let seg = 8u64;
        let iters = 3u32;
        let counts = runs_clean(stencil(workers, seg, iters), 1);
        assert_eq!(counts.barriers as u32, workers * iters);
        assert_eq!(counts.writes, u64::from(workers) * seg * u64::from(iters));
        // Interior workers read 2 extra boundary words, edges 1.
        let boundary = u64::from(iters) * (2 * (u64::from(workers) - 2) + 2);
        assert_eq!(
            counts.reads,
            u64::from(workers) * seg * u64::from(iters) + boundary
        );
    }

    #[test]
    fn work_queue_balances_locks() {
        let counts = runs_clean(work_queue(4, 40), 7);
        assert_eq!(counts.locks, 40);
        assert_eq!(counts.unlocks, 40);
        assert_eq!(counts.forks, 4);
    }

    #[test]
    fn all_clean_kernels_are_race_free_across_seeds() {
        use ddrace_core::{AnalysisMode, SimConfig, Simulation};
        for seed in [0u64, 1, 2, 3, 4] {
            for (name, program) in [
                ("bounded_buffer", bounded_buffer(4, 60)),
                ("stencil", stencil(4, 8, 4)),
                ("work_queue", work_queue(4, 40)),
            ] {
                let mut cfg = SimConfig::new(4, AnalysisMode::Continuous);
                cfg.scheduler = SchedulerConfig {
                    quantum: 6,
                    seed,
                    jitter: true,
                };
                let r = Simulation::new(cfg).run(program).unwrap();
                assert_eq!(
                    r.races.distinct, 0,
                    "{name} raced at seed {seed}: {:?}",
                    r.races.reports
                );
            }
        }
    }

    #[test]
    fn stencil_produces_real_neighbour_sharing() {
        use ddrace_core::{AnalysisMode, SimConfig, Simulation};
        let mut cfg = SimConfig::new(4, AnalysisMode::Native);
        cfg.scheduler = SchedulerConfig {
            quantum: 6,
            seed: 2,
            jitter: true,
        };
        let r = Simulation::new(cfg).run(stencil(4, 8, 4)).unwrap();
        assert!(
            r.cache.sharing.write_read > 0,
            "boundary exchange must register as W→R sharing"
        );
    }

    #[test]
    #[should_panic(expected = "neighbours")]
    fn stencil_needs_two_workers() {
        let _ = stencil(1, 8, 1);
    }
}
