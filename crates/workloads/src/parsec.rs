//! PARSEC-like workloads.
//!
//! PARSEC (Bienia et al., PACT 2008) spans data-parallel, pipeline, and
//! amorphous applications with markedly more inter-thread communication
//! than Phoenix — which is why the paper's demand-driven detector gains
//! "only" ≈3× there: analysis genuinely has to stay on during sharing
//! phases. Our thirteen specs reproduce the communication *shapes*:
//! barrier-phased data parallelism (blackscholes, streamcluster),
//! fine-grained amorphous sharing (canneal, fluidanimate), and
//! semaphore-linked pipelines with producer→consumer buffers (dedup,
//! ferret, vips, x264).

use crate::spec::{IterProfile, Structure, Suite, WorkloadSpec};

/// Default worker count for the suite.
pub const PARSEC_WORKERS: u32 = 8;

fn base(name: &str, iter: IterProfile) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_string(),
        suite: Suite::Parsec,
        workers: PARSEC_WORKERS,
        structure: Structure::ForkJoin {
            iterations: 1,
            barrier_per_iter: false,
        },
        iter,
        init_shared_words: 256,
        final_merge_words: 128,
        // Larger working sets than Phoenix: more natural cache misses,
        // so continuous analysis hurts (relatively) less.
        private_bytes: 64 * 1024,
        shared_bytes: 256 * 1024,
        hot_words: 64,
        lock_count: 32,
    }
}

fn pipeline(name: &str, stages: u32, items: u64, work: u64, slot_words: u64) -> WorkloadSpec {
    let mut spec = base(name, IterProfile::private_only(0));
    spec.workers = stages;
    spec.structure = Structure::Pipeline {
        items,
        work_per_item: work,
        slot_words,
    };
    spec
}

/// `blackscholes`: embarrassingly parallel option pricing with barrier
/// phases; near-zero communication.
pub fn blackscholes() -> WorkloadSpec {
    let mut spec = base(
        "blackscholes",
        IterProfile {
            private_ops: 80_000,
            private_read_pct: 70,
            compute_pct: 40,
            shared_reads: 10_000,
            shared_rw_pairs: 0,
            locked_updates: 0,
            atomic_ops: 0,
            racy_pairs: 0,
        },
    );
    spec.structure = Structure::ForkJoin {
        iterations: 4,
        barrier_per_iter: true,
    };
    spec.init_shared_words = 1_024;
    spec
}

/// `bodytrack`: per-frame particle filter; the model is updated and
/// re-read every frame.
pub fn bodytrack() -> WorkloadSpec {
    let mut spec = base(
        "bodytrack",
        IterProfile {
            private_ops: 40_000,
            private_read_pct: 72,
            compute_pct: 20,
            shared_reads: 3_000,
            shared_rw_pairs: 80,
            locked_updates: 60,
            atomic_ops: 0,
            racy_pairs: 0,
        },
    );
    spec.structure = Structure::ForkJoin {
        iterations: 12,
        barrier_per_iter: true,
    };
    spec.init_shared_words = 512;
    spec
}

/// `canneal`: random element swaps across a large shared netlist with
/// lock-free atomics — the suite's fine-grained-sharing extreme.
pub fn canneal() -> WorkloadSpec {
    let mut spec = base(
        "canneal",
        IterProfile {
            private_ops: 100_000,
            private_read_pct: 70,
            compute_pct: 10,
            shared_reads: 10_000,
            shared_rw_pairs: 8_000,
            locked_updates: 0,
            atomic_ops: 4_000,
            racy_pairs: 0,
        },
    );
    spec.shared_bytes = 1024 * 1024;
    spec.hot_words = 2_048;
    spec
}

/// `dedup`: the canonical pipeline (chunk → hash → compress → write)
/// streaming every item through shared buffers.
pub fn dedup() -> WorkloadSpec {
    pipeline("dedup", 5, 40, 18_000, 8)
}

/// `facesim`: iterative physics with neighbour-boundary exchange.
pub fn facesim() -> WorkloadSpec {
    let mut spec = base(
        "facesim",
        IterProfile {
            private_ops: 30_000,
            private_read_pct: 75,
            compute_pct: 25,
            shared_reads: 5_000,
            shared_rw_pairs: 400,
            locked_updates: 50,
            atomic_ops: 0,
            racy_pairs: 0,
        },
    );
    spec.structure = Structure::ForkJoin {
        iterations: 10,
        barrier_per_iter: true,
    };
    spec.private_bytes = 128 * 1024;
    spec
}

/// `ferret`: the six-stage similarity-search pipeline.
pub fn ferret() -> WorkloadSpec {
    pipeline("ferret", 6, 30, 15_000, 8)
}

/// `fluidanimate`: grid physics with very fine-grained per-cell locks and
/// boundary sharing.
pub fn fluidanimate() -> WorkloadSpec {
    let mut spec = base(
        "fluidanimate",
        IterProfile {
            private_ops: 25_000,
            private_read_pct: 70,
            compute_pct: 20,
            shared_reads: 2_000,
            shared_rw_pairs: 600,
            locked_updates: 2_000,
            atomic_ops: 0,
            racy_pairs: 0,
        },
    );
    spec.structure = Structure::ForkJoin {
        iterations: 8,
        barrier_per_iter: true,
    };
    spec.lock_count = 128;
    spec
}

/// `freqmine`: frequent-itemset mining over a shared FP-tree built under
/// locks.
pub fn freqmine() -> WorkloadSpec {
    let mut spec = base(
        "freqmine",
        IterProfile {
            private_ops: 60_000,
            private_read_pct: 78,
            compute_pct: 12,
            shared_reads: 8_000,
            shared_rw_pairs: 100,
            locked_updates: 1_500,
            atomic_ops: 0,
            racy_pairs: 0,
        },
    );
    spec.structure = Structure::ForkJoin {
        iterations: 4,
        barrier_per_iter: true,
    };
    spec.shared_bytes = 512 * 1024;
    spec
}

/// `raytrace`: read-only scene, private framebuffer tiles; low sharing.
pub fn raytrace() -> WorkloadSpec {
    let mut spec = base(
        "raytrace",
        IterProfile {
            private_ops: 300_000,
            private_read_pct: 75,
            compute_pct: 30,
            shared_reads: 20_000,
            shared_rw_pairs: 0,
            locked_updates: 0,
            atomic_ops: 0,
            racy_pairs: 0,
        },
    );
    spec.init_shared_words = 1_024;
    spec.shared_bytes = 512 * 1024;
    spec
}

/// `streamcluster`: many short barrier-separated phases with shared
/// center updates — the suite's barrier extreme.
pub fn streamcluster() -> WorkloadSpec {
    let mut spec = base(
        "streamcluster",
        IterProfile {
            private_ops: 12_000,
            private_read_pct: 75,
            compute_pct: 15,
            shared_reads: 4_000,
            shared_rw_pairs: 500,
            locked_updates: 0,
            atomic_ops: 200,
            racy_pairs: 0,
        },
    );
    spec.structure = Structure::ForkJoin {
        iterations: 15,
        barrier_per_iter: true,
    };
    spec.hot_words = 128;
    spec
}

/// `swaptions`: Monte-Carlo pricing, embarrassingly parallel; minimal
/// sharing.
pub fn swaptions() -> WorkloadSpec {
    let mut spec = base(
        "swaptions",
        IterProfile {
            private_ops: 350_000,
            private_read_pct: 72,
            compute_pct: 35,
            shared_reads: 500,
            shared_rw_pairs: 0,
            locked_updates: 0,
            atomic_ops: 0,
            racy_pairs: 0,
        },
    );
    spec.init_shared_words = 64;
    spec
}

/// `vips`: image-processing pipeline.
pub fn vips() -> WorkloadSpec {
    pipeline("vips", 4, 40, 20_000, 8)
}

/// `x264`: video-encoding pipeline with bigger frames flowing between
/// stages.
pub fn x264() -> WorkloadSpec {
    pipeline("x264", 6, 30, 16_000, 16)
}

/// The full PARSEC-like suite, in canonical order.
pub fn suite() -> Vec<WorkloadSpec> {
    vec![
        blackscholes(),
        bodytrack(),
        canneal(),
        dedup(),
        facesim(),
        ferret(),
        fluidanimate(),
        freqmine(),
        raytrace(),
        streamcluster(),
        swaptions(),
        vips(),
        x264(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use ddrace_program::{run_program, NullListener, SchedulerConfig};

    #[test]
    fn suite_has_thirteen_distinct_benchmarks() {
        let s = suite();
        assert_eq!(s.len(), 13);
        let names: std::collections::HashSet<&str> = s.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names.len(), 13);
        for w in &s {
            assert_eq!(w.suite, Suite::Parsec);
            assert_eq!(w.iter.racy_pairs, 0, "{} must be race-clean", w.name);
        }
    }

    #[test]
    fn every_benchmark_runs_cleanly_at_test_scale() {
        for spec in suite() {
            let program = spec.program(Scale::TEST, 7);
            let stats = run_program(program, SchedulerConfig::jittered(2), &mut NullListener)
                .unwrap_or_else(|e| panic!("{} failed: {e}", spec.name));
            assert!(stats.ops_executed > 0, "{} executed nothing", spec.name);
            assert_eq!(stats.orphan_threads, 0, "{} left orphans", spec.name);
        }
    }

    #[test]
    fn pipelines_use_pipeline_structure() {
        for name in ["dedup", "ferret", "vips", "x264"] {
            let spec = suite().into_iter().find(|w| w.name == name).unwrap();
            assert!(
                matches!(spec.structure, Structure::Pipeline { .. }),
                "{name} must be a pipeline"
            );
        }
    }

    #[test]
    fn canneal_is_the_sharing_extreme() {
        let canneal = canneal();
        let sharing =
            canneal.iter.shared_rw_pairs + canneal.iter.atomic_ops + canneal.iter.locked_updates;
        for w in suite() {
            if matches!(w.structure, Structure::Pipeline { .. }) || w.name == "canneal" {
                continue;
            }
            let other = w.iter.shared_rw_pairs + w.iter.atomic_ops + w.iter.locked_updates;
            assert!(sharing >= other, "canneal must share most (vs {})", w.name);
        }
    }
}
