//! Workload specifications: the parameter vector that shapes a synthetic
//! benchmark, and its lowering to a runnable [`Program`].
//!
//! We cannot ship Phoenix or PARSEC; what the paper's mechanism actually
//! responds to is each program's **sharing profile** — how many of its
//! memory accesses communicate between threads, in what pattern, and how
//! the phases are structured. A [`WorkloadSpec`] captures exactly those
//! knobs, and the `phoenix` and `parsec` modules instantiate one spec per
//! benchmark with numbers shaped to the published characteristics.

use crate::phases::{Phase, PlanStream};
use crate::scale::Scale;
use ddrace_program::{
    AddressSpace, BarrierId, OpStream, Program, Region, SemId, StartMode, ThreadId,
};

/// First lock id of the per-hot-word lock range used by guarded hot
/// updates; ordinary accumulator locks start at 0, so the ranges never
/// collide (no workload uses anywhere near this many bucket locks).
pub const HOT_LOCK_BASE: u32 = 1 << 16;

/// Which suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Phoenix-like map-reduce kernels (low sharing).
    Phoenix,
    /// PARSEC-like applications (moderate-to-heavy sharing).
    Parsec,
    /// Hand-written racy kernels.
    Kernel,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Suite::Phoenix => "phoenix",
            Suite::Parsec => "parsec",
            Suite::Kernel => "kernel",
        };
        f.write_str(s)
    }
}

/// Per-iteration, per-worker behaviour of a fork-join workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterProfile {
    /// Private work ops (reads/writes/compute over the private region).
    pub private_ops: u64,
    /// Percent of private memory ops that are reads.
    pub private_read_pct: u8,
    /// Percent of private ops that are pure compute.
    pub compute_pct: u8,
    /// Reads of the shared read-mostly region (input data).
    pub shared_reads: u64,
    /// Read+write pairs on hot shared words (true W→R communication).
    pub shared_rw_pairs: u64,
    /// Lock-protected updates of shared accumulators.
    pub locked_updates: u64,
    /// Atomic RMWs on shared counters.
    pub atomic_ops: u64,
    /// **Unprotected** shared read+write pairs (injected races); 0 in
    /// clean benchmarks.
    pub racy_pairs: u64,
}

impl IterProfile {
    /// A profile that only does private work.
    pub fn private_only(private_ops: u64) -> Self {
        IterProfile {
            private_ops,
            private_read_pct: 70,
            compute_pct: 20,
            shared_reads: 0,
            shared_rw_pairs: 0,
            locked_updates: 0,
            atomic_ops: 0,
            racy_pairs: 0,
        }
    }
}

/// The parallel structure of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Structure {
    /// Main forks workers; workers run `iterations` phases (optionally
    /// barrier-separated); main joins and merges.
    ForkJoin {
        /// Number of iterations.
        iterations: u32,
        /// Whether workers synchronize at a barrier between iterations.
        barrier_per_iter: bool,
    },
    /// Workers form a pipeline of stages connected by semaphores and
    /// shared buffers (dedup/ferret/x264-style).
    Pipeline {
        /// Items flowing through the pipeline.
        items: u64,
        /// Private work ops per item per stage.
        work_per_item: u64,
        /// Words copied through each inter-stage buffer slot.
        slot_words: u64,
    },
    /// A two-thread producer/consumer kernel: the producer writes shared
    /// words, streams through private data to evict them, and only then
    /// does the consumer read — the HITM indicator's worst case (see
    /// [`racy::delayed_sharing`](crate::racy::delayed_sharing)), swept by
    /// experiment A3's cache ladder.
    DelayedSharing {
        /// Shared words written per round.
        words: u64,
        /// Bytes of private streaming between write and read.
        delay_bytes: u64,
        /// Write→evict→read rounds at `Scale::SMALL`. Other scales
        /// multiply this, floored at 2 — a single round is undetectable
        /// by construction, so scaling below 2 would degenerate the
        /// experiment.
        rounds: u32,
    },
}

/// A complete synthetic benchmark description.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name (e.g. "kmeans").
    pub name: String,
    /// The suite it models.
    pub suite: Suite,
    /// Worker thread count (total threads = workers + main).
    pub workers: u32,
    /// Parallel structure.
    pub structure: Structure,
    /// Per-iteration worker behaviour (fork-join structures).
    pub iter: IterProfile,
    /// Words of shared data main initializes before forking (one-time
    /// W→R sharing when workers first read it).
    pub init_shared_words: u64,
    /// Words of shared data main reads after joining (final merge).
    pub final_merge_words: u64,
    /// Bytes of private working set per worker.
    pub private_bytes: u64,
    /// Bytes of the shared region.
    pub shared_bytes: u64,
    /// Hot shared words targeted by `shared_rw_pairs` and `atomic_ops`.
    pub hot_words: u64,
    /// Lock buckets protecting shared accumulators.
    pub lock_count: u32,
}

impl WorkloadSpec {
    /// Total threads including main.
    pub fn total_threads(&self) -> u32 {
        self.workers + 1
    }

    /// Returns a copy with `pairs` unprotected racy pairs injected per
    /// iteration (or per pipeline stage) — the racy variant used in
    /// detection-accuracy experiments.
    pub fn with_injected_race(&self, pairs: u64) -> WorkloadSpec {
        let mut spec = self.clone();
        spec.name = format!("{}+race", self.name);
        spec.iter.racy_pairs = pairs;
        spec
    }

    /// Builds the runnable program at `scale` with deterministic
    /// randomness derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero workers).
    pub fn program(&self, scale: Scale, seed: u64) -> Program {
        assert!(self.workers >= 1, "a workload needs at least one worker");
        match self.structure {
            Structure::ForkJoin {
                iterations,
                barrier_per_iter,
            } => self.fork_join_program(scale, seed, iterations, barrier_per_iter),
            Structure::Pipeline {
                items,
                work_per_item,
                slot_words,
            } => self.pipeline_program(scale, seed, items, work_per_item, slot_words),
            Structure::DelayedSharing {
                words,
                delay_bytes,
                rounds,
            } => {
                // The kernel is fully deterministic (no jittered phases),
                // so the seed only feeds the fingerprint; scale acts on
                // the round count.
                let rounds = scale.apply(u64::from(rounds)).max(2) as u32;
                crate::racy::delayed_sharing(words, delay_bytes, rounds)
            }
        }
    }

    fn worker_seed(seed: u64, tid: u32) -> u64 {
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(tid) * 0x517C_C1B7)
    }

    fn fork_join_program(
        &self,
        scale: Scale,
        seed: u64,
        iterations: u32,
        barrier_per_iter: bool,
    ) -> Program {
        let mut space = AddressSpace::new();
        // Read-only input (scans) and read-write accumulators live in
        // separate regions, like real programs: unsynchronized reads of
        // the input never alias lock-protected accumulator words.
        let input = space.alloc_region(self.shared_bytes.max(64));
        // Guarded hot words (SharedRw + AtomicOps) and lock-protected
        // accumulators are disjoint: one word, one synchronization
        // discipline.
        let hot = space.alloc_region((self.hot_words * 2 * 8).max(128));
        let accum = space.alloc_region(self.shared_bytes.max(4096));
        let racy = space.alloc_region(256);
        let privates: Vec<Region> = (0..self.workers)
            .map(|w| space.alloc_private(ThreadId(w + 1), self.private_bytes.max(64)))
            .collect();

        // Main thread: init, fork all, join all, merge.
        let mut main_plan = Vec::new();
        let init = scale.apply(self.init_shared_words);
        if init > 0 {
            main_plan.push(Phase::WriteSeq {
                region: input,
                ops: init,
            });
        }
        for w in 0..self.workers {
            main_plan.push(Phase::Fork(ThreadId(w + 1)));
        }
        for w in 0..self.workers {
            main_plan.push(Phase::Join(ThreadId(w + 1)));
        }
        let merge = scale.apply(self.final_merge_words);
        if merge > 0 {
            main_plan.push(Phase::ReadSeq {
                region: accum,
                ops: merge,
            });
        }

        let mut streams: Vec<Box<dyn OpStream>> = vec![Box::new(PlanStream::new(
            main_plan,
            Self::worker_seed(seed, 0),
        ))];

        for w in 0..self.workers {
            let mut plan = Vec::new();
            for _ in 0..iterations {
                self.push_iteration(
                    &mut plan,
                    scale,
                    privates[w as usize],
                    input,
                    hot,
                    accum,
                    racy,
                );
                if barrier_per_iter && self.workers > 1 {
                    plan.push(Phase::Barrier {
                        id: BarrierId(0),
                        participants: self.workers,
                    });
                }
            }
            streams.push(Box::new(PlanStream::new(
                plan,
                Self::worker_seed(seed, w + 1),
            )));
        }
        Program::new(streams, StartMode::ForkExplicit)
    }

    #[allow(clippy::too_many_arguments)]
    fn push_iteration(
        &self,
        plan: &mut Vec<Phase>,
        scale: Scale,
        private: Region,
        input: Region,
        hot: Region,
        accum: Region,
        racy: Region,
    ) {
        let it = &self.iter;
        let shared_reads = scale.apply(it.shared_reads);
        if shared_reads > 0 {
            plan.push(Phase::SharedReads {
                region: input,
                ops: shared_reads,
            });
        }
        let private_ops = scale.apply(it.private_ops);
        if private_ops > 0 {
            plan.push(Phase::PrivateMix {
                region: private,
                ops: private_ops,
                read_pct: it.private_read_pct,
                compute_pct: it.compute_pct,
            });
        }
        let rw = scale.apply(it.shared_rw_pairs);
        if rw > 0 {
            plan.push(Phase::SharedRw {
                region: hot,
                pairs: rw,
                hot_words: self.hot_words.max(1),
                lock_base: HOT_LOCK_BASE,
            });
        }
        let locked = scale.apply(it.locked_updates);
        if locked > 0 {
            plan.push(Phase::LockedUpdates {
                lock_base: 0,
                lock_count: self.lock_count.max(1),
                region: accum,
                updates: locked,
            });
        }
        let atomics = scale.apply(it.atomic_ops);
        if atomics > 0 {
            plan.push(Phase::AtomicOps {
                region: hot,
                ops: atomics,
                hot_words: self.hot_words.max(1),
            });
        }
        let racy_pairs = scale.apply(it.racy_pairs);
        if racy_pairs > 0 {
            plan.push(Phase::RacyPairs {
                region: racy,
                pairs: racy_pairs,
            });
        }
    }

    fn pipeline_program(
        &self,
        scale: Scale,
        seed: u64,
        items: u64,
        work_per_item: u64,
        slot_words: u64,
    ) -> Program {
        let stages = self.workers;
        let items = scale.apply(items);
        let mut space = AddressSpace::new();
        // One buffer between consecutive stages, sized for all items.
        let buffers: Vec<Region> = (0..stages.saturating_sub(1))
            .map(|_| space.alloc_region((items * slot_words * 8).max(64)))
            .collect();
        let scratches: Vec<Region> = (0..stages)
            .map(|s| space.alloc_private(ThreadId(s + 1), self.private_bytes.max(64)))
            .collect();
        let racy = space.alloc_region(256);

        let mut main_plan = Vec::new();
        for w in 0..stages {
            main_plan.push(Phase::Fork(ThreadId(w + 1)));
        }
        for w in 0..stages {
            main_plan.push(Phase::Join(ThreadId(w + 1)));
        }
        let mut streams: Vec<Box<dyn OpStream>> = vec![Box::new(PlanStream::new(
            main_plan,
            Self::worker_seed(seed, 0),
        ))];

        for s in 0..stages {
            let mut plan = Vec::new();
            plan.push(Phase::PipelineStage {
                in_sem: (s > 0).then(|| SemId(s - 1)),
                out_sem: (s + 1 < stages).then_some(SemId(s)),
                items,
                in_buf: (s > 0).then(|| buffers[(s - 1) as usize]),
                out_buf: (s + 1 < stages).then(|| buffers[s as usize]),
                work: work_per_item,
                scratch: scratches[s as usize],
                slot_words,
            });
            let racy_pairs = scale.apply(self.iter.racy_pairs);
            if racy_pairs > 0 {
                plan.push(Phase::RacyPairs {
                    region: racy,
                    pairs: racy_pairs,
                });
            }
            streams.push(Box::new(PlanStream::new(
                plan,
                Self::worker_seed(seed, s + 1),
            )));
        }
        Program::new(streams, StartMode::ForkExplicit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrace_program::{run_program, NullListener, SchedulerConfig, StatsCollector};

    fn basic_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "test".into(),
            suite: Suite::Kernel,
            workers: 3,
            structure: Structure::ForkJoin {
                iterations: 2,
                barrier_per_iter: true,
            },
            iter: IterProfile {
                private_ops: 100,
                private_read_pct: 60,
                compute_pct: 10,
                shared_reads: 20,
                shared_rw_pairs: 5,
                locked_updates: 5,
                atomic_ops: 3,
                racy_pairs: 0,
            },
            init_shared_words: 50,
            final_merge_words: 20,
            private_bytes: 4096,
            shared_bytes: 4096,
            hot_words: 4,
            lock_count: 4,
        }
    }

    #[test]
    fn fork_join_program_runs_cleanly() {
        let program = basic_spec().program(Scale::SMALL, 1);
        assert_eq!(program.thread_count(), 4);
        let mut c = StatsCollector::new(NullListener);
        let stats = run_program(program, SchedulerConfig::jittered(5), &mut c).unwrap();
        assert_eq!(stats.orphan_threads, 0);
        let counts = c.counts();
        assert_eq!(counts.forks, 3);
        assert_eq!(counts.joins, 3);
        assert_eq!(counts.barriers, 6); // 3 workers × 2 iterations
        assert!(counts.locks >= 1);
        assert_eq!(counts.locks, counts.unlocks);
        assert!(counts.atomics >= 9); // 3 workers × 2 iters × 3
    }

    #[test]
    fn pipeline_program_runs_cleanly() {
        let spec = WorkloadSpec {
            structure: Structure::Pipeline {
                items: 20,
                work_per_item: 10,
                slot_words: 4,
            },
            workers: 4,
            ..basic_spec()
        };
        let program = spec.program(Scale::SMALL, 2);
        let mut c = StatsCollector::new(NullListener);
        let stats = run_program(program, SchedulerConfig::jittered(9), &mut c).unwrap();
        assert_eq!(stats.orphan_threads, 0);
        let counts = c.counts();
        // 3 inter-stage semaphores × 20 items.
        assert_eq!(counts.posts, 60);
        assert_eq!(counts.waits, 60);
    }

    #[test]
    fn scale_changes_op_counts() {
        let spec = basic_spec();
        let count_at = |scale: Scale| {
            let mut c = StatsCollector::new(NullListener);
            run_program(spec.program(scale, 1), SchedulerConfig::default(), &mut c).unwrap();
            c.counts().total()
        };
        assert!(count_at(Scale::TEST) < count_at(Scale::SMALL));
        assert!(count_at(Scale::SMALL) < count_at(Scale::LARGE));
    }

    #[test]
    fn injected_race_variant() {
        let spec = basic_spec().with_injected_race(8);
        assert_eq!(spec.name, "test+race");
        assert_eq!(spec.iter.racy_pairs, 8);
        // The clean spec is untouched.
        assert_eq!(basic_spec().iter.racy_pairs, 0);
        let program = spec.program(Scale::TEST, 3);
        run_program(program, SchedulerConfig::default(), &mut NullListener).unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = basic_spec();
        let trace = |seed: u64| {
            let mut ops = Vec::new();
            run_program(
                spec.program(Scale::TEST, seed),
                SchedulerConfig::default(),
                &mut |e: ddrace_program::Event<'_>| {
                    if let ddrace_program::Event::Op { tid, op } = e {
                        ops.push((tid, op));
                    }
                },
            )
            .unwrap();
            ops
        };
        assert_eq!(trace(7), trace(7));
        assert_ne!(trace(7), trace(8));
    }

    #[test]
    fn total_threads_accounts_for_main() {
        assert_eq!(basic_spec().total_threads(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let spec = WorkloadSpec {
            workers: 0,
            ..basic_spec()
        };
        let _ = spec.program(Scale::TEST, 0);
    }

    #[test]
    fn single_worker_fork_join_skips_barriers() {
        let spec = WorkloadSpec {
            workers: 1,
            ..basic_spec()
        };
        let program = spec.program(Scale::TEST, 0);
        let mut c = StatsCollector::new(NullListener);
        run_program(program, SchedulerConfig::default(), &mut c).unwrap();
        assert_eq!(c.counts().barriers, 0);
    }
}

ddrace_json::json_unit_enum!(Suite {
    Phoenix,
    Parsec,
    Kernel
});
ddrace_json::json_struct!(IterProfile {
    private_ops,
    private_read_pct,
    compute_pct,
    shared_reads,
    shared_rw_pairs,
    locked_updates,
    atomic_ops,
    racy_pairs
});
ddrace_json::json_enum!(Structure {
    ForkJoin { iterations, barrier_per_iter },
    Pipeline { items, work_per_item, slot_words },
    DelayedSharing { words, delay_bytes, rounds }
});
ddrace_json::json_struct!(WorkloadSpec {
    name,
    suite,
    workers,
    structure,
    iter,
    init_shared_words,
    final_merge_words,
    private_bytes,
    shared_bytes,
    hot_words,
    lock_count
});
