//! Hand-written racy kernels for detection-accuracy experiments.
//!
//! Each kernel plants a specific, well-understood race pattern. The
//! accuracy experiments (T2) run them under continuous, demand-HITM, and
//! demand-oracle analysis and compare what each configuration catches.

use crate::spec::{IterProfile, Structure, Suite, WorkloadSpec};
use ddrace_program::{Program, ProgramBuilder, ThreadId};

fn kernel(name: &str, iter: IterProfile, workers: u32) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_string(),
        suite: Suite::Kernel,
        workers,
        structure: Structure::ForkJoin {
            iterations: 1,
            barrier_per_iter: false,
        },
        iter,
        init_shared_words: 32,
        final_merge_words: 32,
        private_bytes: 16 * 1024,
        shared_bytes: 16 * 1024,
        hot_words: 8,
        lock_count: 4,
    }
}

/// `unprotected_counter`: every thread increments shared counters with
/// plain read+write pairs — a dense, always-active race.
pub fn unprotected_counter() -> WorkloadSpec {
    kernel(
        "unprotected_counter",
        IterProfile {
            private_ops: 20_000,
            private_read_pct: 70,
            compute_pct: 10,
            shared_reads: 0,
            shared_rw_pairs: 0,
            locked_updates: 0,
            atomic_ops: 0,
            racy_pairs: 2_000,
        },
        4,
    )
}

/// `sparse_race`: a long, mostly-private run with a tiny number of racy
/// accesses — the hardest case for a demand-driven tool, because the
/// indicator must catch a rare event.
pub fn sparse_race() -> WorkloadSpec {
    kernel(
        "sparse_race",
        IterProfile {
            private_ops: 150_000,
            private_read_pct: 75,
            compute_pct: 15,
            shared_reads: 0,
            shared_rw_pairs: 0,
            locked_updates: 0,
            atomic_ops: 0,
            racy_pairs: 25,
        },
        4,
    )
}

/// `mostly_locked`: updates are lock-protected except for a sliver of
/// unprotected ones mixed in — the classic "forgot the lock on one path"
/// bug.
pub fn mostly_locked() -> WorkloadSpec {
    kernel(
        "mostly_locked",
        IterProfile {
            private_ops: 50_000,
            private_read_pct: 70,
            compute_pct: 10,
            shared_reads: 1_000,
            shared_rw_pairs: 0,
            locked_updates: 3_000,
            atomic_ops: 0,
            racy_pairs: 100,
        },
        4,
    )
}

/// `shared_and_racy`: heavy legitimate sharing *plus* races — checks
/// that real sharing does not drown the racy signal.
pub fn shared_and_racy() -> WorkloadSpec {
    kernel(
        "shared_and_racy",
        IterProfile {
            private_ops: 40_000,
            private_read_pct: 70,
            compute_pct: 10,
            shared_reads: 4_000,
            shared_rw_pairs: 1_500,
            locked_updates: 500,
            atomic_ops: 300,
            racy_pairs: 200,
        },
        4,
    )
}

/// All racy kernels.
pub fn kernels() -> Vec<WorkloadSpec> {
    vec![
        unprotected_counter(),
        sparse_race(),
        mostly_locked(),
        shared_and_racy(),
    ]
}

/// The textbook unsafe-publication bug as an explicit program: the
/// producer writes `data` then raises a plain-write `flag`; the consumer
/// polls `flag` (reads) and then reads `data`. Both the flag and the data
/// accesses race.
///
/// Returns the program; the data word is at a fixed offset so tests can
/// identify the reports.
pub fn racy_publication(poll_iters: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let shared = b.alloc_shared(128);
    let data = shared.base();
    let flag = shared.base().offset(64); // separate cache line
    let consumer = b.add_thread();
    b.on(ThreadId::MAIN)
        .fork(consumer)
        .write(data)
        .write(flag)
        .join(consumer);
    let mut c = b.on(consumer);
    for _ in 0..poll_iters {
        c = c.read(flag).compute(3);
    }
    c.read(data);
    b.build()
}

/// A correctly synchronized variant of [`racy_publication`] using a
/// semaphore: the negative control — no detector should report anything.
pub fn safe_publication() -> Program {
    let mut b = ProgramBuilder::new();
    let shared = b.alloc_shared(128);
    let data = shared.base();
    let ready = b.new_sem();
    let consumer = b.add_thread();
    b.on(ThreadId::MAIN)
        .fork(consumer)
        .write(data)
        .post(ready)
        .join(consumer);
    b.on(consumer).wait_sem(ready).read(data);
    b.build()
}

/// Delayed-consumption race: in each round, a producer writes `words`
/// shared words with no synchronization, streams through `delay_bytes` of
/// private data (evicting its modified lines), and only then does the
/// consumer read the shared words. Every word is racy in every round, but
/// by read time most producer lines have been written back — the HITM
/// indicator's worst case, used by experiment A3.
///
/// The pattern repeats for `rounds` rounds because a demand-driven tool
/// can only ever catch a race whose *writes* fall inside an enabled
/// window: round k's reads may wake the tool, and round k+1 is then fully
/// observed. A single round is undetectable by construction — that, too,
/// is the paper's behaviour.
pub fn delayed_sharing(words: u64, delay_bytes: u64, rounds: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let shared = b.alloc_shared(words * 8);
    let producer = b.add_thread();
    let consumer = b.add_thread();
    let stream = b.alloc_private(producer, delay_bytes.max(64));
    let warmup = b.alloc_private(consumer, delay_bytes.max(64));
    b.on(ThreadId::MAIN)
        .fork(producer)
        .fork(consumer)
        .join(producer)
        .join(consumer);

    let mut p = b.on(producer);
    for _ in 0..rounds.max(1) {
        for i in 0..words {
            p = p.write(shared.word(i));
        }
        // Stream enough private writes to push the shared lines out of
        // the producer's caches.
        for i in 0..delay_bytes / 8 {
            p = p.write(stream.word(i));
        }
    }
    let _ = p;
    let mut c = b.on(consumer);
    for _ in 0..rounds.max(1) {
        // The consumer busies itself long enough that its reads land
        // after the producer's eviction storm (the schedule is fair
        // round-robin).
        for i in 0..(2 * delay_bytes) / 8 + 2 * words {
            c = c.read(warmup.word(i));
        }
        for i in 0..words {
            c = c.read(shared.word(i));
        }
    }
    let _ = c;
    b.build()
}

/// Small deterministic probe programs whose racy/clean status is known
/// by construction: `(name, program, races_expected)`. Conformance tests
/// run every probe through the full detector stack and check that the
/// verdict matches the construction — a fixed-point complement to the
/// random specs the fuzzer generates.
pub fn conformance_probes() -> Vec<(&'static str, Program, bool)> {
    // A lock-protected counter: both threads update the same word, but
    // always under the lock — sharing without a race.
    let locked_counter = {
        let mut b = ProgramBuilder::new();
        let shared = b.alloc_shared(64);
        let x = shared.base();
        let l = b.new_lock();
        let worker = b.add_thread();
        b.on(ThreadId::MAIN)
            .fork(worker)
            .lock(l)
            .read(x)
            .write(x)
            .unlock(l)
            .join(worker);
        b.on(worker).lock(l).read(x).write(x).unlock(l);
        b.build()
    };
    // Barrier-phased halves: each thread writes its own half, the barrier
    // orders the swap, then each reads the other's half — clean.
    let barrier_swap = {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let shared = b.alloc_shared(128);
        let bar = b.new_barrier();
        let t1 = b.add_thread();
        b.on(ThreadId::MAIN)
            .write(shared.word(0))
            .barrier(bar, 2)
            .read(shared.word(8));
        b.on(t1)
            .write(shared.word(8))
            .barrier(bar, 2)
            .read(shared.word(0));
        b.build()
    };
    vec![
        ("racy_publication", racy_publication(6), true),
        ("safe_publication", safe_publication(), false),
        ("delayed_sharing", delayed_sharing(8, 256, 2), true),
        ("locked_counter", locked_counter, false),
        ("barrier_swap", barrier_swap, false),
    ]
}

/// [`delayed_sharing`] wrapped in a [`WorkloadSpec`] so the campaign
/// harness can sweep it across the mode/variant/seed axes. `rounds` is
/// the `Scale::SMALL` round count; other scales multiply it, floored at
/// 2 (a single round is undetectable by construction).
pub fn delayed_sharing_spec(words: u64, delay_bytes: u64, rounds: u32) -> WorkloadSpec {
    WorkloadSpec {
        name: "delayed_sharing".to_string(),
        suite: Suite::Kernel,
        workers: 2,
        structure: Structure::DelayedSharing {
            words,
            delay_bytes,
            rounds,
        },
        iter: IterProfile::private_only(0),
        init_shared_words: 0,
        final_merge_words: 0,
        private_bytes: delay_bytes.max(64),
        shared_bytes: words * 8,
        hot_words: 0,
        lock_count: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use ddrace_program::{run_program, NullListener, SchedulerConfig};

    #[test]
    fn kernels_are_distinct_and_racy() {
        let ks = kernels();
        assert_eq!(ks.len(), 4);
        for k in &ks {
            assert!(k.iter.racy_pairs > 0, "{} must plant races", k.name);
            assert_eq!(k.suite, Suite::Kernel);
        }
    }

    #[test]
    fn kernels_run_cleanly() {
        for k in kernels() {
            run_program(
                k.program(Scale::TEST, 3),
                SchedulerConfig::jittered(4),
                &mut NullListener,
            )
            .unwrap_or_else(|e| panic!("{} failed: {e}", k.name));
        }
    }

    #[test]
    fn delayed_sharing_runs_and_counts() {
        let program = delayed_sharing(64, 4096, 1);
        let mut c = ddrace_program::StatsCollector::new(NullListener);
        run_program(program, SchedulerConfig::default(), &mut c).unwrap();
        // 64 shared writes + 512 stream writes by the producer.
        assert_eq!(c.counts().writes, 64 + 512);
        assert!(c.counts().reads >= 64);
    }

    #[test]
    fn delayed_sharing_spec_matches_direct_program() {
        // At SMALL (identity scale) the spec lowers to the same op stream
        // as calling delayed_sharing directly — the equivalence the A3
        // campaign port relies on.
        let trace = |program: ddrace_program::Program| {
            let mut ops = Vec::new();
            run_program(
                program,
                SchedulerConfig::default(),
                &mut |e: ddrace_program::Event<'_>| {
                    if let ddrace_program::Event::Op { tid, op } = e {
                        ops.push((tid, op));
                    }
                },
            )
            .unwrap();
            ops
        };
        let spec = delayed_sharing_spec(64, 4096, 3);
        assert_eq!(spec.total_threads(), 3);
        assert_eq!(
            trace(spec.program(Scale::SMALL, 1)),
            trace(delayed_sharing(64, 4096, 3))
        );
        // TEST scale shrinks rounds but never below the 2-round floor.
        assert_eq!(
            trace(spec.program(Scale::TEST, 1)),
            trace(delayed_sharing(64, 4096, 2))
        );
    }

    #[test]
    fn conformance_probes_run_and_have_distinct_names() {
        let probes = conformance_probes();
        let names: std::collections::HashSet<&str> = probes.iter().map(|p| p.0).collect();
        assert_eq!(names.len(), probes.len());
        for (name, program, _) in probes {
            run_program(program, SchedulerConfig::default(), &mut NullListener)
                .unwrap_or_else(|e| panic!("probe {name} failed: {e}"));
        }
    }

    #[test]
    fn publication_programs_run() {
        run_program(
            racy_publication(10),
            SchedulerConfig::default(),
            &mut NullListener,
        )
        .unwrap();
        run_program(
            safe_publication(),
            SchedulerConfig::default(),
            &mut NullListener,
        )
        .unwrap();
    }

    #[test]
    fn sparse_race_is_sparsest() {
        let sparse = sparse_race();
        for k in kernels() {
            if k.name != "sparse_race" {
                assert!(k.iter.racy_pairs > sparse.iter.racy_pairs);
            }
        }
    }
}
