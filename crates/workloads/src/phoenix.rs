//! Phoenix-like workloads.
//!
//! Phoenix (Ranger et al., HPCA 2007) is a shared-memory map-reduce suite;
//! its programs scan large inputs with thread-private intermediate state
//! and communicate only during small merge phases. The paper's
//! demand-driven detector shines here — almost no inter-thread sharing
//! means analysis stays off almost always (the abstract's 10× suite mean,
//! and 51× for the most communication-free program, which our
//! reconstruction maps to `linear_regression`).
//!
//! Input scans read a shared region that is *never written* in-program
//! (real Phoenix mmaps input files, so no thread "wrote" those pages) —
//! read-only sharing produces no HITM traffic and no detector work.

use crate::spec::{IterProfile, Structure, Suite, WorkloadSpec};

/// Default worker count for the suite.
pub const PHOENIX_WORKERS: u32 = 8;

fn base(name: &str, iter: IterProfile) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_string(),
        suite: Suite::Phoenix,
        workers: PHOENIX_WORKERS,
        structure: Structure::ForkJoin {
            iterations: 1,
            barrier_per_iter: false,
        },
        iter,
        init_shared_words: 64,
        final_merge_words: 128,
        // L1-resident private working sets: the scan loop runs at cache
        // speed natively, which is exactly when instrumentation overhead
        // is at its worst (the 30-60x continuous slowdowns Phoenix shows).
        private_bytes: 16 * 1024,
        shared_bytes: 64 * 1024,
        hot_words: 8,
        lock_count: 8,
    }
}

/// `histogram`: bucket counts over a pixel scan; per-thread local
/// histograms merged under locks at the end.
pub fn histogram() -> WorkloadSpec {
    let mut spec = base(
        "histogram",
        IterProfile {
            private_ops: 400_000,
            private_read_pct: 85,
            compute_pct: 5,
            shared_reads: 5_000,
            shared_rw_pairs: 0,
            locked_updates: 1_200,
            atomic_ops: 0,
            racy_pairs: 0,
        },
    );
    spec.init_shared_words = 128;
    spec.final_merge_words = 256;
    spec
}

/// `kmeans`: iterative clustering; every iteration ends with a barrier
/// and a locked centroid update all threads read next iteration.
pub fn kmeans() -> WorkloadSpec {
    let mut spec = base(
        "kmeans",
        IterProfile {
            private_ops: 40_000,
            private_read_pct: 75,
            compute_pct: 15,
            shared_reads: 4_000,
            shared_rw_pairs: 30,
            locked_updates: 60,
            atomic_ops: 0,
            racy_pairs: 0,
        },
    );
    spec.structure = Structure::ForkJoin {
        iterations: 8,
        barrier_per_iter: true,
    };
    spec.init_shared_words = 256;
    spec.hot_words = 16;
    spec.lock_count = 16;
    spec
}

/// `linear_regression`: a pure streaming scan with per-thread
/// accumulators and a minuscule final reduction — the suite's
/// near-zero-sharing extreme (the paper's 51× program in our mapping).
pub fn linear_regression() -> WorkloadSpec {
    let mut spec = base(
        "linear_regression",
        IterProfile {
            private_ops: 700_000,
            private_read_pct: 90,
            compute_pct: 5,
            shared_reads: 1_000,
            shared_rw_pairs: 0,
            locked_updates: 8,
            atomic_ops: 0,
            racy_pairs: 0,
        },
    );
    // Real linear_regression mmaps its input: no thread writes it, so
    // there is no first-touch W→R burst at startup.
    spec.init_shared_words = 0;
    spec.final_merge_words = 16;
    spec.lock_count = 1;
    spec
}

/// `matrix_multiply`: workers read main-initialized input matrices
/// (one-time W→R sharing spread over the run) and write private output
/// blocks.
pub fn matrix_multiply() -> WorkloadSpec {
    let mut spec = base(
        "matrix_multiply",
        IterProfile {
            private_ops: 350_000,
            private_read_pct: 80,
            compute_pct: 15,
            shared_reads: 30_000,
            shared_rw_pairs: 0,
            locked_updates: 0,
            atomic_ops: 0,
            racy_pairs: 0,
        },
    );
    spec.init_shared_words = 2_048;
    spec.final_merge_words = 512;
    spec.shared_bytes = 128 * 1024;
    spec
}

/// `pca`: two passes (means, covariance) with locked accumulator merges.
pub fn pca() -> WorkloadSpec {
    let mut spec = base(
        "pca",
        IterProfile {
            private_ops: 180_000,
            private_read_pct: 80,
            compute_pct: 12,
            shared_reads: 8_000,
            shared_rw_pairs: 0,
            locked_updates: 800,
            atomic_ops: 0,
            racy_pairs: 0,
        },
    );
    spec.structure = Structure::ForkJoin {
        iterations: 2,
        barrier_per_iter: true,
    };
    spec.init_shared_words = 256;
    spec.final_merge_words = 256;
    spec.lock_count = 16;
    spec
}

/// `reverse_index`: builds a shared link index under per-bucket locks —
/// the most lock-intensive Phoenix program.
pub fn reverse_index() -> WorkloadSpec {
    let mut spec = base(
        "reverse_index",
        IterProfile {
            private_ops: 200_000,
            private_read_pct: 80,
            compute_pct: 10,
            shared_reads: 4_000,
            shared_rw_pairs: 0,
            locked_updates: 2_000,
            atomic_ops: 0,
            racy_pairs: 0,
        },
    );
    spec.init_shared_words = 128;
    spec.final_merge_words = 512;
    spec.lock_count = 64;
    spec.shared_bytes = 256 * 1024;
    spec
}

/// `string_match`: scan for key matches; essentially no communication.
pub fn string_match() -> WorkloadSpec {
    let mut spec = base(
        "string_match",
        IterProfile {
            private_ops: 450_000,
            private_read_pct: 88,
            compute_pct: 8,
            shared_reads: 500,
            shared_rw_pairs: 0,
            locked_updates: 16,
            atomic_ops: 0,
            racy_pairs: 0,
        },
    );
    spec.init_shared_words = 32;
    spec.final_merge_words = 32;
    spec
}

/// `word_count`: scan plus per-thread counts merged under bucket locks.
pub fn word_count() -> WorkloadSpec {
    let mut spec = base(
        "word_count",
        IterProfile {
            private_ops: 300_000,
            private_read_pct: 82,
            compute_pct: 8,
            shared_reads: 3_000,
            shared_rw_pairs: 0,
            locked_updates: 2_500,
            atomic_ops: 0,
            racy_pairs: 0,
        },
    );
    spec.init_shared_words = 64;
    spec.final_merge_words = 1_024;
    spec.lock_count = 32;
    spec.shared_bytes = 128 * 1024;
    spec
}

/// The full Phoenix-like suite, in canonical order.
pub fn suite() -> Vec<WorkloadSpec> {
    vec![
        histogram(),
        kmeans(),
        linear_regression(),
        matrix_multiply(),
        pca(),
        reverse_index(),
        string_match(),
        word_count(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use ddrace_program::{run_program, NullListener, SchedulerConfig};

    #[test]
    fn suite_has_eight_distinct_benchmarks() {
        let s = suite();
        assert_eq!(s.len(), 8);
        let names: std::collections::HashSet<&str> = s.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names.len(), 8);
        for w in &s {
            assert_eq!(w.suite, Suite::Phoenix);
            assert_eq!(w.iter.racy_pairs, 0, "{} must be race-clean", w.name);
        }
    }

    #[test]
    fn every_benchmark_runs_cleanly_at_test_scale() {
        for spec in suite() {
            let program = spec.program(Scale::TEST, 42);
            let stats = run_program(program, SchedulerConfig::jittered(1), &mut NullListener)
                .unwrap_or_else(|e| panic!("{} failed: {e}", spec.name));
            assert!(stats.ops_executed > 0, "{} executed nothing", spec.name);
            assert_eq!(stats.orphan_threads, 0);
        }
    }

    #[test]
    fn linear_regression_is_the_low_sharing_extreme() {
        // Communication per benchmark ≈ explicit sharing ops plus the
        // main-initialized data workers will consume (per 8-word line).
        let comm = |w: &WorkloadSpec| {
            let iters = match w.structure {
                Structure::ForkJoin { iterations, .. } => u64::from(iterations),
                Structure::Pipeline { .. } | Structure::DelayedSharing { .. } => 1,
            };
            (w.iter.shared_rw_pairs + w.iter.locked_updates + w.iter.atomic_ops) * iters
                + w.init_shared_words / 8
        };
        let lr = linear_regression();
        for other in suite() {
            if other.name == "linear_regression" {
                continue;
            }
            assert!(
                comm(&lr) < comm(&other),
                "linear_regression must share least (vs {})",
                other.name
            );
        }
    }
}
