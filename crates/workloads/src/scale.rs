//! Workload size presets.

/// Scales the operation counts of every workload, like PARSEC's
/// `simsmall`/`simlarge` input sets.
///
/// # Examples
///
/// ```
/// use ddrace_workloads::Scale;
/// assert!(Scale::TEST.apply(1_000) < Scale::SMALL.apply(1_000));
/// assert_eq!(Scale::TEST.apply(0), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scale {
    /// Numerator of the scaling ratio applied to base op counts.
    pub num: u64,
    /// Denominator of the scaling ratio.
    pub den: u64,
}

impl Scale {
    /// Minimal size for unit tests: runs in milliseconds.
    pub const TEST: Scale = Scale { num: 1, den: 10 };
    /// Default experiment size: seconds per run.
    pub const SMALL: Scale = Scale { num: 1, den: 1 };
    /// Large size for headline numbers: tens of seconds per suite.
    pub const LARGE: Scale = Scale { num: 8, den: 1 };

    /// Applies the scale to a base count, keeping at least 1 for nonzero
    /// bases (a scaled-down phase never disappears entirely).
    pub fn apply(&self, base: u64) -> u64 {
        if base == 0 {
            return 0;
        }
        (base * self.num / self.den).max(1)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::SMALL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        let base = 10_000;
        assert!(Scale::TEST.apply(base) < Scale::SMALL.apply(base));
        assert!(Scale::SMALL.apply(base) < Scale::LARGE.apply(base));
    }

    #[test]
    fn nonzero_floors_at_one() {
        assert_eq!(Scale::TEST.apply(3), 1);
        assert_eq!(Scale::TEST.apply(0), 0);
    }

    #[test]
    fn default_is_small() {
        assert_eq!(Scale::default(), Scale::SMALL);
    }
}

ddrace_json::json_struct!(Scale { num, den });
