//! Phase-based lazy op-stream generation.
//!
//! A thread's behaviour is described as a small *plan* — a sequence of
//! [`Phase`]s — and [`PlanStream`] lowers the plan to operations on
//! demand, so arbitrarily large workloads stream in O(1) memory. All
//! randomness comes from a per-stream seeded RNG: the same plan and seed
//! always produce the same op sequence.

use ddrace_program::{BarrierId, LockId, Op, OpStream, Prng, Region, SemId, ThreadId};
use std::collections::VecDeque;

/// One behavioural phase of a thread's plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Phase {
    /// Thread-private work: a random mix of reads, writes and small
    /// computes over a private region. The bread and butter of every
    /// benchmark; produces no sharing.
    PrivateMix {
        /// The thread's private region.
        region: Region,
        /// Number of operations.
        ops: u64,
        /// Percent of memory ops that are reads (vs writes).
        read_pct: u8,
        /// Percent of all ops that are pure compute.
        compute_pct: u8,
    },
    /// Random-word reads of a shared (read-mostly) region.
    SharedReads {
        /// The shared region.
        region: Region,
        /// Number of reads.
        ops: u64,
    },
    /// Read-then-write updates of a small set of hot shared words, each
    /// inside a per-word micro critical section: the write→read
    /// communication pattern the HITM indicator sees. Both the lock word
    /// and the data word ping-pong between cores.
    SharedRw {
        /// The shared region.
        region: Region,
        /// Number of updates (each is lock, read, write, unlock).
        pairs: u64,
        /// How many leading words of the region are hot.
        hot_words: u64,
        /// First lock id of the per-hot-word lock array (must not collide
        /// with other lock ranges of the program).
        lock_base: u32,
    },
    /// Lock-protected read-modify-write updates of shared accumulators,
    /// with the lock chosen by address bucket.
    LockedUpdates {
        /// First lock id of the bucket array.
        lock_base: u32,
        /// Number of locks (buckets).
        lock_count: u32,
        /// The protected shared region.
        region: Region,
        /// Number of updates (each is lock, read, write, unlock).
        updates: u64,
    },
    /// Atomic RMWs on the leading words of a shared region (shared
    /// counters / CAS loops).
    AtomicOps {
        /// The shared region.
        region: Region,
        /// Number of atomics.
        ops: u64,
        /// How many leading words are targeted.
        hot_words: u64,
    },
    /// **Unprotected** read+write pairs on a shared region: the injected
    /// data race.
    RacyPairs {
        /// The racy shared region.
        region: Region,
        /// Number of pairs.
        pairs: u64,
    },
    /// Sequential writes of a region (initialization / output).
    WriteSeq {
        /// The region.
        region: Region,
        /// Number of writes (word-strided).
        ops: u64,
    },
    /// Sequential reads of a region (input scan / final merge).
    ReadSeq {
        /// The region.
        region: Region,
        /// Number of reads (word-strided).
        ops: u64,
    },
    /// One barrier arrival.
    Barrier {
        /// The barrier.
        id: BarrierId,
        /// Its participant count.
        participants: u32,
    },
    /// Fork a thread.
    Fork(ThreadId),
    /// Join a thread.
    Join(ThreadId),
    /// Post a semaphore `n` times.
    Post {
        /// The semaphore.
        sem: SemId,
        /// Number of posts.
        n: u64,
    },
    /// Wait on a semaphore `n` times.
    Wait {
        /// The semaphore.
        sem: SemId,
        /// Number of waits.
        n: u64,
    },
    /// One pipeline stage: per item, wait on the input semaphore, read
    /// the input buffer slot, do private work, write the output buffer
    /// slot, post the output semaphore. Omitted semaphores/buffers make
    /// this a source (first stage) or sink (last stage).
    PipelineStage {
        /// Semaphore guarding item arrival (None for the source stage).
        in_sem: Option<SemId>,
        /// Semaphore signalling the next stage (None for the sink stage).
        out_sem: Option<SemId>,
        /// Items to process.
        items: u64,
        /// Buffer read per item (producer-written: real W→R sharing).
        in_buf: Option<Region>,
        /// Buffer written per item.
        out_buf: Option<Region>,
        /// Private work ops per item.
        work: u64,
        /// Private scratch region for the work.
        scratch: Region,
        /// Words read/written per buffer slot.
        slot_words: u64,
    },
    /// Pure computation.
    Compute {
        /// Cycles per op.
        cycles: u32,
        /// Number of ops.
        ops: u64,
    },
}

impl Phase {
    /// Number of generation units in the phase (each unit may expand to
    /// several ops).
    fn units(&self) -> u64 {
        match *self {
            Phase::PrivateMix { ops, .. } => ops,
            Phase::SharedReads { ops, .. } => ops,
            Phase::SharedRw { pairs, .. } => pairs,
            Phase::LockedUpdates { updates, .. } => updates,
            Phase::AtomicOps { ops, .. } => ops,
            Phase::RacyPairs { pairs, .. } => pairs,
            Phase::WriteSeq { ops, .. } => ops,
            Phase::ReadSeq { ops, .. } => ops,
            Phase::Barrier { .. } | Phase::Fork(_) | Phase::Join(_) => 1,
            Phase::Post { n, .. } | Phase::Wait { n, .. } => n,
            Phase::PipelineStage { items, .. } => items,
            Phase::Compute { ops, .. } => ops,
        }
    }
}

/// Lazily lowers a plan (a `Vec<Phase>`) to an [`OpStream`].
///
/// # Examples
///
/// ```
/// use ddrace_workloads::{Phase, PlanStream};
/// use ddrace_program::{AddressSpace, Op, OpStream};
///
/// let mut space = AddressSpace::new();
/// let r = space.alloc_region(256);
/// let mut s = PlanStream::new(vec![Phase::WriteSeq { region: r, ops: 2 }], 42);
/// assert!(matches!(s.next_op(), Some(Op::Write { .. })));
/// assert!(matches!(s.next_op(), Some(Op::Write { .. })));
/// assert_eq!(s.next_op(), None);
/// ```
#[derive(Debug)]
pub struct PlanStream {
    phases: Vec<Phase>,
    phase_idx: usize,
    emitted_in_phase: u64,
    buffer: VecDeque<Op>,
    rng: Prng,
}

impl PlanStream {
    /// Creates a stream for `phases` with deterministic randomness from
    /// `seed`.
    pub fn new(phases: Vec<Phase>, seed: u64) -> Self {
        PlanStream {
            phases,
            phase_idx: 0,
            emitted_in_phase: 0,
            buffer: VecDeque::new(),
            rng: Prng::seed_from_u64(seed),
        }
    }

    /// Total operations this plan will produce (used in tests and docs;
    /// streaming does not need it).
    pub fn total_ops(phases: &[Phase]) -> u64 {
        phases
            .iter()
            .map(|p| p.units() * Self::ops_per_unit(p))
            .sum()
    }

    fn ops_per_unit(phase: &Phase) -> u64 {
        match *phase {
            Phase::RacyPairs { .. } => 2,
            Phase::SharedRw { .. } => 4,
            Phase::LockedUpdates { .. } => 4,
            Phase::PipelineStage {
                in_sem,
                out_sem,
                in_buf,
                out_buf,
                work,
                slot_words,
                ..
            } => {
                u64::from(in_sem.is_some())
                    + u64::from(out_sem.is_some())
                    + if in_buf.is_some() { slot_words } else { 0 }
                    + if out_buf.is_some() { slot_words } else { 0 }
                    + work
            }
            _ => 1,
        }
    }

    /// Expands one unit of `phase` into the buffer. `unit` is the index
    /// of the unit within the phase.
    fn expand(&mut self, phase: Phase, unit: u64) {
        match phase {
            Phase::PrivateMix {
                region,
                read_pct,
                compute_pct,
                ..
            } => {
                let roll: u8 = self.rng.percent();
                if roll < compute_pct {
                    self.buffer.push_back(Op::Compute {
                        cycles: self.rng.range_u32(1, 7),
                    });
                } else {
                    let addr = region.word(self.rng.next_u64());
                    if self.rng.percent() < read_pct {
                        self.buffer.push_back(Op::Read { addr });
                    } else {
                        self.buffer.push_back(Op::Write { addr });
                    }
                }
            }
            Phase::SharedReads { region, .. } => {
                let addr = region.word(self.rng.next_u64());
                self.buffer.push_back(Op::Read { addr });
            }
            Phase::SharedRw {
                region,
                hot_words,
                lock_base,
                ..
            } => {
                // Hot update under a per-word micro critical section:
                // race-free by mutual exclusion, yet HITM-rich — the lock
                // word (an atomic in the cache model) and the data word
                // both migrate core-to-core.
                let hot = hot_words.max(1);
                let w = self.rng.below(hot);
                let lock = LockId(lock_base + w as u32);
                let data = region.word(w);
                self.buffer.push_back(Op::Lock { lock });
                self.buffer.push_back(Op::Read { addr: data });
                self.buffer.push_back(Op::Write { addr: data });
                self.buffer.push_back(Op::Unlock { lock });
            }
            Phase::LockedUpdates {
                lock_base,
                lock_count,
                region,
                ..
            } => {
                // The protecting lock is a pure function of the *word
                // index* (not the raw roll), so one address is always
                // guarded by the same lock.
                let words = (region.len() / 8).max(1);
                let word_idx = self.rng.next_u64() % words;
                let addr = region.word(word_idx);
                let lock = LockId(lock_base + (word_idx % u64::from(lock_count.max(1))) as u32);
                self.buffer.push_back(Op::Lock { lock });
                self.buffer.push_back(Op::Read { addr });
                self.buffer.push_back(Op::Write { addr });
                self.buffer.push_back(Op::Unlock { lock });
            }
            Phase::AtomicOps {
                region, hot_words, ..
            } => {
                let addr = region.word(self.rng.below(hot_words.max(1)));
                self.buffer.push_back(Op::AtomicRmw { addr });
            }
            Phase::RacyPairs { region, .. } => {
                // Deterministic round-robin over a handful of words, so
                // any two threads with at least one pair each are
                // guaranteed to collide on word 0 — planted races must be
                // present regardless of scale or seed.
                let words = (region.len() / 8).clamp(1, 8);
                let addr = region.word(unit % words);
                self.buffer.push_back(Op::Read { addr });
                self.buffer.push_back(Op::Write { addr });
            }
            Phase::WriteSeq { region, .. } => {
                self.buffer.push_back(Op::Write {
                    addr: region.word(unit),
                });
            }
            Phase::ReadSeq { region, .. } => {
                self.buffer.push_back(Op::Read {
                    addr: region.word(unit),
                });
            }
            Phase::Barrier { id, participants } => {
                self.buffer.push_back(Op::Barrier {
                    barrier: id,
                    participants,
                });
            }
            Phase::Fork(child) => self.buffer.push_back(Op::Fork { child }),
            Phase::Join(child) => self.buffer.push_back(Op::Join { child }),
            Phase::Post { sem, .. } => self.buffer.push_back(Op::Post { sem }),
            Phase::Wait { sem, .. } => self.buffer.push_back(Op::WaitSem { sem }),
            Phase::PipelineStage {
                in_sem,
                out_sem,
                in_buf,
                out_buf,
                work,
                scratch,
                slot_words,
                ..
            } => {
                if let Some(sem) = in_sem {
                    self.buffer.push_back(Op::WaitSem { sem });
                }
                if let Some(buf) = in_buf {
                    for w in 0..slot_words {
                        self.buffer.push_back(Op::Read {
                            addr: buf.word(unit * slot_words + w),
                        });
                    }
                }
                for _ in 0..work {
                    let addr = scratch.word(self.rng.next_u64());
                    if self.rng.chance(3, 5) {
                        self.buffer.push_back(Op::Read { addr });
                    } else {
                        self.buffer.push_back(Op::Write { addr });
                    }
                }
                if let Some(buf) = out_buf {
                    for w in 0..slot_words {
                        self.buffer.push_back(Op::Write {
                            addr: buf.word(unit * slot_words + w),
                        });
                    }
                }
                if let Some(sem) = out_sem {
                    self.buffer.push_back(Op::Post { sem });
                }
            }
            Phase::Compute { cycles, .. } => {
                self.buffer.push_back(Op::Compute { cycles });
            }
        }
    }
}

impl OpStream for PlanStream {
    fn next_op(&mut self) -> Option<Op> {
        loop {
            if let Some(op) = self.buffer.pop_front() {
                return Some(op);
            }
            let phase = self.phases.get(self.phase_idx)?.clone();
            if self.emitted_in_phase >= phase.units() {
                self.phase_idx += 1;
                self.emitted_in_phase = 0;
                continue;
            }
            let unit = self.emitted_in_phase;
            self.emitted_in_phase += 1;
            self.expand(phase, unit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrace_program::AddressSpace;

    fn drain(mut s: PlanStream) -> Vec<Op> {
        let mut v = Vec::new();
        while let Some(op) = s.next_op() {
            v.push(op);
        }
        v
    }

    fn region(len: u64) -> Region {
        AddressSpace::new().alloc_region(len)
    }

    #[test]
    fn write_seq_is_sequential_words() {
        let r = region(256);
        let ops = drain(PlanStream::new(
            vec![Phase::WriteSeq { region: r, ops: 3 }],
            0,
        ));
        assert_eq!(
            ops,
            vec![
                Op::Write { addr: r.word(0) },
                Op::Write { addr: r.word(1) },
                Op::Write { addr: r.word(2) },
            ]
        );
    }

    #[test]
    fn phases_run_in_order() {
        let r = region(256);
        let ops = drain(PlanStream::new(
            vec![
                Phase::WriteSeq { region: r, ops: 1 },
                Phase::Barrier {
                    id: BarrierId(0),
                    participants: 2,
                },
                Phase::ReadSeq { region: r, ops: 1 },
            ],
            0,
        ));
        assert_eq!(ops.len(), 3);
        assert!(matches!(ops[0], Op::Write { .. }));
        assert!(matches!(ops[1], Op::Barrier { .. }));
        assert!(matches!(ops[2], Op::Read { .. }));
    }

    #[test]
    fn locked_updates_are_balanced() {
        let r = region(1024);
        let ops = drain(PlanStream::new(
            vec![Phase::LockedUpdates {
                lock_base: 4,
                lock_count: 3,
                region: r,
                updates: 10,
            }],
            7,
        ));
        assert_eq!(ops.len(), 40);
        let mut held: Option<LockId> = None;
        for op in &ops {
            match *op {
                Op::Lock { lock } => {
                    assert!(held.is_none());
                    assert!((4..7).contains(&lock.0));
                    held = Some(lock);
                }
                Op::Unlock { lock } => {
                    assert_eq!(held.take(), Some(lock));
                }
                Op::Read { addr } | Op::Write { addr } => {
                    assert!(held.is_some());
                    assert!(r.contains(addr));
                }
                other => panic!("unexpected {other}"),
            }
        }
        assert!(held.is_none());
    }

    #[test]
    fn shared_rw_is_guarded_hot_update() {
        let r = region(4096);
        let ops = drain(PlanStream::new(
            vec![Phase::SharedRw {
                region: r,
                pairs: 20,
                hot_words: 4,
                lock_base: 100,
            }],
            3,
        ));
        assert_eq!(ops.len(), 80);
        for unit in ops.chunks(4) {
            let (
                Op::Lock { lock: l1 },
                Op::Read { addr: ra },
                Op::Write { addr: wa },
                Op::Unlock { lock: l2 },
            ) = (&unit[0], &unit[1], &unit[2], &unit[3])
            else {
                panic!("expected micro critical section, got {unit:?}");
            };
            assert_eq!(l1, l2, "same lock on both sides");
            assert_eq!(ra, wa, "data read and write hit the same word");
            assert!(ra.0 < r.base().0 + 4 * 8, "data must be a hot word");
            // The lock is the hot word's own lock.
            assert_eq!(u64::from(l1.0), 100 + (ra.0 - r.base().0) / 8);
        }
    }

    #[test]
    fn pipeline_stage_shapes() {
        let mut space = AddressSpace::new();
        let in_buf = space.alloc_region(4096);
        let out_buf = space.alloc_region(4096);
        let scratch = space.alloc_region(1024);
        let ops = drain(PlanStream::new(
            vec![Phase::PipelineStage {
                in_sem: Some(SemId(0)),
                out_sem: Some(SemId(1)),
                items: 2,
                in_buf: Some(in_buf),
                out_buf: Some(out_buf),
                work: 3,
                scratch,
                slot_words: 2,
            }],
            5,
        ));
        // Per item: wait + 2 reads + 3 work + 2 writes + post = 9 ops.
        assert_eq!(ops.len(), 18);
        assert_eq!(ops[0], Op::WaitSem { sem: SemId(0) });
        assert_eq!(ops[8], Op::Post { sem: SemId(1) });
        assert!(matches!(ops[1], Op::Read { .. }));
        assert!(matches!(ops[7], Op::Write { .. }));
    }

    #[test]
    fn total_ops_matches_drain() {
        let mut space = AddressSpace::new();
        let r = space.alloc_region(4096);
        let scratch = space.alloc_region(512);
        let phases = vec![
            Phase::PrivateMix {
                region: r,
                ops: 50,
                read_pct: 70,
                compute_pct: 20,
            },
            Phase::SharedRw {
                region: r,
                pairs: 10,
                hot_words: 2,
                lock_base: 50,
            },
            Phase::LockedUpdates {
                lock_base: 0,
                lock_count: 2,
                region: r,
                updates: 5,
            },
            Phase::PipelineStage {
                in_sem: None,
                out_sem: Some(SemId(0)),
                items: 3,
                in_buf: None,
                out_buf: Some(r),
                work: 2,
                scratch,
                slot_words: 2,
            },
            Phase::Compute { cycles: 4, ops: 7 },
        ];
        let expected = PlanStream::total_ops(&phases);
        let ops = drain(PlanStream::new(phases, 11));
        assert_eq!(ops.len() as u64, expected);
    }

    #[test]
    fn same_seed_same_stream() {
        let r = region(4096);
        let phases = vec![Phase::PrivateMix {
            region: r,
            ops: 200,
            read_pct: 50,
            compute_pct: 10,
        }];
        assert_eq!(
            drain(PlanStream::new(phases.clone(), 9)),
            drain(PlanStream::new(phases.clone(), 9))
        );
        assert_ne!(
            drain(PlanStream::new(phases.clone(), 9)),
            drain(PlanStream::new(phases, 10))
        );
    }

    #[test]
    fn racy_pairs_touch_only_their_region() {
        let r = region(128);
        let ops = drain(PlanStream::new(
            vec![Phase::RacyPairs {
                region: r,
                pairs: 10,
            }],
            2,
        ));
        for op in ops {
            let (addr, _) = op.memory_access().expect("only memory ops");
            assert!(r.contains(addr));
        }
    }

    #[test]
    fn atomic_ops_hit_hot_words() {
        let r = region(4096);
        let ops = drain(PlanStream::new(
            vec![Phase::AtomicOps {
                region: r,
                ops: 10,
                hot_words: 1,
            }],
            2,
        ));
        for op in ops {
            assert_eq!(op, Op::AtomicRmw { addr: r.word(0) });
        }
    }
}
