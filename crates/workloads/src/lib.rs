//! Synthetic workloads for the ddrace reproduction of *"Demand-driven
//! software race detection using hardware performance counters"*
//! (Greathouse et al., ISCA 2011).
//!
//! The paper evaluates on Phoenix and PARSEC. We cannot ship those C
//! suites; instead each benchmark is reproduced as a [`WorkloadSpec`]
//! whose **sharing profile** — the fraction and pattern of inter-thread
//! communication, the phase structure, the synchronization style — is
//! shaped to the published characteristics of the original. Since the
//! demand-driven mechanism responds exactly to sharing behaviour, this
//! substitution preserves what the experiments measure (see DESIGN.md).
//!
//! * [`phoenix::suite`] — 8 map-reduce style kernels, very low sharing;
//! * [`parsec::suite`] — 13 applications: barrier-phased data parallel,
//!   fine-grained amorphous, and semaphore pipelines;
//! * [`racy`] — kernels with planted races for accuracy experiments;
//! * [`WorkloadSpec::with_injected_race`] — racy variant of any benchmark.
//!
//! # Example
//!
//! ```
//! use ddrace_workloads::{phoenix, Scale};
//! use ddrace_program::{run_program, NullListener, SchedulerConfig};
//!
//! let spec = phoenix::linear_regression();
//! let program = spec.program(Scale::TEST, 42);
//! let stats = run_program(program, SchedulerConfig::default(), &mut NullListener)?;
//! assert!(stats.ops_executed > 0);
//! # Ok::<(), ddrace_program::ScheduleError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod clean;
pub mod parsec;
mod phases;
pub mod phoenix;
pub mod racy;
mod scale;
mod spec;

pub use phases::{Phase, PlanStream};
pub use scale::Scale;
pub use spec::{IterProfile, Structure, Suite, WorkloadSpec};

/// Every benchmark of both suites, Phoenix first.
pub fn all_benchmarks() -> Vec<WorkloadSpec> {
    let mut v = phoenix::suite();
    v.extend(parsec::suite());
    v
}

/// Looks up a benchmark (or racy kernel) by name across all suites.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all_benchmarks()
        .into_iter()
        .chain(racy::kernels())
        .find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_is_both_suites() {
        assert_eq!(all_benchmarks().len(), 21);
    }

    #[test]
    fn by_name_finds_everything() {
        for w in all_benchmarks().iter().chain(racy::kernels().iter()) {
            assert_eq!(by_name(&w.name).unwrap().name, w.name);
        }
        assert!(by_name("nonexistent").is_none());
    }
}
