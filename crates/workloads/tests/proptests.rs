//! Property-based tests for workload generation: arbitrary *clean* specs
//! must produce race-free, deadlock-free, deterministic programs.

use ddrace_program::{run_program, NullListener, SchedulerConfig, StatsCollector};
use ddrace_workloads::{IterProfile, Scale, Structure, Suite, WorkloadSpec};
use proptest::prelude::*;

fn arb_iter_profile() -> impl Strategy<Value = IterProfile> {
    (
        0u64..2_000, // private_ops
        0u8..=100,   // private_read_pct
        0u8..=60,    // compute_pct
        0u64..300,   // shared_reads
        0u64..60,    // shared_rw_pairs
        0u64..80,    // locked_updates
        0u64..40,    // atomic_ops
    )
        .prop_map(
            |(private_ops, read_pct, compute_pct, shared_reads, rw, locked, atomics)| IterProfile {
                private_ops,
                private_read_pct: read_pct,
                compute_pct,
                shared_reads,
                shared_rw_pairs: rw,
                locked_updates: locked,
                atomic_ops: atomics,
                racy_pairs: 0,
            },
        )
}

fn arb_structure() -> impl Strategy<Value = Structure> {
    prop_oneof![
        (1u32..5, any::<bool>()).prop_map(|(iterations, barrier_per_iter)| {
            Structure::ForkJoin {
                iterations,
                barrier_per_iter,
            }
        }),
        (1u64..30, 1u64..200, 1u64..16).prop_map(|(items, work, slots)| Structure::Pipeline {
            items,
            work_per_item: work,
            slot_words: slots,
        }),
    ]
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        arb_iter_profile(),
        arb_structure(),
        1u32..6,   // workers
        0u64..200, // init words
        0u64..100, // merge words
        1u64..16,  // hot words
        1u32..16,  // lock buckets
    )
        .prop_map(
            |(iter, structure, workers, init, merge, hot, locks)| WorkloadSpec {
                name: "prop".to_string(),
                suite: Suite::Kernel,
                workers,
                structure,
                iter,
                init_shared_words: init,
                final_merge_words: merge,
                private_bytes: 8 * 1024,
                shared_bytes: 16 * 1024,
                hot_words: hot,
                lock_count: locks,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any clean spec schedules without deadlock or sync misuse, for any
    /// seed and jittered quantum.
    #[test]
    fn clean_specs_always_run(spec in arb_spec(), seed in any::<u64>()) {
        let program = spec.program(Scale::TEST, seed);
        let cfg = SchedulerConfig { quantum: 7, seed, jitter: true };
        let stats = run_program(program, cfg, &mut NullListener)
            .expect("generated program must schedule cleanly");
        prop_assert_eq!(stats.orphan_threads, 0);
    }

    /// Any clean spec is race-free under continuous happens-before
    /// analysis — the generators may only produce *synchronized* sharing.
    #[test]
    fn clean_specs_have_no_races(spec in arb_spec(), seed in 0u64..1_000) {
        use ddrace_core::{AnalysisMode, SimConfig, Simulation};
        let mut cfg = SimConfig::new(4, AnalysisMode::Continuous);
        cfg.scheduler = SchedulerConfig { quantum: 5, seed, jitter: true };
        let r = Simulation::new(cfg)
            .run(spec.program(Scale::TEST, seed))
            .expect("schedules cleanly");
        prop_assert_eq!(
            r.races.distinct, 0,
            "clean spec raced: {:?} (structure {:?})",
            r.races.reports, spec.structure
        );
    }

    /// Injecting races into any spec makes continuous analysis report
    /// them (two or more workers guarantee a colliding pair on word 0).
    #[test]
    fn injected_specs_always_race(spec in arb_spec(), seed in 0u64..1_000) {
        use ddrace_core::{AnalysisMode, SimConfig, Simulation};
        let mut spec = spec.with_injected_race(10);
        spec.workers = spec.workers.max(2);
        let mut cfg = SimConfig::new(4, AnalysisMode::Continuous);
        cfg.scheduler = SchedulerConfig { quantum: 5, seed, jitter: true };
        let r = Simulation::new(cfg)
            .run(spec.program(Scale::TEST, seed))
            .expect("schedules cleanly");
        prop_assert!(r.races.distinct > 0, "injected race invisible");
    }

    /// Generation is deterministic: the same spec and seed produce
    /// byte-identical op streams.
    #[test]
    fn generation_is_deterministic(spec in arb_spec(), seed in any::<u64>()) {
        let count = |spec: &WorkloadSpec| {
            let mut c = StatsCollector::new(NullListener);
            run_program(
                spec.program(Scale::TEST, seed),
                SchedulerConfig::default(),
                &mut c,
            )
            .unwrap();
            *c.counts()
        };
        prop_assert_eq!(count(&spec), count(&spec));
    }
}
