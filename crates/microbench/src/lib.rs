//! # microbench — a hermetic stand-in for the `criterion` API subset we use
//!
//! Implements just enough of criterion's surface — `Criterion`,
//! `benchmark_group`, `bench_function`/`bench_with_input`, `Throughput`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!`/
//! `criterion_main!` macros — to run the workspace's `harness = false`
//! benches with **no external dependencies**. Timing is a plain
//! median-of-samples over `std::time::Instant`; there is no statistical
//! analysis, plotting, or baseline comparison. Output is one line per
//! benchmark on stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Re-exported so benches can opt out of constant folding, as with criterion.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level bench context handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group: {}", name.into());
        BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Elements- or bytes-per-iteration metadata for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A `function/parameter` pair naming one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter label.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares work-per-iteration so results report a rate too.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times a closure-only benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into().0, &mut routine);
        self
    }

    /// Times a benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into().0, &mut |b: &mut Bencher| routine(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is cosmetic).
    pub fn finish(&mut self) {}

    fn run(&mut self, name: String, routine: &mut dyn FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            routine(&mut bencher);
            samples.push(bencher.elapsed);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let mut line = format!("  {name}: {}", format_duration(median));
        if let Some(tp) = self.throughput {
            let per_sec = |n: u64| n as f64 / median.as_secs_f64().max(f64::MIN_POSITIVE);
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  ({:.1} Melem/s)", per_sec(n) / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  ({:.1} MiB/s)", per_sec(n) / (1024.0 * 1024.0)));
                }
            }
        }
        println!("{line}");
    }
}

/// Accepts both `&str` names and [`BenchmarkId`]s where criterion does.
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> BenchId {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> BenchId {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> BenchId {
        BenchId(id.name)
    }
}

/// Passed to the benchmark closure; `iter` times one sample.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine` and records the per-call cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then a small fixed batch per sample.
        hint::black_box(routine());
        const BATCH: u32 = 3;
        let start = Instant::now();
        for _ in 0..BATCH {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed() / BATCH;
    }
}

/// One machine-readable measurement produced by [`measure`] — the
/// programmatic counterpart of the printed bench lines, for tools that
/// dump throughput trajectories to JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Median wall-clock nanoseconds for one call of the routine.
    pub median_ns: u64,
    /// Logical elements the routine processes per call.
    pub elements: u64,
}

impl Measurement {
    /// Elements per second at the median.
    pub fn per_sec(&self) -> f64 {
        let secs = self.median_ns as f64 / 1e9;
        self.elements as f64 / secs.max(f64::MIN_POSITIVE)
    }

    /// The printed form, matching the group output style.
    pub fn line(&self) -> String {
        format!(
            "  {}: {}  ({:.2} Melem/s)",
            self.name,
            format_duration(Duration::from_nanos(self.median_ns)),
            self.per_sec() / 1e6
        )
    }
}

/// Times `routine` — which processes `elements` logical items per call —
/// and returns the median over `samples` timed calls, after one untimed
/// warm-up call. The return value of each call is black-boxed so the
/// work cannot be folded away.
pub fn measure<O>(
    name: &str,
    elements: u64,
    samples: usize,
    mut routine: impl FnMut() -> O,
) -> Measurement {
    hint::black_box(routine());
    let mut timings: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            hint::black_box(routine());
            start.elapsed()
        })
        .collect();
    timings.sort();
    Measurement {
        name: name.to_string(),
        median_ns: timings[timings.len() / 2].as_nanos() as u64,
        elements,
    }
}

/// Times two routines over interleaved samples (`a`, `b`, `a`, `b`, …)
/// after one untimed warm-up call of each, returning both medians.
///
/// Pairing the samples in time means slow environmental drift — CPU
/// frequency scaling, thermal state, background load — lands on both
/// routines roughly equally, which stabilizes the *ratio* of the two
/// results far better than two independent back-to-back [`measure`]
/// runs, where the second routine sees a different machine than the
/// first. Use this whenever the quantity of interest is a before/after
/// speedup rather than an absolute rate.
pub fn measure_paired<OA, OB>(
    name_a: &str,
    name_b: &str,
    elements: u64,
    samples: usize,
    mut a: impl FnMut() -> OA,
    mut b: impl FnMut() -> OB,
) -> (Measurement, Measurement) {
    hint::black_box(a());
    hint::black_box(b());
    let mut timings_a: Vec<Duration> = Vec::with_capacity(samples.max(1));
    let mut timings_b: Vec<Duration> = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        hint::black_box(a());
        timings_a.push(start.elapsed());
        let start = Instant::now();
        hint::black_box(b());
        timings_b.push(start.elapsed());
    }
    timings_a.sort();
    timings_b.sort();
    let median = |timings: &[Duration], name: &str| Measurement {
        name: name.to_string(),
        median_ns: timings[timings.len() / 2].as_nanos() as u64,
        elements,
    };
    (median(&timings_a, name_a), median(&timings_b, name_b))
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_rate() {
        let m = measure("spin", 1_000, 3, || (0..1_000u64).sum::<u64>());
        assert_eq!(m.elements, 1_000);
        assert!(m.per_sec() > 0.0);
        assert!(m.line().contains("spin"));
    }

    #[test]
    fn measure_paired_interleaves_and_reports_both() {
        let order = std::cell::RefCell::new(Vec::new());
        let (a, b) = measure_paired(
            "a",
            "b",
            100,
            3,
            || order.borrow_mut().push('a'),
            || order.borrow_mut().push('b'),
        );
        assert_eq!(a.name, "a");
        assert_eq!(b.name, "b");
        assert_eq!(a.elements, 100);
        // Warm-up pair plus three interleaved sample pairs.
        assert_eq!(order.into_inner(), ['a', 'b', 'a', 'b', 'a', 'b', 'a', 'b']);
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(calls >= 2, "routine ran per sample");
    }
}
