//! Property-based tests for counters, sampling and skid.

use ddrace_cache::{AccessResult, CoreId, HitWhere, SharingKind};
use ddrace_pmu::{Counter, CounterConfig, IndicatorMode, PmuEventKind, SharingIndicator};
use ddrace_program::AccessKind;
use proptest::prelude::*;

fn hitm_result() -> AccessResult {
    AccessResult {
        latency: 60,
        hit: HitWhere::RemoteCache,
        line: 1,
        hitm_owner: Some(CoreId(0)),
        rfo_hitm_owner: None,
        invalidations: 0,
        sharing: (Some(SharingKind::WriteRead), None),
    }
}

fn quiet_result() -> AccessResult {
    AccessResult {
        latency: 4,
        hit: HitWhere::L1,
        line: 1,
        hitm_owner: None,
        rfo_hitm_owner: None,
        invalidations: 0,
        sharing: (None, None),
    }
}

proptest! {
    /// A counter's value always equals the number of events observed
    /// while enabled, regardless of sampling configuration.
    #[test]
    fn counter_value_is_exact(
        period in 1u64..50,
        skid in 0u32..10,
        events in proptest::collection::vec(0u64..4, 1..200),
    ) {
        let mut c = Counter::new(CounterConfig::sampling(PmuEventKind::HitmLoad, period, skid));
        let mut total = 0u64;
        for e in events {
            c.observe(e);
            c.retire();
            total += e;
        }
        prop_assert_eq!(c.value(), total);
    }

    /// With zero skid, the number of overflows delivered over a run of
    /// single events is exactly floor(events / period).
    #[test]
    fn overflow_count_matches_period(period in 1u64..40, n in 1u64..500) {
        let mut c = Counter::new(CounterConfig::sampling(PmuEventKind::HitmLoad, period, 0));
        let mut overflows = 0u64;
        for _ in 0..n {
            if c.observe(1).is_some() {
                overflows += 1;
            }
        }
        prop_assert_eq!(overflows, n / period);
    }

    /// Skid delays delivery by exactly `skid` retired accesses, and no
    /// overflow is ever lost while enabled (merging crossings aside).
    #[test]
    fn skid_delivery_distance(skid in 1u32..30) {
        let mut c = Counter::new(CounterConfig::sampling(PmuEventKind::HitmLoad, 1, skid));
        prop_assert!(c.observe(1).is_none());
        for i in 1..skid {
            prop_assert!(c.retire().is_none(), "delivered early at {i}");
        }
        let ov = c.retire().expect("delivered at skid distance");
        prop_assert_eq!(ov.skid, skid);
    }

    /// The sharing indicator raises exactly events/period signals on a
    /// pure HITM stream with zero skid, and none on a quiet stream.
    #[test]
    fn indicator_signal_rate(period in 1u64..50, n in 1u64..300) {
        let mut ind = SharingIndicator::new(
            IndicatorMode::HitmSampling { period, skid: 0, include_rfo: false },
            1,
        );
        let mut signals = 0u64;
        for _ in 0..n {
            if ind.observe(CoreId(0), &hitm_result(), AccessKind::Read).is_some() {
                signals += 1;
            }
        }
        prop_assert_eq!(signals, n / period);
        prop_assert_eq!(ind.events_counted(), n);
        prop_assert_eq!(ind.signals_raised(), signals);

        let mut quiet = SharingIndicator::new(IndicatorMode::hitm_default(), 1);
        for _ in 0..n {
            prop_assert!(quiet.observe(CoreId(0), &quiet_result(), AccessKind::Read).is_none());
        }
        prop_assert_eq!(quiet.events_counted(), 0);
    }

    /// The oracle fires on every true-sharing access and never on quiet
    /// ones, independent of HITM visibility.
    #[test]
    fn oracle_tracks_truth(flags in proptest::collection::vec(any::<bool>(), 1..300)) {
        let mut ind = SharingIndicator::new(IndicatorMode::Oracle, 1);
        let mut expected = 0u64;
        for shared in flags {
            let r = if shared {
                // Sharing the hardware missed (memory hit, no HITM).
                AccessResult {
                    hitm_owner: None,
                    hit: HitWhere::Memory,
                    latency: 200,
                    ..hitm_result()
                }
            } else {
                quiet_result()
            };
            let signal = ind.observe(CoreId(0), &r, AccessKind::Read);
            prop_assert_eq!(signal.is_some(), shared);
            expected += u64::from(shared);
        }
        prop_assert_eq!(ind.signals_raised(), expected);
    }
}
