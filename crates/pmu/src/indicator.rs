//! The sharing indicator: the paper's hardware trigger, packaged.
//!
//! The demand-driven controller does not care about raw counters; it asks
//! one question — *"did this access suggest inter-thread sharing?"* —
//! and three answers exist:
//!
//! * [`IndicatorMode::HitmSampling`]: the realistic answer. A performance
//!   counter samples HITM loads with a configurable sample-after value and
//!   interrupt skid. Misses sharing that hardware misses (evicted modified
//!   lines, W→W/R→W-only communication) and fires spuriously on false
//!   sharing — exactly the trade-offs the paper evaluates.
//! * [`IndicatorMode::Oracle`]: the idealized answer used for the paper's
//!   "perfect hardware sharing detector" comparison: every true
//!   communication event fires, immediately, with no skid.
//! * [`IndicatorMode::Disabled`]: never fires (native execution, or
//!   continuous-analysis mode where no trigger is needed).

use crate::counter::CounterConfig;
use crate::event::PmuEventKind;
use crate::pmu::Pmu;
use ddrace_cache::{AccessResult, CoreId};
use ddrace_program::AccessKind;

/// How the sharing indicator is realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndicatorMode {
    /// Sample the HITM-load performance counter.
    HitmSampling {
        /// Sample-after value: interrupt every `period` HITM events.
        period: u64,
        /// Interrupt skid in retired accesses.
        skid: u32,
        /// Also count RFO-HITMs (stores hitting remote modified lines) —
        /// a capability real Nehalem load-event hardware lacks; exposed as
        /// an ablation.
        include_rfo: bool,
    },
    /// Perfect indicator: every ground-truth communication fires.
    Oracle,
    /// Never fires.
    Disabled,
}

impl IndicatorMode {
    /// The paper's default realistic configuration: interrupt on every
    /// HITM load (sample-after 1) with a small skid.
    pub fn hitm_default() -> Self {
        IndicatorMode::HitmSampling {
            period: 1,
            skid: 20,
            include_rfo: false,
        }
    }
}

impl Default for IndicatorMode {
    fn default() -> Self {
        Self::hitm_default()
    }
}

/// A delivered sharing signal (in hardware terms, the PMI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharingSignal {
    /// Core on which the interrupt was delivered.
    pub core: CoreId,
    /// The event that triggered it.
    pub event: PmuEventKind,
    /// Retired accesses between threshold crossing and delivery.
    pub skid: u32,
}

/// Watches the access stream and raises [`SharingSignal`]s according to an
/// [`IndicatorMode`].
///
/// # Examples
///
/// ```
/// use ddrace_pmu::{IndicatorMode, SharingIndicator};
/// use ddrace_cache::{CacheConfig, CacheHierarchy, CoreId};
/// use ddrace_program::{AccessKind, Addr};
///
/// let mut mem = CacheHierarchy::new(CacheConfig::nehalem(2));
/// let mut ind = SharingIndicator::new(
///     IndicatorMode::HitmSampling { period: 1, skid: 0, include_rfo: false },
///     2,
/// );
/// mem.access(CoreId(0), Addr(0x40), AccessKind::Write);
/// let r = mem.access(CoreId(1), Addr(0x40), AccessKind::Read);
/// let signal = ind.observe(CoreId(1), &r, AccessKind::Read).expect("HITM fires");
/// assert_eq!(signal.core, CoreId(1));
/// ```
#[derive(Debug, Clone)]
pub struct SharingIndicator {
    mode: IndicatorMode,
    pmu: Pmu,
    signals_raised: u64,
}

impl SharingIndicator {
    /// Creates an indicator for a `cores`-core machine.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(mode: IndicatorMode, cores: usize) -> Self {
        let configs = match mode {
            IndicatorMode::HitmSampling {
                period,
                skid,
                include_rfo,
            } => {
                let event = if include_rfo {
                    PmuEventKind::AnyHitm
                } else {
                    PmuEventKind::HitmLoad
                };
                vec![CounterConfig::sampling(event, period, skid)]
            }
            IndicatorMode::Oracle => {
                vec![CounterConfig::sampling(PmuEventKind::TrueSharing, 1, 0)]
            }
            IndicatorMode::Disabled => Vec::new(),
        };
        SharingIndicator {
            mode,
            pmu: Pmu::new(cores, configs),
            signals_raised: 0,
        }
    }

    /// The mode this indicator runs in.
    pub fn mode(&self) -> IndicatorMode {
        self.mode
    }

    /// Feeds one retired access; returns a signal if an interrupt was
    /// delivered on it.
    pub fn observe(
        &mut self,
        core: CoreId,
        result: &AccessResult,
        kind: AccessKind,
    ) -> Option<SharingSignal> {
        let overflows = self.pmu.on_access(core, result, kind);
        let first = overflows.first()?;
        self.signals_raised += 1;
        Some(SharingSignal {
            core,
            event: first.event,
            skid: first.skid,
        })
    }

    /// Total signals (interrupts) raised so far.
    pub fn signals_raised(&self) -> u64 {
        self.signals_raised
    }

    /// Total trigger events counted so far (HITMs or true-sharing events,
    /// depending on mode), including ones below the sampling threshold.
    pub fn events_counted(&self) -> u64 {
        match self.mode {
            IndicatorMode::HitmSampling {
                include_rfo: false, ..
            } => self.pmu.total(PmuEventKind::HitmLoad),
            IndicatorMode::HitmSampling {
                include_rfo: true, ..
            } => self.pmu.total(PmuEventKind::AnyHitm),
            IndicatorMode::Oracle => self.pmu.total(PmuEventKind::TrueSharing),
            IndicatorMode::Disabled => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrace_cache::{HitWhere, SharingKind};

    fn hitm_result() -> AccessResult {
        AccessResult {
            latency: 60,
            hit: HitWhere::RemoteCache,
            line: 1,
            hitm_owner: Some(CoreId(0)),
            rfo_hitm_owner: None,
            invalidations: 0,
            sharing: (Some(SharingKind::WriteRead), None),
        }
    }

    /// Sharing the cache missed (e.g. after eviction): ground truth fires,
    /// no HITM.
    fn lost_sharing_result() -> AccessResult {
        AccessResult {
            latency: 200,
            hit: HitWhere::Memory,
            line: 1,
            hitm_owner: None,
            rfo_hitm_owner: None,
            invalidations: 0,
            sharing: (Some(SharingKind::WriteRead), None),
        }
    }

    fn rfo_result() -> AccessResult {
        AccessResult {
            latency: 60,
            hit: HitWhere::RemoteCache,
            line: 1,
            hitm_owner: None,
            rfo_hitm_owner: Some(CoreId(0)),
            invalidations: 1,
            sharing: (Some(SharingKind::WriteWrite), None),
        }
    }

    #[test]
    fn hitm_mode_fires_on_hitm_only() {
        let mut ind = SharingIndicator::new(
            IndicatorMode::HitmSampling {
                period: 1,
                skid: 0,
                include_rfo: false,
            },
            2,
        );
        assert!(ind
            .observe(CoreId(1), &hitm_result(), AccessKind::Read)
            .is_some());
        assert!(ind
            .observe(CoreId(1), &lost_sharing_result(), AccessKind::Read)
            .is_none());
        assert!(ind
            .observe(CoreId(1), &rfo_result(), AccessKind::Write)
            .is_none());
        assert_eq!(ind.signals_raised(), 1);
        assert_eq!(ind.events_counted(), 1);
    }

    #[test]
    fn oracle_mode_catches_lost_sharing() {
        let mut ind = SharingIndicator::new(IndicatorMode::Oracle, 2);
        assert!(ind
            .observe(CoreId(1), &lost_sharing_result(), AccessKind::Read)
            .is_some());
        assert!(ind
            .observe(CoreId(1), &rfo_result(), AccessKind::Write)
            .is_some());
        assert_eq!(ind.signals_raised(), 2);
    }

    #[test]
    fn disabled_mode_never_fires() {
        let mut ind = SharingIndicator::new(IndicatorMode::Disabled, 2);
        assert!(ind
            .observe(CoreId(1), &hitm_result(), AccessKind::Read)
            .is_none());
        assert_eq!(ind.signals_raised(), 0);
        assert_eq!(ind.events_counted(), 0);
    }

    #[test]
    fn include_rfo_widens_the_event() {
        let mut ind = SharingIndicator::new(
            IndicatorMode::HitmSampling {
                period: 1,
                skid: 0,
                include_rfo: true,
            },
            2,
        );
        assert!(ind
            .observe(CoreId(1), &rfo_result(), AccessKind::Write)
            .is_some());
        assert_eq!(ind.events_counted(), 1);
    }

    #[test]
    fn sampling_period_thins_signals() {
        let mut ind = SharingIndicator::new(
            IndicatorMode::HitmSampling {
                period: 10,
                skid: 0,
                include_rfo: false,
            },
            1,
        );
        let mut signals = 0;
        for _ in 0..100 {
            if ind
                .observe(CoreId(0), &hitm_result(), AccessKind::Read)
                .is_some()
            {
                signals += 1;
            }
        }
        assert_eq!(signals, 10);
        assert_eq!(ind.events_counted(), 100);
    }

    #[test]
    fn default_mode_is_hitm_sampling() {
        assert_eq!(
            IndicatorMode::default(),
            IndicatorMode::HitmSampling {
                period: 1,
                skid: 20,
                include_rfo: false
            }
        );
    }
}

ddrace_json::json_enum!(IndicatorMode {
    HitmSampling { period, skid, include_rfo },
    Oracle,
    Disabled
});
ddrace_json::json_struct!(SharingSignal { core, event, skid });
