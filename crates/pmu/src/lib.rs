//! Simulated performance monitoring unit (PMU) for the ddrace reproduction
//! of *"Demand-driven software race detection using hardware performance
//! counters"* (Greathouse et al., ISCA 2011).
//!
//! Models what the paper uses on real Nehalem hardware: per-core
//! programmable counters ([`Counter`], [`Pmu`]) with event selection,
//! sampling ("sample-after" thresholds), overflow interrupts, and
//! configurable interrupt **skid** — plus the [`SharingIndicator`]
//! abstraction the demand-driven controller consumes, in three flavors:
//! realistic HITM sampling, the idealized oracle, and disabled.
//!
//! # Example
//!
//! ```
//! use ddrace_pmu::{IndicatorMode, SharingIndicator};
//! use ddrace_cache::{CacheConfig, CacheHierarchy, CoreId};
//! use ddrace_program::{AccessKind, Addr};
//!
//! let mut mem = CacheHierarchy::new(CacheConfig::nehalem(2));
//! let mut indicator = SharingIndicator::new(IndicatorMode::hitm_default(), 2);
//!
//! mem.access(CoreId(0), Addr(0x40), AccessKind::Write);
//! let r = mem.access(CoreId(1), Addr(0x40), AccessKind::Read);
//! // With the default 20-access skid the signal arrives a little later;
//! // the HITM itself is already counted.
//! indicator.observe(CoreId(1), &r, AccessKind::Read);
//! assert_eq!(indicator.events_counted(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod counter;
mod event;
mod indicator;
mod pmu;

pub use counter::{Counter, CounterConfig, Overflow};
pub use event::PmuEventKind;
pub use indicator::{IndicatorMode, SharingIndicator, SharingSignal};
pub use pmu::Pmu;
