//! A single programmable performance counter with sampling and skid.

use crate::event::PmuEventKind;

/// Configuration of one counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterConfig {
    /// The event to count.
    pub event: PmuEventKind,
    /// Overflow threshold ("sample-after value"): an interrupt is raised
    /// every `period` events. `None` counts without sampling.
    pub period: Option<u64>,
    /// Interrupt skid: the overflow interrupt is delivered this many
    /// *retired memory accesses* after the event that crossed the
    /// threshold, mimicking the imprecise delivery of real PMIs.
    pub skid: u32,
}

impl CounterConfig {
    /// A counting-only configuration (no interrupts).
    pub fn counting(event: PmuEventKind) -> Self {
        CounterConfig {
            event,
            period: None,
            skid: 0,
        }
    }

    /// A sampling configuration interrupting every `period` events with
    /// `skid` accesses of delivery delay.
    ///
    /// # Panics
    ///
    /// Panics if `period` is 0.
    pub fn sampling(event: PmuEventKind, period: u64, skid: u32) -> Self {
        assert!(period > 0, "sample period must be positive");
        CounterConfig {
            event,
            period: Some(period),
            skid,
        }
    }
}

/// A delivered counter-overflow interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overflow {
    /// The event whose counter overflowed.
    pub event: PmuEventKind,
    /// Counter value at delivery (events seen so far).
    pub count: u64,
    /// Accesses that retired between the threshold crossing and delivery
    /// (the realized skid).
    pub skid: u32,
}

/// One hardware performance counter.
///
/// Count events with [`observe`](Counter::observe); call
/// [`retire`](Counter::retire) once per retired memory access to advance
/// skid countdowns. Overflows are returned from whichever call delivers
/// them.
///
/// # Examples
///
/// ```
/// use ddrace_pmu::{Counter, CounterConfig, PmuEventKind};
/// let mut c = Counter::new(CounterConfig::sampling(PmuEventKind::HitmLoad, 2, 0));
/// assert!(c.observe(1).is_none()); // 1 event: below threshold
/// let ov = c.observe(1).expect("second event crosses threshold");
/// assert_eq!(ov.count, 2);
/// assert_eq!(c.value(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    config: CounterConfig,
    value: u64,
    since_overflow: u64,
    /// Remaining accesses until a pending overflow is delivered, plus the
    /// skid accumulated so far.
    pending: Option<PendingOverflow>,
    enabled: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingOverflow {
    remaining: u32,
    elapsed: u32,
}

impl Counter {
    /// Creates an enabled counter with `config`.
    pub fn new(config: CounterConfig) -> Self {
        Counter {
            config,
            value: 0,
            since_overflow: 0,
            pending: None,
            enabled: true,
        }
    }

    /// The counter's configuration.
    pub fn config(&self) -> CounterConfig {
        self.config
    }

    /// Total events counted since creation (or [`reset`](Counter::reset)).
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Whether the counter is currently counting.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts or stops counting. Disabling also cancels any pending
    /// (skidding) overflow, like clearing the hardware's PMI enable bit.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.pending = None;
        }
    }

    /// Zeroes the counter and cancels pending overflows.
    pub fn reset(&mut self) {
        self.value = 0;
        self.since_overflow = 0;
        self.pending = None;
    }

    /// Records `events` occurrences of the counted event. Returns an
    /// overflow if the threshold is crossed *and* the configured skid is
    /// zero; with nonzero skid the overflow is delivered by a later
    /// [`retire`](Counter::retire).
    pub fn observe(&mut self, events: u64) -> Option<Overflow> {
        if !self.enabled || events == 0 {
            return None;
        }
        self.value += events;
        let period = self.config.period?;
        self.since_overflow += events;
        if self.since_overflow >= period && self.pending.is_none() {
            self.since_overflow = 0;
            if self.config.skid == 0 {
                return Some(Overflow {
                    event: self.config.event,
                    count: self.value,
                    skid: 0,
                });
            }
            self.pending = Some(PendingOverflow {
                remaining: self.config.skid,
                elapsed: 0,
            });
        }
        None
    }

    /// Advances skid countdowns by one retired access; returns the
    /// overflow if one becomes deliverable.
    pub fn retire(&mut self) -> Option<Overflow> {
        let pending = self.pending.as_mut()?;
        pending.elapsed += 1;
        pending.remaining -= 1;
        if pending.remaining == 0 {
            let skid = pending.elapsed;
            self.pending = None;
            Some(Overflow {
                event: self.config.event,
                count: self.value,
                skid,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_mode_never_overflows() {
        let mut c = Counter::new(CounterConfig::counting(PmuEventKind::HitmLoad));
        for _ in 0..1000 {
            assert!(c.observe(1).is_none());
            assert!(c.retire().is_none());
        }
        assert_eq!(c.value(), 1000);
    }

    #[test]
    fn zero_skid_overflow_is_immediate() {
        let mut c = Counter::new(CounterConfig::sampling(PmuEventKind::HitmLoad, 3, 0));
        assert!(c.observe(1).is_none());
        assert!(c.observe(1).is_none());
        let ov = c.observe(1).unwrap();
        assert_eq!(ov.count, 3);
        assert_eq!(ov.skid, 0);
        // The next period starts fresh.
        assert!(c.observe(2).is_none());
        assert!(c.observe(1).is_some());
    }

    #[test]
    fn skid_delays_delivery_by_retired_accesses() {
        let mut c = Counter::new(CounterConfig::sampling(PmuEventKind::HitmLoad, 1, 3));
        assert!(
            c.observe(1).is_none(),
            "overflow must skid, not deliver inline"
        );
        assert!(c.retire().is_none());
        assert!(c.retire().is_none());
        let ov = c.retire().unwrap();
        assert_eq!(ov.skid, 3);
        assert!(c.retire().is_none(), "no double delivery");
    }

    #[test]
    fn overflow_while_skidding_is_merged() {
        let mut c = Counter::new(CounterConfig::sampling(PmuEventKind::HitmLoad, 1, 2));
        assert!(c.observe(1).is_none()); // arms skid
        assert!(c.observe(1).is_none()); // second crossing merged
        assert!(c.retire().is_none());
        let ov = c.retire().unwrap();
        assert_eq!(ov.count, 2);
        assert!(c.retire().is_none());
    }

    #[test]
    fn disable_cancels_pending_and_stops_counting() {
        let mut c = Counter::new(CounterConfig::sampling(PmuEventKind::HitmLoad, 1, 2));
        c.observe(1);
        c.set_enabled(false);
        assert!(!c.is_enabled());
        assert!(c.retire().is_none());
        assert!(c.observe(5).is_none());
        assert_eq!(c.value(), 1);
        c.set_enabled(true);
        assert!(c.observe(1).is_none()); // arms a fresh skid
        c.retire();
        assert!(c.retire().is_some());
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut c = Counter::new(CounterConfig::sampling(PmuEventKind::HitmLoad, 5, 1));
        c.observe(4);
        c.reset();
        assert_eq!(c.value(), 0);
        // 4 more events do not overflow: the partial period was cleared.
        assert!(c.observe(4).is_none());
        assert!(c.retire().is_none());
    }

    #[test]
    fn batch_events_cross_threshold_once() {
        let mut c = Counter::new(CounterConfig::sampling(PmuEventKind::TrueSharing, 4, 0));
        let ov = c.observe(9);
        assert!(ov.is_some(), "9 events cross a period of 4");
        // `since_overflow` resets; periods are not retroactively replayed.
        assert!(c.observe(3).is_none());
        assert!(c.observe(1).is_some());
    }

    #[test]
    #[should_panic(expected = "sample period must be positive")]
    fn zero_period_rejected() {
        let _ = CounterConfig::sampling(PmuEventKind::HitmLoad, 0, 0);
    }
}

ddrace_json::json_struct!(CounterConfig {
    event,
    period,
    skid
});
ddrace_json::json_struct!(Overflow { event, count, skid });
ddrace_json::json_struct!(PendingOverflow { remaining, elapsed });
ddrace_json::json_struct!(Counter {
    config,
    value,
    since_overflow,
    pending,
    enabled
});
