//! Performance-monitoring event definitions.

use ddrace_cache::AccessResult;
use std::fmt;

/// Hardware events a simulated counter can be programmed to count.
///
/// `HitmLoad` is the event at the heart of the paper —
/// `MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM` on Nehalem: retired loads that
/// were served by a modified line in another core's private cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PmuEventKind {
    /// Loads served by a remote modified line (cache-to-cache, HITM).
    HitmLoad,
    /// Stores whose ownership request hit a remote modified line. Real
    /// load-event hardware does *not* count these; exposed for ablations.
    RfoHitm,
    /// Either of the above.
    AnyHitm,
    /// Ground-truth inter-core communication of any kind — W→R, W→W, R→W —
    /// as seen by the oracle tracker (which never loses events to cache
    /// evictions). Not implementable in real hardware; this is the paper's
    /// idealized indicator.
    TrueSharing,
    /// Retired loads.
    Loads,
    /// Retired stores.
    Stores,
    /// Accesses that missed the entire cache hierarchy.
    LlcMiss,
    /// All retired memory accesses.
    Accesses,
}

impl PmuEventKind {
    /// How many events of this kind `result` constitutes.
    pub fn count_in(self, result: &AccessResult, is_load: bool, is_store: bool) -> u64 {
        match self {
            PmuEventKind::HitmLoad => u64::from(result.hitm_owner.is_some()),
            PmuEventKind::RfoHitm => u64::from(result.rfo_hitm_owner.is_some()),
            PmuEventKind::AnyHitm => {
                u64::from(result.hitm_owner.is_some() || result.rfo_hitm_owner.is_some())
            }
            PmuEventKind::TrueSharing => result.sharing_kinds().count() as u64,
            PmuEventKind::Loads => u64::from(is_load),
            PmuEventKind::Stores => u64::from(is_store),
            PmuEventKind::LlcMiss => u64::from(result.hit.is_memory()),
            PmuEventKind::Accesses => 1,
        }
    }
}

impl fmt::Display for PmuEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PmuEventKind::HitmLoad => "MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM",
            PmuEventKind::RfoHitm => "RFO_HITM",
            PmuEventKind::AnyHitm => "ANY_HITM",
            PmuEventKind::TrueSharing => "TRUE_SHARING(oracle)",
            PmuEventKind::Loads => "MEM_INST_RETIRED.LOADS",
            PmuEventKind::Stores => "MEM_INST_RETIRED.STORES",
            PmuEventKind::LlcMiss => "LLC_MISSES",
            PmuEventKind::Accesses => "MEM_INST_RETIRED.ANY",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrace_cache::{CoreId, HitWhere, SharingKind};

    fn result() -> AccessResult {
        AccessResult {
            latency: 4,
            hit: HitWhere::L1,
            line: 1,
            hitm_owner: None,
            rfo_hitm_owner: None,
            invalidations: 0,
            sharing: (None, None),
        }
    }

    #[test]
    fn counts_plain_load() {
        let r = result();
        assert_eq!(PmuEventKind::Loads.count_in(&r, true, false), 1);
        assert_eq!(PmuEventKind::Stores.count_in(&r, true, false), 0);
        assert_eq!(PmuEventKind::Accesses.count_in(&r, true, false), 1);
        assert_eq!(PmuEventKind::HitmLoad.count_in(&r, true, false), 0);
        assert_eq!(PmuEventKind::LlcMiss.count_in(&r, true, false), 0);
    }

    #[test]
    fn counts_hitm_variants() {
        let mut r = result();
        r.hitm_owner = Some(CoreId(1));
        assert_eq!(PmuEventKind::HitmLoad.count_in(&r, true, false), 1);
        assert_eq!(PmuEventKind::AnyHitm.count_in(&r, true, false), 1);
        assert_eq!(PmuEventKind::RfoHitm.count_in(&r, true, false), 0);

        let mut r2 = result();
        r2.rfo_hitm_owner = Some(CoreId(1));
        assert_eq!(PmuEventKind::HitmLoad.count_in(&r2, false, true), 0);
        assert_eq!(PmuEventKind::RfoHitm.count_in(&r2, false, true), 1);
        assert_eq!(PmuEventKind::AnyHitm.count_in(&r2, false, true), 1);
    }

    #[test]
    fn counts_true_sharing_events() {
        let mut r = result();
        r.sharing = (Some(SharingKind::WriteWrite), Some(SharingKind::ReadWrite));
        assert_eq!(PmuEventKind::TrueSharing.count_in(&r, false, true), 2);
        r.sharing = (Some(SharingKind::WriteRead), None);
        assert_eq!(PmuEventKind::TrueSharing.count_in(&r, true, false), 1);
    }

    #[test]
    fn counts_llc_miss() {
        let mut r = result();
        r.hit = HitWhere::Memory;
        assert_eq!(PmuEventKind::LlcMiss.count_in(&r, true, false), 1);
    }

    #[test]
    fn display_names_are_distinct() {
        let kinds = [
            PmuEventKind::HitmLoad,
            PmuEventKind::RfoHitm,
            PmuEventKind::AnyHitm,
            PmuEventKind::TrueSharing,
            PmuEventKind::Loads,
            PmuEventKind::Stores,
            PmuEventKind::LlcMiss,
            PmuEventKind::Accesses,
        ];
        let names: std::collections::HashSet<String> =
            kinds.iter().map(|k| k.to_string()).collect();
        assert_eq!(names.len(), kinds.len());
    }
}

ddrace_json::json_unit_enum!(PmuEventKind {
    HitmLoad,
    RfoHitm,
    AnyHitm,
    TrueSharing,
    Loads,
    Stores,
    LlcMiss,
    Accesses
});
