//! Per-core PMU arrays.

use crate::counter::{Counter, CounterConfig, Overflow};
use crate::event::PmuEventKind;
use ddrace_cache::{AccessResult, CoreId};
use ddrace_program::AccessKind;

/// The machine's performance monitoring units: one set of identically
/// programmed counters per core.
///
/// # Examples
///
/// ```
/// use ddrace_pmu::{Pmu, CounterConfig, PmuEventKind};
/// use ddrace_cache::{CacheConfig, CacheHierarchy, CoreId};
/// use ddrace_program::{AccessKind, Addr};
///
/// let mut mem = CacheHierarchy::new(CacheConfig::nehalem(2));
/// let mut pmu = Pmu::new(2, vec![CounterConfig::sampling(PmuEventKind::HitmLoad, 1, 0)]);
///
/// mem.access(CoreId(0), Addr(0x40), AccessKind::Write);
/// let r = mem.access(CoreId(1), Addr(0x40), AccessKind::Read);
/// let overflows = pmu.on_access(CoreId(1), &r, AccessKind::Read);
/// assert_eq!(overflows.len(), 1); // the HITM load fired an interrupt
/// assert_eq!(pmu.total(PmuEventKind::HitmLoad), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Pmu {
    cores: Vec<Vec<Counter>>,
    overflow_buf: Vec<Overflow>,
}

impl Pmu {
    /// Creates a PMU array for `cores` cores, each programmed with the
    /// same `configs`.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize, configs: Vec<CounterConfig>) -> Self {
        assert!(cores > 0, "a machine needs at least one core");
        Pmu {
            cores: (0..cores)
                .map(|_| configs.iter().map(|&c| Counter::new(c)).collect())
                .collect(),
            overflow_buf: Vec::new(),
        }
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Feeds one retired memory access on `core` into its counters and
    /// returns any overflow interrupts delivered on this access (threshold
    /// crossings plus skid expirations).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn on_access(
        &mut self,
        core: CoreId,
        result: &AccessResult,
        kind: AccessKind,
    ) -> &[Overflow] {
        self.overflow_buf.clear();
        let is_load = kind.is_read();
        let is_store = kind.is_write();
        let counters = &mut self.cores[core.index()];
        for counter in counters.iter_mut() {
            let events = counter.config().event.count_in(result, is_load, is_store);
            if let Some(ov) = counter.observe(events) {
                self.overflow_buf.push(ov);
            }
            if let Some(ov) = counter.retire() {
                self.overflow_buf.push(ov);
            }
        }
        &self.overflow_buf
    }

    /// Current value of counter `slot` on `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` or `slot` is out of range.
    pub fn value(&self, core: CoreId, slot: usize) -> u64 {
        self.cores[core.index()][slot].value()
    }

    /// Sum over all cores of every counter programmed for `event`.
    pub fn total(&self, event: PmuEventKind) -> u64 {
        self.cores
            .iter()
            .flatten()
            .filter(|c| c.config().event == event)
            .map(Counter::value)
            .sum()
    }

    /// Enables or disables every counter on every core.
    pub fn set_all_enabled(&mut self, enabled: bool) {
        for counter in self.cores.iter_mut().flatten() {
            counter.set_enabled(enabled);
        }
    }

    /// Resets every counter on every core.
    pub fn reset_all(&mut self) {
        for counter in self.cores.iter_mut().flatten() {
            counter.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrace_cache::{HitWhere, SharingKind};

    fn hitm_result() -> AccessResult {
        AccessResult {
            latency: 60,
            hit: HitWhere::RemoteCache,
            line: 1,
            hitm_owner: Some(CoreId(0)),
            rfo_hitm_owner: None,
            invalidations: 0,
            sharing: (Some(SharingKind::WriteRead), None),
        }
    }

    fn quiet_result() -> AccessResult {
        AccessResult {
            latency: 4,
            hit: HitWhere::L1,
            line: 1,
            hitm_owner: None,
            rfo_hitm_owner: None,
            invalidations: 0,
            sharing: (None, None),
        }
    }

    #[test]
    fn counters_are_per_core() {
        let mut pmu = Pmu::new(2, vec![CounterConfig::counting(PmuEventKind::Accesses)]);
        pmu.on_access(CoreId(0), &quiet_result(), AccessKind::Read);
        pmu.on_access(CoreId(0), &quiet_result(), AccessKind::Read);
        pmu.on_access(CoreId(1), &quiet_result(), AccessKind::Read);
        assert_eq!(pmu.value(CoreId(0), 0), 2);
        assert_eq!(pmu.value(CoreId(1), 0), 1);
        assert_eq!(pmu.total(PmuEventKind::Accesses), 3);
    }

    #[test]
    fn sampling_interrupt_delivered_with_skid() {
        let mut pmu = Pmu::new(
            1,
            vec![CounterConfig::sampling(PmuEventKind::HitmLoad, 1, 2)],
        );
        assert!(pmu
            .on_access(CoreId(0), &hitm_result(), AccessKind::Read)
            .is_empty());
        // The HITM access itself advanced the skid countdown by one; one
        // more quiet access delivers the PMI.
        let ovs = pmu.on_access(CoreId(0), &quiet_result(), AccessKind::Read);
        assert_eq!(ovs.len(), 1);
        assert_eq!(ovs[0].event, PmuEventKind::HitmLoad);
        assert_eq!(ovs[0].skid, 2);
    }

    #[test]
    fn multiple_counters_fire_together() {
        let mut pmu = Pmu::new(
            1,
            vec![
                CounterConfig::sampling(PmuEventKind::HitmLoad, 1, 0),
                CounterConfig::sampling(PmuEventKind::TrueSharing, 1, 0),
            ],
        );
        let ovs = pmu.on_access(CoreId(0), &hitm_result(), AccessKind::Read);
        assert_eq!(ovs.len(), 2);
    }

    #[test]
    fn disable_and_reset_all() {
        let mut pmu = Pmu::new(2, vec![CounterConfig::counting(PmuEventKind::Accesses)]);
        pmu.on_access(CoreId(0), &quiet_result(), AccessKind::Read);
        pmu.set_all_enabled(false);
        pmu.on_access(CoreId(0), &quiet_result(), AccessKind::Read);
        assert_eq!(pmu.total(PmuEventKind::Accesses), 1);
        pmu.set_all_enabled(true);
        pmu.reset_all();
        assert_eq!(pmu.total(PmuEventKind::Accesses), 0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = Pmu::new(0, vec![]);
    }
}
