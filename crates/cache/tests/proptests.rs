//! Property-based tests for the cache hierarchy and sharing tracker.

use ddrace_cache::{CacheConfig, CacheHierarchy, CoreId};
use ddrace_program::{AccessKind, Addr};
use proptest::prelude::*;

fn arb_accesses(
    cores: u32,
    lines: u64,
    len: usize,
) -> impl Strategy<Value = Vec<(CoreId, Addr, AccessKind)>> {
    proptest::collection::vec(
        (
            0..cores,
            0..lines,
            prop_oneof![
                3 => Just(AccessKind::Read),
                2 => Just(AccessKind::Write),
                1 => Just(AccessKind::AtomicRmw),
            ],
        )
            .prop_map(|(c, l, k)| (CoreId(c), Addr(0x1000 + l * 64 + (l % 8) * 8), k)),
        1..len,
    )
}

proptest! {
    /// Structural invariants (inclusion, directory precision, MESI
    /// exclusivity) hold after any access sequence, even on tiny caches
    /// with heavy eviction pressure — with and without the prefetcher.
    #[test]
    fn invariants_hold_under_random_traffic(
        accesses in arb_accesses(4, 256, 400),
        prefetch in any::<bool>(),
    ) {
        let mut cfg = CacheConfig::tiny(4);
        cfg.prefetch_next_line = prefetch;
        let mut m = CacheHierarchy::new(cfg);
        for (core, addr, kind) in accesses {
            m.access(core, addr, kind);
            // Checking after every access is what makes this test sharp.
        }
        m.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// The hardware HITM load counter never exceeds the oracle's count of
    /// W→R communications: hardware can only miss sharing, never invent a
    /// *new* first-communication... except line-granularity re-reads after
    /// invalidation. We therefore check the weaker, always-true bound:
    /// HITM loads ≤ reads that left the core.
    #[test]
    fn hitm_loads_bounded_by_remote_hits(
        accesses in arb_accesses(4, 64, 400),
    ) {
        let mut m = CacheHierarchy::new(CacheConfig::tiny(4));
        for (core, addr, kind) in accesses {
            m.access(core, addr, kind);
        }
        let s = m.stats();
        let remote: u64 = s.per_core.iter().map(|c| c.remote_hits).sum();
        prop_assert!(s.total_hitm_loads() + s.total_rfo_hitms() <= remote + s.total_rfo_hitms());
        prop_assert!(s.total_hitm_loads() <= remote);
    }

    /// Replaying the same access sequence yields identical stats
    /// (the hierarchy is fully deterministic).
    #[test]
    fn hierarchy_is_deterministic(accesses in arb_accesses(3, 128, 300)) {
        let run = |seq: &[(CoreId, Addr, AccessKind)]| {
            let mut m = CacheHierarchy::new(CacheConfig::tiny(3));
            let results: Vec<_> = seq.iter().map(|&(c, a, k)| m.access(c, a, k)).collect();
            (results, m.stats().clone())
        };
        prop_assert_eq!(run(&accesses), run(&accesses));
    }

    /// Single-core traffic never produces HITM, RFO-HITM, invalidations,
    /// or ground-truth sharing.
    #[test]
    fn single_core_never_shares(accesses in arb_accesses(1, 512, 400)) {
        let mut m = CacheHierarchy::new(CacheConfig::tiny(1));
        for (core, addr, kind) in accesses {
            let r = m.access(core, addr, kind);
            prop_assert!(r.hitm_owner.is_none());
            prop_assert!(r.rfo_hitm_owner.is_none());
            prop_assert_eq!(r.invalidations, 0);
            prop_assert!(!r.is_true_sharing());
        }
        prop_assert_eq!(m.stats().sharing.total(), 0);
    }

    /// Latency is always positive and bounded by the worst-case path
    /// (memory + upgrade + atomic).
    #[test]
    fn latency_bounds(accesses in arb_accesses(4, 64, 200)) {
        let cfg = CacheConfig::tiny(4);
        let max = cfg.mem_latency + cfg.upgrade_latency + cfg.atomic_latency + cfg.l1.latency;
        let mut m = CacheHierarchy::new(cfg);
        for (core, addr, kind) in accesses {
            let r = m.access(core, addr, kind);
            prop_assert!(r.latency > 0);
            prop_assert!(r.latency <= max, "latency {} exceeds bound {}", r.latency, max);
        }
    }

    /// Stats are conserved: every access lands in exactly one hit bucket.
    #[test]
    fn hit_buckets_partition_accesses(accesses in arb_accesses(4, 64, 300)) {
        let mut m = CacheHierarchy::new(CacheConfig::tiny(4));
        let n = accesses.len() as u64;
        for (core, addr, kind) in accesses {
            m.access(core, addr, kind);
        }
        let s = m.stats();
        let bucketed: u64 = s
            .per_core
            .iter()
            .map(|c| c.l1_hits + c.l2_hits + c.l3_hits + c.remote_hits + c.mem_accesses)
            .sum();
        prop_assert_eq!(bucketed, n);
        prop_assert_eq!(s.total_accesses(), n);
    }
}
