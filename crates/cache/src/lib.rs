//! Multicore MESI cache-hierarchy simulator for the ddrace reproduction of
//! *"Demand-driven software race detection using hardware performance
//! counters"* (Greathouse et al., ISCA 2011).
//!
//! The paper's mechanism hinges on a hardware observation: inter-thread
//! sharing of recently-written data shows up as **HITM** coherence events
//! (a load served cache-to-cache from another core's Modified line). This
//! crate reproduces that substrate: per-core private L1/L2 caches, a
//! shared inclusive L3 with an in-cache directory, and MESI coherence —
//! with the same *imprecision* real hardware has (evicted modified lines
//! produce no HITM; stores that hit remote modified lines are RFO-HITMs
//! the monitored load event does not count).
//!
//! It also maintains a ground-truth [`SharingTracker`] that never forgets,
//! providing the paper's idealized "oracle" sharing indicator for
//! comparison.
//!
//! # Example
//!
//! ```
//! use ddrace_cache::{CacheConfig, CacheHierarchy, CoreId, HitWhere};
//! use ddrace_program::{AccessKind, Addr};
//!
//! let mut mem = CacheHierarchy::new(CacheConfig::nehalem(2));
//! mem.access(CoreId(0), Addr(0x40), AccessKind::Write);
//! let read = mem.access(CoreId(1), Addr(0x40), AccessKind::Read);
//! assert_eq!(read.hit, HitWhere::RemoteCache);
//! assert!(read.is_hitm_load());
//! assert!(read.is_true_sharing());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod array;
mod config;
mod event;
mod hierarchy;
mod mesi;
mod sharing;
mod stats;

pub use array::CacheArray;
pub use config::{CacheConfig, LevelConfig};
pub use event::{AccessResult, CoreId, HitWhere, SharingKind};
pub use hierarchy::CacheHierarchy;
pub use mesi::MesiState;
pub use sharing::{SharingCounts, SharingTracker};
pub use stats::{CacheStats, CoreCacheStats};
