//! Counters maintained by the cache hierarchy.

use crate::sharing::SharingCounts;

/// Per-core cache activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreCacheStats {
    /// Total accesses issued by the core.
    pub accesses: u64,
    /// Loads (including the read half of atomics).
    pub reads: u64,
    /// Stores (including atomics).
    pub writes: u64,
    /// Accesses satisfied in the private L1.
    pub l1_hits: u64,
    /// Accesses satisfied in the private L2.
    pub l2_hits: u64,
    /// Accesses satisfied in the shared L3.
    pub l3_hits: u64,
    /// Accesses served cache-to-cache from a remote private cache.
    pub remote_hits: u64,
    /// Accesses that went to main memory.
    pub mem_accesses: u64,
    /// Loads served by a remote **modified** line — the PMU-visible HITM
    /// event.
    pub hitm_loads: u64,
    /// Stores whose ownership request hit a remote modified line.
    pub rfo_hitms: u64,
    /// S→M upgrades performed by this core.
    pub upgrades: u64,
    /// Lines invalidated out of this core's private caches by remote
    /// activity (including inclusion back-invalidations).
    pub invalidations_received: u64,
    /// Lines this core evicted from its private L2.
    pub l2_evictions: u64,
    /// Modified lines this core evicted (wrote back) from its private L2.
    pub l2_dirty_evictions: u64,
    /// Cumulative access latency in cycles.
    pub total_latency: u64,
}

impl CoreCacheStats {
    /// Fraction of accesses satisfied in the private L1 (0 when idle).
    pub fn l1_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l1_hits as f64 / self.accesses as f64
        }
    }
}

/// Machine-wide cache statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheStats {
    /// Per-core counters, indexed by core id.
    pub per_core: Vec<CoreCacheStats>,
    /// Ground-truth sharing totals (from the oracle tracker).
    pub sharing: SharingCounts,
    /// L3 evictions (each back-invalidates any private copies).
    pub l3_evictions: u64,
    /// Private-cache lines invalidated due to L3 evictions (inclusion).
    pub back_invalidations: u64,
    /// Writebacks from L3 to memory.
    pub memory_writebacks: u64,
    /// Next-line prefetches issued (when the prefetcher is enabled).
    pub prefetches: u64,
    /// Prefetches that pulled a line out of a remote core's **Modified**
    /// state — sharing the demand load would have reported as HITM, now
    /// hidden from the PMU.
    pub prefetch_steals: u64,
}

impl CacheStats {
    /// Creates zeroed stats for `cores` cores.
    pub fn new(cores: usize) -> Self {
        CacheStats {
            per_core: vec![CoreCacheStats::default(); cores],
            ..Default::default()
        }
    }

    /// Total accesses across all cores.
    pub fn total_accesses(&self) -> u64 {
        self.per_core.iter().map(|c| c.accesses).sum()
    }

    /// Total PMU-visible HITM loads across all cores.
    pub fn total_hitm_loads(&self) -> u64 {
        self.per_core.iter().map(|c| c.hitm_loads).sum()
    }

    /// Total RFO-HITM events across all cores.
    pub fn total_rfo_hitms(&self) -> u64 {
        self.per_core.iter().map(|c| c.rfo_hitms).sum()
    }

    /// Fraction of all accesses that exhibited ground-truth sharing of any
    /// kind (0 when idle).
    pub fn sharing_fraction(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.sharing.total() as f64 / total as f64
        }
    }

    /// Recall of the HITM load event against ground-truth W→R sharing:
    /// what fraction of true W→R communications produced a PMU-visible
    /// HITM (1.0 when there was no W→R sharing at all).
    pub fn hitm_recall(&self) -> f64 {
        if self.sharing.write_read == 0 {
            1.0
        } else {
            (self.total_hitm_loads() as f64 / self.sharing.write_read as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_construction() {
        let s = CacheStats::new(4);
        assert_eq!(s.per_core.len(), 4);
        assert_eq!(s.total_accesses(), 0);
        assert_eq!(s.sharing_fraction(), 0.0);
        assert_eq!(s.hitm_recall(), 1.0);
        assert_eq!(s.per_core[0].l1_hit_rate(), 0.0);
    }

    #[test]
    fn aggregates_sum_per_core() {
        let mut s = CacheStats::new(2);
        s.per_core[0].accesses = 10;
        s.per_core[0].hitm_loads = 2;
        s.per_core[1].accesses = 5;
        s.per_core[1].hitm_loads = 1;
        s.per_core[1].rfo_hitms = 3;
        assert_eq!(s.total_accesses(), 15);
        assert_eq!(s.total_hitm_loads(), 3);
        assert_eq!(s.total_rfo_hitms(), 3);
    }

    #[test]
    fn recall_is_capped_at_one() {
        let mut s = CacheStats::new(1);
        s.sharing.write_read = 2;
        s.per_core[0].hitm_loads = 5; // e.g. false sharing noise
        assert_eq!(s.hitm_recall(), 1.0);
        s.per_core[0].hitm_loads = 1;
        assert_eq!(s.hitm_recall(), 0.5);
    }

    #[test]
    fn hit_rate_math() {
        let c = CoreCacheStats {
            accesses: 10,
            l1_hits: 7,
            ..Default::default()
        };
        assert!((c.l1_hit_rate() - 0.7).abs() < 1e-12);
    }
}

ddrace_json::json_struct!(CoreCacheStats {
    accesses,
    reads,
    writes,
    l1_hits,
    l2_hits,
    l3_hits,
    remote_hits,
    mem_accesses,
    hitm_loads,
    rfo_hitms,
    upgrades,
    invalidations_received,
    l2_evictions,
    l2_dirty_evictions,
    total_latency
});
ddrace_json::json_struct!(CacheStats {
    per_core,
    sharing,
    l3_evictions,
    back_invalidations,
    memory_writebacks,
    prefetches,
    prefetch_steals
});
