//! The multicore cache hierarchy: private L1/L2 per core, shared inclusive
//! L3 with an in-cache directory, MESI coherence.
//!
//! ## Model
//!
//! * **L1**: per-core, presence-only (its coherence state lives in the
//!   inclusive L2). Silent evictions.
//! * **L2**: per-core, holds the MESI state of every privately cached line.
//! * **L3**: shared and inclusive of all private caches. Each L3 line is a
//!   directory entry: a presence bitmask over cores, the exclusive owner
//!   (the core that may hold the line M or E), and a dirty bit (L3 data
//!   newer than memory).
//!
//! The **HITM** event — the signal the paper's whole mechanism rests on —
//! is generated when a *load* misses the private caches and the directory
//! shows a remote owner whose copy is **Modified**: the data is forwarded
//! cache-to-cache and the event is attributed to the loading core, exactly
//! like `MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM`. Stores hitting a remote
//! modified line are *RFO-HITMs*, which that hardware event does **not**
//! count; they are tracked separately so experiments can quantify the
//! difference. And crucially, a modified line evicted to L3/memory before
//! the consumer arrives produces **no** HITM — that loss is what separates
//! the realistic indicator from the oracle.

use crate::array::CacheArray;
use crate::config::CacheConfig;
use crate::event::{AccessResult, CoreId, HitWhere, SharingKind};
use crate::mesi::MesiState;
use crate::sharing::SharingTracker;
use crate::stats::CacheStats;
use ddrace_program::{AccessKind, Addr};

/// Directory entry stored with each L3 line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct DirEntry {
    /// Bitmask of cores whose private L2 holds the line.
    presence: u64,
    /// Core that may hold the line in M or E state, if any.
    owner: Option<CoreId>,
    /// L3 data newer than memory.
    dirty: bool,
}

/// The simulated multicore memory system.
///
/// # Examples
///
/// ```
/// use ddrace_cache::{CacheConfig, CacheHierarchy, CoreId, HitWhere};
/// use ddrace_program::{AccessKind, Addr};
///
/// let mut mem = CacheHierarchy::new(CacheConfig::nehalem(2));
/// let x = Addr(0x1000);
/// // Core 0 writes, core 1 reads: the read is served cache-to-cache and
/// // produces a PMU-visible HITM event.
/// mem.access(CoreId(0), x, AccessKind::Write);
/// let r = mem.access(CoreId(1), x, AccessKind::Read);
/// assert_eq!(r.hit, HitWhere::RemoteCache);
/// assert_eq!(r.hitm_owner, Some(CoreId(0)));
/// ```
#[derive(Debug)]
pub struct CacheHierarchy {
    config: CacheConfig,
    line_shift: u32,
    l1: Vec<CacheArray<()>>,
    l2: Vec<CacheArray<MesiState>>,
    l3: CacheArray<DirEntry>,
    tracker: Option<SharingTracker>,
    stats: CacheStats,
}

impl CacheHierarchy {
    /// Creates a hierarchy with all caches empty.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        CacheHierarchy {
            line_shift: config.line_size.trailing_zeros(),
            l1: (0..config.cores)
                .map(|_| CacheArray::new(config.l1))
                .collect(),
            l2: (0..config.cores)
                .map(|_| CacheArray::new(config.l2))
                .collect(),
            l3: CacheArray::new(config.l3),
            tracker: config.track_sharing.then(SharingTracker::new),
            stats: CacheStats::new(config.cores),
            config,
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The line address of `addr`.
    pub fn line_of(&self, addr: Addr) -> u64 {
        addr.0 >> self.line_shift
    }

    /// Performs one memory access by `core` and returns its outcome.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range for the configuration.
    pub fn access(&mut self, core: CoreId, addr: Addr, kind: AccessKind) -> AccessResult {
        assert!(core.index() < self.config.cores, "core {core} out of range");
        let line = self.line_of(addr);
        let is_write = kind.is_write();

        // Ground truth first: independent of cache contents.
        let sharing = self.track_sharing(core, line, kind);

        let mut result = AccessResult {
            latency: 0,
            hit: HitWhere::L1,
            line,
            hitm_owner: None,
            rfo_hitm_owner: None,
            invalidations: 0,
            sharing,
        };

        if self.l1[core.index()].get(line).is_some() {
            self.access_private_hit(core, line, is_write, HitWhere::L1, &mut result);
        } else if self.l2[core.index()].contains(line) {
            self.access_private_hit(core, line, is_write, HitWhere::L2, &mut result);
            self.fill_l1(core, line);
        } else {
            self.access_miss(core, line, is_write, kind.is_atomic(), &mut result);
            self.fill_l1(core, line);
            if self.config.prefetch_next_line {
                self.prefetch(core, line + 1);
            }
        }

        if kind.is_atomic() {
            result.latency += self.config.atomic_latency;
        }

        let cs = &mut self.stats.per_core[core.index()];
        cs.accesses += 1;
        if kind.is_read() {
            cs.reads += 1;
        }
        if is_write {
            cs.writes += 1;
        }
        match result.hit {
            HitWhere::L1 => cs.l1_hits += 1,
            HitWhere::L2 => cs.l2_hits += 1,
            HitWhere::L3 => cs.l3_hits += 1,
            HitWhere::RemoteCache => cs.remote_hits += 1,
            HitWhere::Memory => cs.mem_accesses += 1,
        }
        if result.hitm_owner.is_some() {
            cs.hitm_loads += 1;
        }
        if result.rfo_hitm_owner.is_some() {
            cs.rfo_hitms += 1;
        }
        cs.total_latency += u64::from(result.latency);
        if let Some(t) = &self.tracker {
            self.stats.sharing = t.counts();
        }
        result
    }

    fn track_sharing(
        &mut self,
        core: CoreId,
        line: u64,
        kind: AccessKind,
    ) -> (Option<SharingKind>, Option<SharingKind>) {
        let Some(tracker) = &mut self.tracker else {
            return (None, None);
        };
        match kind {
            AccessKind::Read => (tracker.on_read(core, line), None),
            AccessKind::Write => tracker.on_write(core, line),
            AccessKind::AtomicRmw => {
                // The read half first, then the write half. If both the
                // read (W→R) and the write (W→W) see the same remote
                // writer, report the W→R — it is the same communication.
                let wr = tracker.on_read(core, line);
                let (ww, rw) = tracker.on_write(core, line);
                (wr.or(ww), rw)
            }
        }
    }

    /// Handles an access whose line is present in the requesting core's
    /// private caches (`where_hit` is L1 or L2).
    fn access_private_hit(
        &mut self,
        core: CoreId,
        line: u64,
        is_write: bool,
        where_hit: HitWhere,
        result: &mut AccessResult,
    ) {
        result.hit = where_hit;
        result.latency += match where_hit {
            HitWhere::L1 => self.config.l1.latency,
            _ => self.config.l2.latency,
        };
        let state = *self.l2[core.index()]
            .get(line)
            .expect("inclusion: L1/L2-resident line must be in L2");
        if !is_write {
            return;
        }
        match state {
            MesiState::Modified => {}
            MesiState::Exclusive => {
                // Silent E→M upgrade; the directory already names us owner.
                *self.l2[core.index()].peek_mut(line).expect("present") = MesiState::Modified;
            }
            MesiState::Shared => {
                // S→M upgrade: invalidate all other sharers.
                result.latency += self.config.upgrade_latency;
                self.stats.per_core[core.index()].upgrades += 1;
                result.invalidations += self.invalidate_others(core, line);
                let dir = self.l3.peek_mut(line).expect("inclusion: L2 line in L3");
                dir.presence = 1 << core.index();
                dir.owner = Some(core);
                *self.l2[core.index()].peek_mut(line).expect("present") = MesiState::Modified;
            }
            MesiState::Invalid => unreachable!("present line cannot be Invalid"),
        }
    }

    /// Handles an access that missed the requesting core's private caches.
    fn access_miss(
        &mut self,
        core: CoreId,
        line: u64,
        is_write: bool,
        is_atomic: bool,
        result: &mut AccessResult,
    ) {
        let my_bit = 1u64 << core.index();
        let new_state;
        if let Some(dir) = self.l3.get_mut(line) {
            let dir = *dir;
            match dir.owner {
                Some(owner) if owner != core => {
                    let owner_state = *self.l2[owner.index()]
                        .peek(line)
                        .expect("directory owner must hold the line");
                    if owner_state == MesiState::Modified {
                        // Cache-to-cache forward of modified data.
                        result.latency += self.config.c2c_latency;
                        result.hit = HitWhere::RemoteCache;
                        if is_write {
                            // RFO-HITM: invisible to the hardware load event
                            // — unless the store is the write half of an
                            // atomic RMW, whose retired load µop *is*
                            // counted by the monitored event.
                            result.rfo_hitm_owner = Some(owner);
                            if is_atomic {
                                result.hitm_owner = Some(owner);
                            }
                            self.invalidate_core(owner, line);
                            result.invalidations += 1;
                            let d = self.l3.peek_mut(line).expect("present");
                            d.presence = my_bit;
                            d.owner = Some(core);
                            d.dirty = true;
                            new_state = MesiState::Modified;
                        } else {
                            // The PMU-visible HITM load.
                            result.hitm_owner = Some(owner);
                            *self.l2[owner.index()].peek_mut(line).expect("present") =
                                MesiState::Shared;
                            let d = self.l3.peek_mut(line).expect("present");
                            d.presence |= my_bit;
                            d.owner = None;
                            d.dirty = true; // M data written back into L3
                            new_state = MesiState::Shared;
                        }
                    } else {
                        // Owner holds the line clean (E): serve from L3.
                        result.latency += self.config.l3.latency;
                        result.hit = HitWhere::L3;
                        if is_write {
                            self.invalidate_core(owner, line);
                            result.invalidations += 1;
                            let d = self.l3.peek_mut(line).expect("present");
                            d.presence = my_bit;
                            d.owner = Some(core);
                            new_state = MesiState::Modified;
                        } else {
                            *self.l2[owner.index()].peek_mut(line).expect("present") =
                                MesiState::Shared;
                            let d = self.l3.peek_mut(line).expect("present");
                            d.presence |= my_bit;
                            d.owner = None;
                            new_state = MesiState::Shared;
                        }
                    }
                }
                _ => {
                    // No remote owner: serve from L3.
                    result.latency += self.config.l3.latency;
                    result.hit = HitWhere::L3;
                    if is_write {
                        result.invalidations += self.invalidate_others(core, line);
                        let d = self.l3.peek_mut(line).expect("present");
                        d.presence = my_bit;
                        d.owner = Some(core);
                        new_state = MesiState::Modified;
                    } else {
                        let d = self.l3.peek_mut(line).expect("present");
                        if d.presence == 0 {
                            d.owner = Some(core);
                            new_state = MesiState::Exclusive;
                        } else {
                            new_state = MesiState::Shared;
                        }
                        d.presence |= my_bit;
                    }
                }
            }
        } else {
            // L3 miss: fetch from memory, allocate in L3.
            result.latency += self.config.mem_latency;
            result.hit = HitWhere::Memory;
            new_state = if is_write {
                MesiState::Modified
            } else {
                MesiState::Exclusive
            };
            let entry = DirEntry {
                presence: my_bit,
                owner: Some(core),
                dirty: false,
            };
            if let Some((victim_line, victim)) = self.l3.insert(line, entry) {
                self.evict_l3_victim(victim_line, victim);
            }
        }
        self.fill_l2(core, line, new_state);
    }

    /// Pulls `line` into `core`'s L2 with read intent, off the critical
    /// path (no latency charged, no sharing-tracker update, no PMU-visible
    /// HITM). A prefetch that hits a remote Modified line downgrades it —
    /// the "stolen" HITM the retired-load counter will now never see.
    fn prefetch(&mut self, core: CoreId, line: u64) {
        if self.l1[core.index()].contains(line) || self.l2[core.index()].contains(line) {
            return;
        }
        self.stats.prefetches += 1;
        let my_bit = 1u64 << core.index();
        let new_state;
        if let Some(dir) = self.l3.get_mut(line) {
            let dir = *dir;
            match dir.owner {
                Some(owner) if owner != core => {
                    let owner_state = *self.l2[owner.index()]
                        .peek(line)
                        .expect("directory owner must hold the line");
                    if owner_state == MesiState::Modified {
                        self.stats.prefetch_steals += 1;
                    }
                    *self.l2[owner.index()].peek_mut(line).expect("present") = MesiState::Shared;
                    let d = self.l3.peek_mut(line).expect("present");
                    d.presence |= my_bit;
                    d.owner = None;
                    if owner_state == MesiState::Modified {
                        d.dirty = true;
                    }
                    new_state = MesiState::Shared;
                }
                _ => {
                    let d = self.l3.peek_mut(line).expect("present");
                    if d.presence == 0 {
                        d.owner = Some(core);
                        new_state = MesiState::Exclusive;
                    } else {
                        new_state = MesiState::Shared;
                    }
                    d.presence |= my_bit;
                }
            }
        } else {
            new_state = MesiState::Exclusive;
            let entry = DirEntry {
                presence: my_bit,
                owner: Some(core),
                dirty: false,
            };
            if let Some((victim_line, victim)) = self.l3.insert(line, entry) {
                self.evict_l3_victim(victim_line, victim);
            }
        }
        self.fill_l2(core, line, new_state);
    }

    /// Installs `line` in `core`'s L2, handling the eviction of the victim
    /// (directory update, writeback accounting, L1 back-invalidation).
    fn fill_l2(&mut self, core: CoreId, line: u64, state: MesiState) {
        if let Some((victim_line, victim_state)) = self.l2[core.index()].insert(line, state) {
            self.stats.per_core[core.index()].l2_evictions += 1;
            // Inclusion: the L1 copy (if any) goes too.
            self.l1[core.index()].remove(victim_line);
            let dir = self
                .l3
                .peek_mut(victim_line)
                .expect("inclusion: every L2 line has an L3 directory entry");
            dir.presence &= !(1 << core.index());
            if dir.owner == Some(core) {
                dir.owner = None;
            }
            if victim_state == MesiState::Modified {
                self.stats.per_core[core.index()].l2_dirty_evictions += 1;
                dir.dirty = true;
            }
        }
    }

    /// Installs `line` in `core`'s L1 (silent victim, data still in L2).
    fn fill_l1(&mut self, core: CoreId, line: u64) {
        let _ = self.l1[core.index()].insert(line, ());
    }

    /// Invalidates `line` from every private cache except `core`'s,
    /// returning how many copies were dropped.
    fn invalidate_others(&mut self, core: CoreId, line: u64) -> u32 {
        let dir = match self.l3.peek(line) {
            Some(d) => *d,
            None => return 0,
        };
        let mut dropped = 0;
        // Iterate set presence bits directly instead of scanning all cores.
        let mut mask = dir.presence & !(1u64 << core.index());
        while mask != 0 {
            let i = mask.trailing_zeros();
            mask &= mask - 1;
            self.invalidate_core(CoreId(i), line);
            dropped += 1;
        }
        dropped
    }

    /// Drops `line` from one core's private caches.
    fn invalidate_core(&mut self, core: CoreId, line: u64) {
        self.l1[core.index()].remove(line);
        self.l2[core.index()].remove(line);
        self.stats.per_core[core.index()].invalidations_received += 1;
    }

    /// Handles an L3 eviction: back-invalidates every private copy
    /// (inclusion) and writes dirty data to memory.
    fn evict_l3_victim(&mut self, victim_line: u64, victim: DirEntry) {
        self.stats.l3_evictions += 1;
        let mut dirty = victim.dirty;
        let mut mask = victim.presence;
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if self.l2[i].peek(victim_line) == Some(&MesiState::Modified) {
                dirty = true;
            }
            self.invalidate_core(CoreId(i as u32), victim_line);
            self.stats.back_invalidations += 1;
        }
        if dirty {
            self.stats.memory_writebacks += 1;
        }
    }

    /// Verifies the structural invariants of the hierarchy. Intended for
    /// tests; cost is proportional to total cached lines.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (c, l1) in self.l1.iter().enumerate() {
            for (line, _) in l1.iter() {
                if !self.l2[c].contains(line) {
                    return Err(format!(
                        "L1 of core {c} holds line {line:#x} missing from L2"
                    ));
                }
            }
        }
        for (c, l2) in self.l2.iter().enumerate() {
            for (line, state) in l2.iter() {
                let Some(dir) = self.l3.peek(line) else {
                    return Err(format!(
                        "L2 of core {c} holds line {line:#x} missing from L3"
                    ));
                };
                if dir.presence & (1 << c) == 0 {
                    return Err(format!(
                        "directory presence for line {line:#x} misses core {c}"
                    ));
                }
                match state {
                    MesiState::Modified | MesiState::Exclusive => {
                        if dir.owner != Some(CoreId(c as u32)) {
                            return Err(format!(
                                "line {line:#x} is {state} in core {c} but directory owner is {:?}",
                                dir.owner
                            ));
                        }
                        if dir.presence.count_ones() != 1 {
                            return Err(format!(
                                "line {line:#x} is {state} but has {} sharers",
                                dir.presence.count_ones()
                            ));
                        }
                    }
                    MesiState::Shared => {
                        if dir.owner == Some(CoreId(c as u32)) {
                            return Err(format!(
                                "line {line:#x} is S in core {c} yet core {c} is owner"
                            ));
                        }
                    }
                    MesiState::Invalid => {
                        return Err(format!("line {line:#x} stored as Invalid in core {c}"));
                    }
                }
            }
        }
        // Directory presence bits must be backed by actual L2 contents.
        for (line, dir) in self.l3.iter() {
            for c in 0..self.config.cores {
                if dir.presence & (1 << c) != 0 && !self.l2[c].contains(line) {
                    return Err(format!(
                        "directory says core {c} holds line {line:#x} but its L2 does not"
                    ));
                }
            }
            if let Some(owner) = dir.owner {
                if dir.presence & (1 << owner.index()) == 0 {
                    return Err(format!(
                        "directory owner {owner} of line {line:#x} is not present"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);
    const C2: CoreId = CoreId(2);

    fn mem(cores: usize) -> CacheHierarchy {
        CacheHierarchy::new(CacheConfig::nehalem(cores))
    }

    #[test]
    fn cold_read_goes_to_memory_then_hits_l1() {
        let mut m = mem(2);
        let a = Addr(0x1000);
        let r1 = m.access(C0, a, AccessKind::Read);
        assert_eq!(r1.hit, HitWhere::Memory);
        assert_eq!(r1.latency, 200);
        let r2 = m.access(C0, a, AccessKind::Read);
        assert_eq!(r2.hit, HitWhere::L1);
        assert_eq!(r2.latency, 4);
        m.check_invariants().unwrap();
    }

    #[test]
    fn write_read_across_cores_is_hitm() {
        let mut m = mem(2);
        let a = Addr(0x1000);
        m.access(C0, a, AccessKind::Write);
        let r = m.access(C1, a, AccessKind::Read);
        assert_eq!(r.hit, HitWhere::RemoteCache);
        assert_eq!(r.hitm_owner, Some(C0));
        assert_eq!(r.latency, 60);
        assert_eq!(r.sharing.0, Some(SharingKind::WriteRead));
        assert_eq!(m.stats().total_hitm_loads(), 1);
        m.check_invariants().unwrap();
        // Both copies are now Shared; a re-read by either is a private hit
        // with no further HITM.
        let r2 = m.access(C0, a, AccessKind::Read);
        assert_eq!(r2.hit, HitWhere::L1);
        assert_eq!(m.stats().total_hitm_loads(), 1);
    }

    #[test]
    fn write_after_remote_write_is_rfo_hitm_not_hitm() {
        let mut m = mem(2);
        let a = Addr(0x1000);
        m.access(C0, a, AccessKind::Write);
        let r = m.access(C1, a, AccessKind::Write);
        assert_eq!(r.hit, HitWhere::RemoteCache);
        assert_eq!(r.hitm_owner, None);
        assert_eq!(r.rfo_hitm_owner, Some(C0));
        assert_eq!(r.invalidations, 1);
        assert_eq!(m.stats().total_hitm_loads(), 0);
        assert_eq!(m.stats().total_rfo_hitms(), 1);
        m.check_invariants().unwrap();
    }

    #[test]
    fn read_read_sharing_is_not_hitm() {
        let mut m = mem(2);
        let a = Addr(0x1000);
        m.access(C0, a, AccessKind::Read);
        let r = m.access(C1, a, AccessKind::Read);
        assert_eq!(r.hit, HitWhere::L3);
        assert_eq!(r.hitm_owner, None);
        assert!(!r.is_true_sharing());
        m.check_invariants().unwrap();
    }

    #[test]
    fn exclusive_read_then_remote_read_served_from_l3() {
        let mut m = mem(2);
        let a = Addr(0x1000);
        m.access(C0, a, AccessKind::Read); // C0 gets E
        let r = m.access(C1, a, AccessKind::Read);
        assert_eq!(r.hit, HitWhere::L3);
        assert_eq!(r.hitm_owner, None);
        m.check_invariants().unwrap();
    }

    #[test]
    fn shared_upgrade_invalidates_other_sharers() {
        let mut m = mem(3);
        let a = Addr(0x1000);
        m.access(C0, a, AccessKind::Read);
        m.access(C1, a, AccessKind::Read);
        m.access(C2, a, AccessKind::Read);
        let r = m.access(C0, a, AccessKind::Write);
        assert_eq!(r.invalidations, 2);
        assert_eq!(r.hit, HitWhere::L1); // upgrade on a present line
        assert!(r.latency >= 4 + 20);
        m.check_invariants().unwrap();
        // The other cores re-read via HITM (C0's copy is now M).
        let r2 = m.access(C1, a, AccessKind::Read);
        assert_eq!(r2.hitm_owner, Some(C0));
    }

    #[test]
    fn silent_e_to_m_upgrade() {
        let mut m = mem(2);
        let a = Addr(0x1000);
        m.access(C0, a, AccessKind::Read); // E
        let r = m.access(C0, a, AccessKind::Write); // E→M, no invalidations
        assert_eq!(r.hit, HitWhere::L1);
        assert_eq!(r.latency, 4);
        assert_eq!(r.invalidations, 0);
        // Remote read now sees modified data: HITM.
        let r2 = m.access(C1, a, AccessKind::Read);
        assert_eq!(r2.hitm_owner, Some(C0));
        m.check_invariants().unwrap();
    }

    #[test]
    fn atomic_rmw_costs_extra_and_is_hitm_visible() {
        let mut m = mem(2);
        let a = Addr(0x1000);
        m.access(C0, a, AccessKind::Write);
        let r = m.access(C1, a, AccessKind::AtomicRmw);
        // The RMW *reads* remote-modified data: counted as a HITM load.
        assert_eq!(r.hitm_owner, Some(C0));
        assert_eq!(r.latency, 60 + 8);
        assert_eq!(r.sharing.0, Some(SharingKind::WriteRead));
        m.check_invariants().unwrap();
    }

    #[test]
    fn eviction_loses_hitm_but_oracle_still_sees_sharing() {
        // Tiny caches: C0 writes a line, then streams enough data to evict
        // it. C1's later read misses to memory/L3 — no HITM — but the
        // ground-truth tracker still reports W→R sharing. This is the core
        // imprecision of the hardware indicator.
        let mut m = CacheHierarchy::new(CacheConfig::tiny(2));
        let target = Addr(0x1000);
        m.access(C0, target, AccessKind::Write);
        // Stream addresses mapping over every set to force eviction.
        for i in 0..64u64 {
            m.access(C0, Addr(0x8000 + i * 64), AccessKind::Write);
        }
        let r = m.access(C1, target, AccessKind::Read);
        assert_eq!(r.hitm_owner, None, "evicted line must not HITM");
        assert_eq!(r.sharing.0, Some(SharingKind::WriteRead));
        assert_eq!(m.stats().sharing.write_read, 1);
        assert_eq!(m.stats().total_hitm_loads(), 0);
        assert!(m.stats().hitm_recall() < 1.0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn l2_dirty_eviction_is_counted() {
        let mut m = CacheHierarchy::new(CacheConfig::tiny(1));
        // Write more distinct lines than the L2 holds (4 sets × 2 ways = 8).
        for i in 0..32u64 {
            m.access(C0, Addr(0x1000 + i * 64), AccessKind::Write);
        }
        assert!(m.stats().per_core[0].l2_dirty_evictions > 0);
        assert!(m.stats().per_core[0].l2_evictions >= m.stats().per_core[0].l2_dirty_evictions);
        m.check_invariants().unwrap();
    }

    #[test]
    fn l3_eviction_back_invalidates() {
        let mut m = CacheHierarchy::new(CacheConfig::tiny(2));
        let a = Addr(0x1000);
        m.access(C0, a, AccessKind::Read);
        m.access(C1, a, AccessKind::Read);
        // Thrash L3 (16 sets × 4 ways = 64 lines) from core 0.
        for i in 0..512u64 {
            m.access(C0, Addr(0x100_000 + i * 64), AccessKind::Read);
        }
        assert!(m.stats().l3_evictions > 0);
        assert!(m.stats().back_invalidations > 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn false_sharing_two_addresses_same_line() {
        let mut m = mem(2);
        // Same 64-byte line, different words.
        let a = Addr(0x1000);
        let b = Addr(0x1008);
        m.access(C0, a, AccessKind::Write);
        let r = m.access(C1, b, AccessKind::Read);
        // Hardware sees line-level sharing even though the program never
        // shared a datum — a (harmless) false-positive source for the
        // indicator.
        assert_eq!(r.hitm_owner, Some(C0));
        assert_eq!(r.sharing.0, Some(SharingKind::WriteRead));
    }

    #[test]
    fn sharing_tracking_can_be_disabled() {
        let mut cfg = CacheConfig::nehalem(2);
        cfg.track_sharing = false;
        let mut m = CacheHierarchy::new(cfg);
        m.access(C0, Addr(0x1000), AccessKind::Write);
        let r = m.access(C1, Addr(0x1000), AccessKind::Read);
        assert_eq!(r.sharing, (None, None));
        assert_eq!(r.hitm_owner, Some(C0)); // HITM unaffected
        assert_eq!(m.stats().sharing.total(), 0);
    }

    #[test]
    fn latency_accounting_accumulates() {
        let mut m = mem(1);
        m.access(C0, Addr(0x1000), AccessKind::Read); // 200
        m.access(C0, Addr(0x1000), AccessKind::Read); // 4
        assert_eq!(m.stats().per_core[0].total_latency, 204);
        assert_eq!(m.stats().per_core[0].accesses, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_panics() {
        let mut m = mem(1);
        m.access(CoreId(1), Addr(0x1000), AccessKind::Read);
    }

    #[test]
    fn prefetch_steals_hide_hitm() {
        let mut cfg = CacheConfig::nehalem(2);
        cfg.prefetch_next_line = true;
        let mut m = CacheHierarchy::new(cfg);
        // C0 writes two consecutive lines.
        m.access(C0, Addr(0x1000), AccessKind::Write);
        m.access(C0, Addr(0x1040), AccessKind::Write);
        // C1's read of the first line is a HITM — and its next-line
        // prefetch downgrades the second line early.
        let r1 = m.access(C1, Addr(0x1000), AccessKind::Read);
        assert_eq!(r1.hitm_owner, Some(C0));
        assert!(m.stats().prefetches >= 1);
        assert_eq!(m.stats().prefetch_steals, 1);
        // The demand read of the second line now hits locally: no HITM,
        // though the ground truth still records the W→R communication.
        let r2 = m.access(C1, Addr(0x1040), AccessKind::Read);
        assert_eq!(r2.hitm_owner, None);
        assert!(matches!(r2.hit, HitWhere::L1 | HitWhere::L2));
        assert_eq!(r2.sharing.0, Some(SharingKind::WriteRead));
        assert_eq!(m.stats().total_hitm_loads(), 1);
        m.check_invariants().unwrap();
    }

    #[test]
    fn prefetch_disabled_by_default() {
        let mut m = mem(2);
        m.access(C0, Addr(0x1000), AccessKind::Read);
        assert_eq!(m.stats().prefetches, 0);
    }

    #[test]
    fn prefetch_preserves_invariants_under_streams() {
        let mut cfg = CacheConfig::tiny(3);
        cfg.prefetch_next_line = true;
        let mut m = CacheHierarchy::new(cfg);
        for i in 0..300u64 {
            let core = CoreId((i % 3) as u32);
            let kind = if i % 2 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            m.access(core, Addr(0x1000 + (i % 40) * 64), kind);
        }
        m.check_invariants().unwrap();
        assert!(m.stats().prefetches > 0);
    }

    #[test]
    fn three_core_migratory_pattern() {
        // A line migrating C0 → C1 → C2 with write-read-write chains.
        let mut m = mem(3);
        let a = Addr(0x40);
        m.access(C0, a, AccessKind::Write);
        assert_eq!(m.access(C1, a, AccessKind::Read).hitm_owner, Some(C0));
        assert_eq!(m.access(C1, a, AccessKind::Write).invalidations, 1); // S→M upgrade drops C0
        assert_eq!(m.access(C2, a, AccessKind::Read).hitm_owner, Some(C1));
        m.check_invariants().unwrap();
        assert_eq!(m.stats().total_hitm_loads(), 2);
    }
}
