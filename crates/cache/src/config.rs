//! Cache hierarchy configuration.

/// Geometry of one cache level.
///
/// # Examples
///
/// ```
/// use ddrace_cache::LevelConfig;
/// let l1 = LevelConfig { sets: 64, ways: 8, latency: 4 };
/// assert_eq!(l1.lines(), 512);
/// assert_eq!(l1.capacity_bytes(64), 32 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LevelConfig {
    /// Number of sets. Must be a power of two.
    pub sets: usize,
    /// Associativity (lines per set).
    pub ways: usize,
    /// Access latency in cycles.
    pub latency: u32,
}

impl LevelConfig {
    /// Total number of line slots in the level.
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Capacity in bytes for a given line size.
    pub fn capacity_bytes(&self, line_size: u64) -> u64 {
        self.lines() as u64 * line_size
    }

    /// Validates the geometry, panicking with a descriptive message if it
    /// is unusable.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either dimension is zero.
    pub fn validate(&self, name: &str) {
        assert!(
            self.sets.is_power_of_two(),
            "{name}: sets must be a power of two"
        );
        assert!(self.ways > 0, "{name}: ways must be positive");
    }
}

/// Full configuration of the simulated memory system.
///
/// Defaults model a Nehalem-class part, the microarchitecture the paper's
/// `MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM` event belongs to: 32 KiB L1 and
/// 256 KiB L2 per core, shared inclusive 8 MiB L3, 64-byte lines.
///
/// # Examples
///
/// ```
/// use ddrace_cache::CacheConfig;
/// let cfg = CacheConfig::nehalem(8);
/// assert_eq!(cfg.cores, 8);
/// assert_eq!(cfg.line_size, 64);
/// let tiny = CacheConfig::tiny(2);
/// assert!(tiny.l1.lines() < cfg.l1.lines());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of cores (each with a private L1 and L2). At most 64.
    pub cores: usize,
    /// Cache line size in bytes. Must be a power of two.
    pub line_size: u64,
    /// Private L1 geometry.
    pub l1: LevelConfig,
    /// Private L2 geometry.
    pub l2: LevelConfig,
    /// Shared, inclusive L3 geometry.
    pub l3: LevelConfig,
    /// Main memory latency in cycles.
    pub mem_latency: u32,
    /// Cache-to-cache (HITM) transfer latency in cycles.
    pub c2c_latency: u32,
    /// Extra cycles for an S→M upgrade (invalidation round-trip).
    pub upgrade_latency: u32,
    /// Extra cycles for an atomic (locked) access.
    pub atomic_latency: u32,
    /// Whether to maintain the ground-truth sharing tracker (the oracle
    /// indicator). Costs one hash-map lookup per access.
    pub track_sharing: bool,
    /// Enable the next-line hardware prefetcher: every private-cache miss
    /// also pulls the following line into the requesting core's L2.
    /// Prefetches that hit a remote **modified** line downgrade it early,
    /// so the later demand load hits locally and the PMU's retired-load
    /// HITM event never fires — a real-hardware perturbation of the
    /// paper's indicator.
    pub prefetch_next_line: bool,
}

impl CacheConfig {
    /// Nehalem-class configuration for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is 0 or greater than 64.
    pub fn nehalem(cores: usize) -> Self {
        let cfg = CacheConfig {
            cores,
            line_size: 64,
            l1: LevelConfig {
                sets: 64,
                ways: 8,
                latency: 4,
            },
            l2: LevelConfig {
                sets: 512,
                ways: 8,
                latency: 12,
            },
            l3: LevelConfig {
                sets: 8192,
                ways: 16,
                latency: 40,
            },
            mem_latency: 200,
            c2c_latency: 60,
            upgrade_latency: 20,
            atomic_latency: 8,
            track_sharing: true,
            prefetch_next_line: false,
        };
        cfg.validate();
        cfg
    }

    /// A deliberately tiny hierarchy for unit tests: high eviction pressure
    /// with only a handful of accesses.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is 0 or greater than 64.
    pub fn tiny(cores: usize) -> Self {
        let cfg = CacheConfig {
            cores,
            line_size: 64,
            l1: LevelConfig {
                sets: 2,
                ways: 2,
                latency: 4,
            },
            l2: LevelConfig {
                sets: 4,
                ways: 2,
                latency: 12,
            },
            l3: LevelConfig {
                sets: 16,
                ways: 4,
                latency: 40,
            },
            mem_latency: 200,
            c2c_latency: 60,
            upgrade_latency: 20,
            atomic_latency: 8,
            track_sharing: true,
            prefetch_next_line: false,
        };
        cfg.validate();
        cfg
    }

    /// Validates the whole configuration.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is unusable, if `cores` is 0 or exceeds 64
    /// (the directory presence mask is a `u64`), or if the L3 is smaller
    /// than a single private L2 (inclusion would thrash pathologically).
    pub fn validate(&self) {
        assert!(
            self.cores >= 1 && self.cores <= 64,
            "cores must be in 1..=64"
        );
        assert!(
            self.line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        self.l1.validate("L1");
        self.l2.validate("L2");
        self.l3.validate("L3");
        assert!(
            self.l3.lines() >= self.l2.lines(),
            "inclusive L3 must be at least as large as one private L2"
        );
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::nehalem(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nehalem_capacities() {
        let cfg = CacheConfig::nehalem(4);
        assert_eq!(cfg.l1.capacity_bytes(cfg.line_size), 32 * 1024);
        assert_eq!(cfg.l2.capacity_bytes(cfg.line_size), 256 * 1024);
        assert_eq!(cfg.l3.capacity_bytes(cfg.line_size), 8 * 1024 * 1024);
    }

    #[test]
    fn default_is_nehalem_8() {
        assert_eq!(CacheConfig::default(), CacheConfig::nehalem(8));
    }

    #[test]
    #[should_panic(expected = "cores must be in 1..=64")]
    fn zero_cores_rejected() {
        CacheConfig {
            cores: 0,
            ..CacheConfig::nehalem(1)
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "cores must be in 1..=64")]
    fn too_many_cores_rejected() {
        CacheConfig {
            cores: 65,
            ..CacheConfig::nehalem(1)
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_sets_rejected() {
        let mut cfg = CacheConfig::tiny(1);
        cfg.l1.sets = 3;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "inclusive L3")]
    fn l3_smaller_than_l2_rejected() {
        let mut cfg = CacheConfig::tiny(1);
        cfg.l3 = LevelConfig {
            sets: 1,
            ways: 1,
            latency: 40,
        };
        cfg.validate();
    }
}

ddrace_json::json_struct!(LevelConfig {
    sets,
    ways,
    latency
});
ddrace_json::json_struct!(CacheConfig {
    cores,
    line_size,
    l1,
    l2,
    l3,
    mem_latency,
    c2c_latency,
    upgrade_latency,
    atomic_latency,
    track_sharing,
    prefetch_next_line
});
