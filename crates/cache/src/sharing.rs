//! Ground-truth inter-core sharing tracker: the "oracle" indicator.
//!
//! Unlike the caches, this tracker never forgets: it remembers the last
//! writer of every line ever touched, so it reports **every** W→R, W→W and
//! R→W communication — including those the hardware HITM counter misses
//! because the modified line was evicted before the consumer arrived.
//! The paper's idealized "perfect sharing detector" comparison point is
//! built from this.

use crate::event::{CoreId, SharingKind};
use ddrace_shadow::ShadowTable;

#[derive(Debug, Clone, Copy, Default)]
struct LineHistory {
    /// The core that performed the most recent write, if any.
    last_writer: Option<CoreId>,
    /// Bitmask of cores that have read the line since the last write.
    readers_since_write: u64,
}

/// Tracks, per cache line, which core last wrote it and who has read it
/// since, and classifies every access's inter-core communication.
///
/// # Examples
///
/// ```
/// use ddrace_cache::{SharingTracker, SharingKind, CoreId};
/// let mut t = SharingTracker::new();
/// assert_eq!(t.on_write(CoreId(0), 7), (None, None));
/// // First read by another core: a W→R communication.
/// assert_eq!(t.on_read(CoreId(1), 7), Some(SharingKind::WriteRead));
/// // Re-reading is not new communication.
/// assert_eq!(t.on_read(CoreId(1), 7), None);
/// // The original writer overwriting data a remote core has read is R→W;
/// // a third core overwriting is W→W (and R→W, since core 1 read it).
/// assert_eq!(
///     t.on_write(CoreId(0), 7),
///     (None, Some(SharingKind::ReadWrite)),
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharingTracker {
    lines: ShadowTable<LineHistory>,
    counts: SharingCounts,
}

/// Totals of ground-truth sharing events by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharingCounts {
    /// Write→read communications.
    pub write_read: u64,
    /// Write→write communications.
    pub write_write: u64,
    /// Read→write communications.
    pub read_write: u64,
}

impl SharingCounts {
    /// Total communications of any kind.
    pub fn total(&self) -> u64 {
        self.write_read + self.write_write + self.read_write
    }
}

impl SharingTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read of `line` by `core`; returns the W→R event if this
    /// is the first read by this core since a remote write.
    pub fn on_read(&mut self, core: CoreId, line: u64) -> Option<SharingKind> {
        let h = self.lines.get_or_insert_with(line, LineHistory::default);
        let bit = 1u64 << core.index();
        let fresh = h.readers_since_write & bit == 0;
        h.readers_since_write |= bit;
        match h.last_writer {
            Some(w) if w != core && fresh => {
                self.counts.write_read += 1;
                Some(SharingKind::WriteRead)
            }
            _ => None,
        }
    }

    /// Records a write of `line` by `core`; returns the (W→W, R→W) events
    /// it constitutes, if any.
    pub fn on_write(
        &mut self,
        core: CoreId,
        line: u64,
    ) -> (Option<SharingKind>, Option<SharingKind>) {
        let h = self.lines.get_or_insert_with(line, LineHistory::default);
        let bit = 1u64 << core.index();
        let ww = match h.last_writer {
            Some(w) if w != core => {
                self.counts.write_write += 1;
                Some(SharingKind::WriteWrite)
            }
            _ => None,
        };
        let remote_readers = h.readers_since_write & !bit;
        let rw = if remote_readers != 0 {
            self.counts.read_write += 1;
            Some(SharingKind::ReadWrite)
        } else {
            None
        };
        h.last_writer = Some(core);
        h.readers_since_write = 0;
        (ww, rw)
    }

    /// The totals accumulated so far.
    pub fn counts(&self) -> SharingCounts {
        self.counts
    }

    /// Number of distinct lines ever touched.
    pub fn lines_tracked(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);
    const C2: CoreId = CoreId(2);

    #[test]
    fn private_data_never_shares() {
        let mut t = SharingTracker::new();
        for i in 0..100 {
            assert_eq!(t.on_write(C0, i), (None, None));
            assert_eq!(t.on_read(C0, i), None);
            assert_eq!(t.on_write(C0, i), (None, None));
        }
        assert_eq!(t.counts().total(), 0);
        assert_eq!(t.lines_tracked(), 100);
    }

    #[test]
    fn write_read_fires_once_per_reader() {
        let mut t = SharingTracker::new();
        t.on_write(C0, 5);
        assert_eq!(t.on_read(C1, 5), Some(SharingKind::WriteRead));
        assert_eq!(t.on_read(C1, 5), None);
        assert_eq!(t.on_read(C2, 5), Some(SharingKind::WriteRead));
        assert_eq!(t.counts().write_read, 2);
    }

    #[test]
    fn own_write_then_read_is_not_sharing() {
        let mut t = SharingTracker::new();
        t.on_write(C0, 5);
        assert_eq!(t.on_read(C0, 5), None);
    }

    #[test]
    fn read_before_any_write_is_not_sharing() {
        let mut t = SharingTracker::new();
        assert_eq!(t.on_read(C1, 5), None);
    }

    #[test]
    fn write_after_remote_write_is_ww() {
        let mut t = SharingTracker::new();
        t.on_write(C0, 5);
        let (ww, rw) = t.on_write(C1, 5);
        assert_eq!(ww, Some(SharingKind::WriteWrite));
        assert_eq!(rw, None);
        assert_eq!(t.counts().write_write, 1);
    }

    #[test]
    fn write_after_remote_read_is_rw() {
        let mut t = SharingTracker::new();
        t.on_write(C0, 5);
        t.on_read(C1, 5);
        // C0 overwrites its own data that C1 has read: R→W but not W→W.
        let (ww, rw) = t.on_write(C0, 5);
        assert_eq!(ww, None);
        assert_eq!(rw, Some(SharingKind::ReadWrite));
    }

    #[test]
    fn write_resets_reader_set() {
        let mut t = SharingTracker::new();
        t.on_write(C0, 5);
        t.on_read(C1, 5);
        t.on_write(C0, 5); // resets readers
                           // C1 reading again is a fresh W→R communication.
        assert_eq!(t.on_read(C1, 5), Some(SharingKind::WriteRead));
    }

    #[test]
    fn ping_pong_counts_every_round() {
        let mut t = SharingTracker::new();
        t.on_write(C0, 9);
        for _ in 0..10 {
            assert_eq!(t.on_read(C1, 9), Some(SharingKind::WriteRead));
            // The writer is also the most recent reader, so no R→W — but the
            // previous writer was remote, so W→W fires.
            assert_eq!(t.on_write(C1, 9), (Some(SharingKind::WriteWrite), None));
            assert_eq!(t.on_read(C0, 9), Some(SharingKind::WriteRead));
            assert_eq!(t.on_write(C0, 9), (Some(SharingKind::WriteWrite), None));
        }
        assert_eq!(t.counts().write_read, 20);
        assert_eq!(t.counts().write_write, 20);
        assert_eq!(t.counts().read_write, 0);
        assert_eq!(t.counts().total(), 40);
    }

    #[test]
    fn remote_reader_then_third_core_write_is_rw_and_ww() {
        let mut t = SharingTracker::new();
        t.on_write(C0, 9);
        t.on_read(C1, 9);
        let (ww, rw) = t.on_write(C2, 9);
        assert_eq!(ww, Some(SharingKind::WriteWrite));
        assert_eq!(rw, Some(SharingKind::ReadWrite));
    }
}

ddrace_json::json_struct!(SharingCounts {
    write_read,
    write_write,
    read_write
});
