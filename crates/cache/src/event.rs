//! Per-access outcomes and coherence events.

use std::fmt;

/// Identifier of a core in the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u32);

impl CoreId {
    /// Creates a core id from a dense index.
    pub fn new(index: u32) -> Self {
        CoreId(index)
    }

    /// Returns the dense index of this core id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Where in the hierarchy an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitWhere {
    /// Private L1 hit.
    L1,
    /// Private L2 hit.
    L2,
    /// Shared L3 hit (no remote modified copy).
    L3,
    /// Served by another core's private cache holding the line Modified —
    /// a cache-to-cache "HITM" transfer.
    RemoteCache,
    /// Served by main memory.
    Memory,
}

impl HitWhere {
    /// Returns `true` if the access missed the entire cache hierarchy.
    pub fn is_memory(self) -> bool {
        self == HitWhere::Memory
    }

    /// Returns `true` if the access left the requesting core's private
    /// caches (L3, remote cache, or memory).
    pub fn left_core(self) -> bool {
        !matches!(self, HitWhere::L1 | HitWhere::L2)
    }
}

/// The kind of program-level inter-thread sharing an access exhibited,
/// according to the ground-truth tracker (which never forgets, unlike the
/// caches).
///
/// Events fire once per communication: a W→R fires the first time each
/// remote core reads a given write, not on every subsequent re-read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharingKind {
    /// This read observed data last written by another core.
    WriteRead,
    /// This write overwrote data last written by another core.
    WriteWrite,
    /// This write overwrote data read (since the last write) by another
    /// core.
    ReadWrite,
}

impl fmt::Display for SharingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SharingKind::WriteRead => "W→R",
            SharingKind::WriteWrite => "W→W",
            SharingKind::ReadWrite => "R→W",
        };
        f.write_str(s)
    }
}

/// Everything the memory system reports about one access.
///
/// `hitm_owner` is the signal behind the paper's mechanism: it is `Some`
/// exactly when this access was a **load served by a remote modified
/// line** — the event a Nehalem PMU counts as
/// `MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM`. Write misses that hit a remote
/// modified line are reported separately in `rfo_hitm_owner` because the
/// hardware load event does *not* count them (a key imprecision the paper
/// works around).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total latency of the access in cycles.
    pub latency: u32,
    /// Where the access was satisfied.
    pub hit: HitWhere,
    /// The cache line (line address) touched.
    pub line: u64,
    /// `Some(owner)` if this was a load served by `owner`'s modified line.
    pub hitm_owner: Option<CoreId>,
    /// `Some(owner)` if this was a store whose ownership request hit
    /// `owner`'s modified line.
    pub rfo_hitm_owner: Option<CoreId>,
    /// Remote private-cache copies invalidated by this access.
    pub invalidations: u32,
    /// Ground-truth sharing exhibited by this access, if tracking is on.
    /// A write can exhibit both W→W and R→W; the tuple covers that.
    pub sharing: (Option<SharingKind>, Option<SharingKind>),
}

impl AccessResult {
    /// Returns `true` if this access produced the PMU-visible HITM load
    /// event.
    pub fn is_hitm_load(&self) -> bool {
        self.hitm_owner.is_some()
    }

    /// Returns `true` if the ground-truth tracker saw any inter-thread
    /// sharing on this access.
    pub fn is_true_sharing(&self) -> bool {
        self.sharing.0.is_some() || self.sharing.1.is_some()
    }

    /// Iterates over the (0, 1, or 2) sharing kinds this access exhibited.
    pub fn sharing_kinds(&self) -> impl Iterator<Item = SharingKind> {
        self.sharing.0.into_iter().chain(self.sharing.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_basics() {
        assert_eq!(CoreId::new(3).index(), 3);
        assert_eq!(format!("{}", CoreId(5)), "C5");
    }

    #[test]
    fn hit_where_predicates() {
        assert!(HitWhere::Memory.is_memory());
        assert!(!HitWhere::L3.is_memory());
        assert!(HitWhere::L3.left_core());
        assert!(HitWhere::RemoteCache.left_core());
        assert!(HitWhere::Memory.left_core());
        assert!(!HitWhere::L1.left_core());
        assert!(!HitWhere::L2.left_core());
    }

    #[test]
    fn sharing_kind_display() {
        assert_eq!(format!("{}", SharingKind::WriteRead), "W→R");
        assert_eq!(format!("{}", SharingKind::WriteWrite), "W→W");
        assert_eq!(format!("{}", SharingKind::ReadWrite), "R→W");
    }

    #[test]
    fn access_result_predicates() {
        let base = AccessResult {
            latency: 4,
            hit: HitWhere::L1,
            line: 0,
            hitm_owner: None,
            rfo_hitm_owner: None,
            invalidations: 0,
            sharing: (None, None),
        };
        assert!(!base.is_hitm_load());
        assert!(!base.is_true_sharing());
        assert_eq!(base.sharing_kinds().count(), 0);

        let hitm = AccessResult {
            hitm_owner: Some(CoreId(1)),
            ..base
        };
        assert!(hitm.is_hitm_load());

        let shared = AccessResult {
            sharing: (Some(SharingKind::WriteWrite), Some(SharingKind::ReadWrite)),
            ..base
        };
        assert!(shared.is_true_sharing());
        assert_eq!(
            shared.sharing_kinds().collect::<Vec<_>>(),
            vec![SharingKind::WriteWrite, SharingKind::ReadWrite]
        );
    }
}

ddrace_json::json_newtype!(CoreId);
ddrace_json::json_unit_enum!(HitWhere {
    L1,
    L2,
    L3,
    RemoteCache,
    Memory
});
ddrace_json::json_unit_enum!(SharingKind {
    WriteRead,
    WriteWrite,
    ReadWrite
});
ddrace_json::json_struct!(AccessResult {
    latency,
    hit,
    line,
    hitm_owner,
    rfo_hitm_owner,
    invalidations,
    sharing
});
