//! Generic set-associative cache array with true-LRU replacement.
//!
//! Used for every level: L1 arrays store only presence, L2 arrays store
//! MESI state, the L3 array stores directory entries. The payload is a
//! type parameter so each level attaches exactly the metadata it needs.

use crate::config::LevelConfig;

/// One occupied slot: a line address plus level-specific metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Slot<T> {
    line: u64,
    lru: u64,
    data: T,
}

/// A set-associative array indexed by cache-line address, with true-LRU
/// replacement within each set.
///
/// Keys are *line addresses* (byte address divided by line size); the
/// array itself is agnostic to line size.
///
/// # Examples
///
/// ```
/// use ddrace_cache::{CacheArray, LevelConfig};
/// let mut a: CacheArray<u32> = CacheArray::new(LevelConfig { sets: 2, ways: 1, latency: 1 });
/// assert!(a.insert(0, 7).is_none());
/// // Same set (set index = line % sets): line 2 evicts line 0.
/// let evicted = a.insert(2, 9).unwrap();
/// assert_eq!(evicted, (0, 7));
/// assert!(a.get(0).is_none());
/// assert_eq!(a.get(2), Some(&9));
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray<T> {
    sets: Vec<Vec<Slot<T>>>,
    ways: usize,
    set_mask: u64,
    tick: u64,
}

impl<T> CacheArray<T> {
    /// Creates an empty array with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`LevelConfig::validate`]).
    pub fn new(config: LevelConfig) -> Self {
        config.validate("cache array");
        CacheArray {
            sets: (0..config.sets)
                .map(|_| Vec::with_capacity(config.ways))
                .collect(),
            ways: config.ways,
            set_mask: (config.sets - 1) as u64,
            tick: 0,
        }
    }

    fn set_index(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Looks up `line`, refreshing its LRU position on hit.
    pub fn get(&mut self, line: u64) -> Option<&T> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(line);
        self.sets[set].iter_mut().find(|s| s.line == line).map(|s| {
            s.lru = tick;
            &s.data
        })
    }

    /// Looks up `line` mutably, refreshing its LRU position on hit.
    pub fn get_mut(&mut self, line: u64) -> Option<&mut T> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(line);
        self.sets[set].iter_mut().find(|s| s.line == line).map(|s| {
            s.lru = tick;
            &mut s.data
        })
    }

    /// Looks up `line` without touching LRU state (a snoop, not an access).
    pub fn peek(&self, line: u64) -> Option<&T> {
        let set = self.set_index(line);
        self.sets[set]
            .iter()
            .find(|s| s.line == line)
            .map(|s| &s.data)
    }

    /// Like [`peek`](Self::peek) but mutable; still does not touch LRU.
    pub fn peek_mut(&mut self, line: u64) -> Option<&mut T> {
        let set = self.set_index(line);
        self.sets[set]
            .iter_mut()
            .find(|s| s.line == line)
            .map(|s| &mut s.data)
    }

    /// Inserts `line` with `data`, returning the evicted `(line, data)` if
    /// the set was full. If the line is already present its data is
    /// replaced and nothing is evicted.
    pub fn insert(&mut self, line: u64, data: T) -> Option<(u64, T)> {
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_index(line);
        let ways = self.ways;
        let set = &mut self.sets[set_idx];
        if let Some(slot) = set.iter_mut().find(|s| s.line == line) {
            slot.data = data;
            slot.lru = tick;
            return None;
        }
        let evicted = if set.len() == ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.lru)
                .map(|(i, _)| i)
                .expect("full set has a victim");
            let slot = set.swap_remove(victim);
            Some((slot.line, slot.data))
        } else {
            None
        };
        set.push(Slot {
            line,
            lru: tick,
            data,
        });
        evicted
    }

    /// Removes `line`, returning its data if present.
    pub fn remove(&mut self, line: u64) -> Option<T> {
        let set_idx = self.set_index(line);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|s| s.line == line)?;
        Some(set.swap_remove(pos).data)
    }

    /// Returns `true` if `line` is present (no LRU effect).
    pub fn contains(&self, line: u64) -> bool {
        self.peek(line).is_some()
    }

    /// Number of occupied slots across all sets.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no lines are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all `(line, data)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.sets.iter().flatten().map(|s| (s.line, &s.data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray<u32> {
        CacheArray::new(LevelConfig {
            sets: 2,
            ways: 2,
            latency: 1,
        })
    }

    #[test]
    fn insert_and_get() {
        let mut a = small();
        assert!(a.is_empty());
        assert!(a.insert(10, 1).is_none());
        assert_eq!(a.get(10), Some(&1));
        assert_eq!(a.peek(10), Some(&1));
        assert!(a.get(11).is_none());
        assert_eq!(a.len(), 1);
        assert!(a.contains(10));
        assert!(!a.contains(11));
    }

    #[test]
    fn reinsert_replaces_without_evicting() {
        let mut a = small();
        a.insert(10, 1);
        assert!(a.insert(10, 2).is_none());
        assert_eq!(a.get(10), Some(&2));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut a = small();
        // Lines 0, 2, 4 all map to set 0 (even lines, 2 sets).
        a.insert(0, 10);
        a.insert(2, 12);
        // Touch line 0 so line 2 is LRU.
        assert_eq!(a.get(0), Some(&10));
        let evicted = a.insert(4, 14).unwrap();
        assert_eq!(evicted, (2, 12));
        assert!(a.contains(0));
        assert!(a.contains(4));
    }

    #[test]
    fn peek_does_not_refresh_lru() {
        let mut a = small();
        a.insert(0, 10);
        a.insert(2, 12);
        // Peek at 0; it stays LRU, so it is the victim.
        assert_eq!(a.peek(0), Some(&10));
        let evicted = a.insert(4, 14).unwrap();
        assert_eq!(evicted.0, 0);
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut a = small();
        a.insert(0, 1); // set 0
        a.insert(1, 2); // set 1
        a.insert(2, 3); // set 0
        a.insert(3, 4); // set 1
        assert_eq!(a.len(), 4);
        assert!(a.insert(5, 6).is_some()); // set 1 overflows
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn remove_works() {
        let mut a = small();
        a.insert(0, 1);
        assert_eq!(a.remove(0), Some(1));
        assert_eq!(a.remove(0), None);
        assert!(a.is_empty());
    }

    #[test]
    fn get_mut_mutates() {
        let mut a = small();
        a.insert(0, 1);
        *a.get_mut(0).unwrap() = 9;
        assert_eq!(a.peek(0), Some(&9));
        *a.peek_mut(0).unwrap() = 11;
        assert_eq!(a.peek(0), Some(&11));
    }

    #[test]
    fn iter_visits_all() {
        let mut a = small();
        a.insert(0, 1);
        a.insert(1, 2);
        let mut pairs: Vec<(u64, u32)> = a.iter().map(|(l, d)| (l, *d)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 2)]);
    }
}
