//! MESI coherence states.

use std::fmt;

/// The MESI state of a line in a private cache.
///
/// `Invalid` doubles as "not present"; the arrays never store `Invalid`
/// slots explicitly.
///
/// # Examples
///
/// ```
/// use ddrace_cache::MesiState;
/// assert!(MesiState::Modified.is_dirty());
/// assert!(MesiState::Exclusive.can_write_silently());
/// assert!(!MesiState::Shared.can_write_silently());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MesiState {
    /// Only copy, dirty with respect to lower levels.
    Modified,
    /// Only copy, clean.
    Exclusive,
    /// Possibly one of several copies, clean.
    Shared,
    /// Not present / stale.
    Invalid,
}

impl MesiState {
    /// Returns `true` if the line holds data newer than lower levels.
    pub fn is_dirty(self) -> bool {
        self == MesiState::Modified
    }

    /// Returns `true` if a write can proceed without a coherence
    /// transaction (M or E).
    pub fn can_write_silently(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }

    /// Returns `true` if the line is present (not `Invalid`).
    pub fn is_present(self) -> bool {
        self != MesiState::Invalid
    }
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            MesiState::Modified => 'M',
            MesiState::Exclusive => 'E',
            MesiState::Shared => 'S',
            MesiState::Invalid => 'I',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        assert!(MesiState::Modified.is_dirty());
        assert!(!MesiState::Exclusive.is_dirty());
        assert!(!MesiState::Shared.is_dirty());
        assert!(!MesiState::Invalid.is_dirty());

        assert!(MesiState::Modified.can_write_silently());
        assert!(MesiState::Exclusive.can_write_silently());
        assert!(!MesiState::Shared.can_write_silently());
        assert!(!MesiState::Invalid.can_write_silently());

        assert!(MesiState::Modified.is_present());
        assert!(MesiState::Exclusive.is_present());
        assert!(MesiState::Shared.is_present());
        assert!(!MesiState::Invalid.is_present());
    }

    #[test]
    fn display_single_letters() {
        assert_eq!(format!("{}", MesiState::Modified), "M");
        assert_eq!(format!("{}", MesiState::Exclusive), "E");
        assert_eq!(format!("{}", MesiState::Shared), "S");
        assert_eq!(format!("{}", MesiState::Invalid), "I");
    }
}

ddrace_json::json_unit_enum!(MesiState {
    Modified,
    Exclusive,
    Shared,
    Invalid
});
