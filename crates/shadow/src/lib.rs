//! # ddrace-shadow — the open-addressed shadow-memory table
//!
//! Every analyzed memory access pays one lookup in a `u64 → V` map: the
//! race detectors keep per-location [`VarState`]s keyed by shadow key, the
//! cache's sharing tracker keeps per-line histories keyed by line number.
//! With `std::collections::HashMap` that lookup is a SipHash invocation
//! plus bucket indirection — measurable overhead on a path executed once
//! per simulated access (SmartTrack, PLDI 2020, makes the same point
//! about metadata-path constant factors).
//!
//! [`ShadowTable`] replaces it with the classic fast layout:
//!
//! * **Multiplicative (FxHash/Fibonacci-style) hashing** — one
//!   `wrapping_mul` by 2⁶⁴/φ, keeping the *high* bits, which mixes the
//!   low-entropy address keys the simulator produces;
//! * **power-of-two capacity** with bit-mask indexing;
//! * **linear probing** — probe chains are short at the ≤¾ load factor
//!   enforced by growth, and walk cache lines sequentially;
//! * **tombstone-free deletion** via backward shifting, so probe chains
//!   never accumulate junk no matter how much churn the barrier-clock
//!   tables see.
//!
//! Slots are `Option<(u64, V)>` — safe Rust, no uninitialized memory; the
//! crate forbids `unsafe`. The table is deterministic: iteration order is
//! a pure function of the insert/remove history, and the detectors only
//! iterate where order cannot leak into results.
//!
//! [`VarState`]: https://docs.rs/ddrace-detector
//!
//! # Example
//!
//! ```
//! use ddrace_shadow::ShadowTable;
//!
//! let mut t: ShadowTable<u32> = ShadowTable::new();
//! *t.get_or_insert_with(0x40, || 0) += 1;
//! assert_eq!(t.get(0x40), Some(&1));
//! assert_eq!(t.remove(0x40), Some(1));
//! assert!(t.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

/// 2^64 / φ, the multiplicative-hash constant (same odd constant
/// splitmix64 increments by); multiplying and keeping the high bits
/// spreads consecutive keys across the table.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Smallest capacity ever allocated; keeps `mask`/`shift` well-defined.
const MIN_CAPACITY: usize = 8;

/// An open-addressed `u64 → V` hash table tuned for the simulator's
/// shadow-memory hot path. See the crate docs for the design.
#[derive(Clone)]
pub struct ShadowTable<V> {
    /// `Some((key, value))` or empty; never a tombstone.
    slots: Vec<Option<(u64, V)>>,
    /// Live entries.
    len: usize,
    /// `capacity - 1` (capacity is a power of two).
    mask: usize,
    /// `64 - log2(capacity)`: the hash keeps this many high bits.
    shift: u32,
}

/// Where a probe for a key ended: its slot, or the first empty slot of
/// its chain.
enum Probe {
    Found(usize),
    Empty(usize),
}

impl<V> ShadowTable<V> {
    /// An empty table with the minimum capacity.
    pub fn new() -> ShadowTable<V> {
        ShadowTable::with_capacity(MIN_CAPACITY)
    }

    /// An empty table that can hold `at_least` entries before growing
    /// (rounded up to keep the load factor below ¾ at a power-of-two
    /// capacity).
    pub fn with_capacity(at_least: usize) -> ShadowTable<V> {
        let capacity = (at_least.saturating_mul(4) / 3 + 1)
            .next_power_of_two()
            .max(MIN_CAPACITY);
        let mut slots = Vec::new();
        slots.resize_with(capacity, || None);
        ShadowTable {
            slots,
            len: 0,
            mask: capacity - 1,
            shift: 64 - capacity.trailing_zeros(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot count (for capacity/occupancy accounting).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The home slot of `key`.
    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(HASH_MUL) >> self.shift) as usize
    }

    /// Walks `key`'s probe chain to its slot or the chain's end. The load
    /// factor stays below 1, so an empty slot always terminates the walk.
    #[inline]
    fn probe(&self, key: u64) -> Probe {
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                None => return Probe::Empty(i),
                Some((k, _)) if *k == key => return Probe::Found(i),
                Some(_) => i = (i + 1) & self.mask,
            }
        }
    }

    /// A shared reference to `key`'s value.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        match self.probe(key) {
            Probe::Found(i) => self.slots[i].as_ref().map(|(_, v)| v),
            Probe::Empty(_) => None,
        }
    }

    /// A mutable reference to `key`'s value.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        match self.probe(key) {
            Probe::Found(i) => self.slots[i].as_mut().map(|(_, v)| v),
            Probe::Empty(_) => None,
        }
    }

    /// True when `key` has an entry.
    pub fn contains_key(&self, key: u64) -> bool {
        matches!(self.probe(key), Probe::Found(_))
    }

    /// Inserts `key → value`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        match self.probe(key) {
            Probe::Found(i) => {
                let (_, old) = self.slots[i].replace((key, value)).expect("probed slot");
                Some(old)
            }
            Probe::Empty(i) => {
                let i = self.slot_for_new(key, i);
                self.slots[i] = Some((key, value));
                self.len += 1;
                None
            }
        }
    }

    /// The value for `key`, inserting `make()` first if absent — the
    /// entry-style call the per-access hot paths use (one probe chain
    /// walk for both outcomes).
    #[inline]
    pub fn get_or_insert_with(&mut self, key: u64, make: impl FnOnce() -> V) -> &mut V {
        let i = match self.probe(key) {
            Probe::Found(i) => i,
            Probe::Empty(i) => {
                let i = self.slot_for_new(key, i);
                self.slots[i] = Some((key, make()));
                self.len += 1;
                i
            }
        };
        self.slots[i].as_mut().map(|(_, v)| v).expect("live slot")
    }

    /// The slot a new entry for `key` goes into: the probed empty slot,
    /// unless the insert would push occupancy to ¾ — then grow (double)
    /// first and re-probe.
    fn slot_for_new(&mut self, key: u64, probed: usize) -> usize {
        if (self.len + 1) * 4 < self.slots.len() * 3 {
            return probed;
        }
        self.grow();
        match self.probe(key) {
            Probe::Empty(i) => i,
            Probe::Found(_) => unreachable!("key appeared during growth"),
        }
    }

    fn grow(&mut self) {
        let capacity = self.slots.len() * 2;
        let mut bigger = Vec::new();
        bigger.resize_with(capacity, || None);
        let old = std::mem::replace(&mut self.slots, bigger);
        self.mask = capacity - 1;
        self.shift = 64 - capacity.trailing_zeros();
        for slot in old {
            let Some((key, value)) = slot else { continue };
            let mut i = self.home(key);
            while self.slots[i].is_some() {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = Some((key, value));
        }
    }

    /// Removes `key`'s entry and returns its value.
    ///
    /// Deletion is tombstone-free: the hole is closed by backward-shifting
    /// every displaced entry after it whose probe chain crossed the hole,
    /// so later lookups never walk dead slots.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let Probe::Found(mut hole) = self.probe(key) else {
            return None;
        };
        let (_, value) = self.slots[hole].take().expect("probed slot");
        self.len -= 1;
        // Backward shift: slide each following chain member into the hole
        // when its home slot lies at or before the hole (cyclically) —
        // i.e. when leaving it behind would break its probe chain.
        let mut j = hole;
        loop {
            j = (j + 1) & self.mask;
            let Some((k, _)) = self.slots[j] else { break };
            let home = self.home(k);
            if (j.wrapping_sub(home) & self.mask) >= (j.wrapping_sub(hole) & self.mask) {
                self.slots[hole] = self.slots[j].take();
                hole = j;
            }
        }
        Some(value)
    }

    /// Iterates entries in slot order (a deterministic function of the
    /// insert/remove history, not of key values alone).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Iterates entries mutably in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut V)> {
        self.slots
            .iter_mut()
            .filter_map(|s| s.as_mut().map(|(k, v)| (*k, v)))
    }

    /// Iterates keys in slot order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(k, _)| k)
    }
}

impl<V> Default for ShadowTable<V> {
    fn default() -> Self {
        ShadowTable::new()
    }
}

impl<V: std::fmt::Debug> std::fmt::Debug for ShadowTable<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

// Copy semantics note: `remove`'s shift condition compares cyclic
// distances. For a chain member at slot j with home h and a hole at slot
// d, the member may stay only if its home lies strictly *after* the hole
// along the probe direction: (j - h) mod c < (j - d) mod c. Otherwise its
// chain would pass through the hole and lookups would stop early, so it
// moves into the hole and the shift continues from its old slot. The scan
// stops at the first empty slot — nothing beyond it can belong to a chain
// crossing the hole.

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = ShadowTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(1, "a"), None);
        assert_eq!(t.insert(1, "b"), Some("a"));
        assert_eq!(t.get(1), Some(&"b"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(1), Some("b"));
        assert_eq!(t.remove(1), None);
        assert!(t.is_empty());
    }

    #[test]
    fn get_or_insert_with_is_an_entry() {
        let mut t: ShadowTable<Vec<u32>> = ShadowTable::new();
        t.get_or_insert_with(9, Vec::new).push(1);
        t.get_or_insert_with(9, || panic!("present: not called"))
            .push(2);
        assert_eq!(t.get(9), Some(&vec![1, 2]));
    }

    #[test]
    fn growth_preserves_entries() {
        let mut t = ShadowTable::with_capacity(0);
        let initial = t.capacity();
        for k in 0..1000u64 {
            t.insert(k * 64, k);
        }
        assert!(t.capacity() > initial);
        assert_eq!(t.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(t.get(k * 64), Some(&k), "key {k}");
        }
        // Load factor honored: strictly below 3/4 after growth policy.
        assert!(t.len() * 4 < t.capacity() * 3);
    }

    #[test]
    fn colliding_keys_chain_and_unchain() {
        // Keys crafted to share home slots at the minimum capacity force
        // linear-probe chains; removing from chain heads exercises the
        // backward shift.
        let mut t = ShadowTable::new();
        let keys: Vec<u64> = (0..6).map(|i| i * (1 << 61)).collect(); // same high bits
        for (n, &k) in keys.iter().enumerate() {
            t.insert(k, n);
        }
        assert_eq!(t.remove(keys[0]), Some(0));
        for (n, &k) in keys.iter().enumerate().skip(1) {
            assert_eq!(t.get(k), Some(&n), "chain intact after head removal");
        }
    }

    #[test]
    fn matches_hashmap_under_scripted_churn() {
        // A deterministic mixed workload against the std oracle (the
        // randomized version lives in tests/proptests.rs).
        let mut t = ShadowTable::new();
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        let mut x: u64 = 0x1234_5678;
        for step in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) % 512; // small key space → heavy churn
            match step % 3 {
                0 => assert_eq!(t.insert(key, step), oracle.insert(key, step)),
                1 => assert_eq!(t.remove(key), oracle.remove(&key)),
                _ => assert_eq!(t.get(key), oracle.get(&key)),
            }
            assert_eq!(t.len(), oracle.len());
        }
        let mut ours: Vec<(u64, u64)> = t.iter().map(|(k, v)| (k, *v)).collect();
        let mut theirs: Vec<(u64, u64)> = oracle.into_iter().collect();
        ours.sort_unstable();
        theirs.sort_unstable();
        assert_eq!(ours, theirs);
    }
}
