//! Property suite: [`ShadowTable`] against the `std::collections::HashMap`
//! oracle under randomized insert/lookup/remove churn — the satellite
//! guarantee that the open-addressed table is a drop-in map replacement
//! for the detectors and the sharing tracker.

use ddrace_shadow::ShadowTable;
use proptest::prelude::*;
use std::collections::HashMap;

/// One scripted table operation.
#[derive(Debug, Clone, Copy)]
enum Churn {
    Insert(u64, u64),
    Entry(u64),
    Remove(u64),
    Get(u64),
}

/// Random churn scripts. Keys are folded into a small space so chains,
/// collisions, and delete-reinsert cycles actually happen; a second
/// unfolded arm keeps full-width keys covered.
fn churn_script() -> impl Strategy<Value = Vec<Churn>> {
    proptest::collection::vec(
        (any::<u8>(), any::<u64>(), any::<u64>()).prop_map(|(op, k, v)| {
            let key = if op & 0x80 == 0 { k % 97 } else { k };
            match op % 4 {
                0 => Churn::Insert(key, v),
                1 => Churn::Entry(key),
                2 => Churn::Remove(key),
                _ => Churn::Get(key),
            }
        }),
        1..400,
    )
}

proptest! {
    #[test]
    fn behaves_like_hashmap(script in churn_script()) {
        let mut table: ShadowTable<u64> = ShadowTable::new();
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for op in script {
            match op {
                Churn::Insert(k, v) => {
                    prop_assert_eq!(table.insert(k, v), oracle.insert(k, v));
                }
                Churn::Entry(k) => {
                    let ours = *table.get_or_insert_with(k, || 7);
                    let theirs = *oracle.entry(k).or_insert(7);
                    prop_assert_eq!(ours, theirs);
                }
                Churn::Remove(k) => {
                    prop_assert_eq!(table.remove(k), oracle.remove(&k));
                }
                Churn::Get(k) => {
                    prop_assert_eq!(table.get(k), oracle.get(&k));
                    prop_assert_eq!(table.contains_key(k), oracle.contains_key(&k));
                }
            }
            prop_assert_eq!(table.len(), oracle.len());
            prop_assert_eq!(table.is_empty(), oracle.is_empty());
        }
        // Terminal state: identical entry sets, every key still reachable
        // through its (possibly shifted) probe chain.
        let mut ours: Vec<(u64, u64)> = table.iter().map(|(k, v)| (k, *v)).collect();
        let mut theirs: Vec<(u64, u64)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
        ours.sort_unstable();
        theirs.sort_unstable();
        prop_assert_eq!(ours, theirs);
        for (k, v) in &oracle {
            prop_assert_eq!(table.get(*k), Some(v));
        }
    }

    /// Adversarial wraparound: every key's home slot sits in the last
    /// two slots of a minimum-capacity table, so probe chains run off
    /// the end and wrap to slot 0 — and `remove`'s backward-shift
    /// compaction has to move entries *across* that boundary. A shift
    /// that compares raw slot indices instead of probe distances would
    /// either orphan a wrapped entry (later `get` misses it) or smear a
    /// ghost copy (a second `remove` returns `Some`). Keeping at most 5
    /// live entries pins the table below its resize load factor, so the
    /// chains genuinely wrap instead of the table growing out of the
    /// regime.
    #[test]
    fn remove_backward_shift_survives_wraparound(
        picks in proptest::collection::vec(any::<u64>(), 1..=5),
        order in proptest::collection::vec(any::<u64>(), 8usize),
    ) {
        let mut table: ShadowTable<u64> = ShadowTable::new();
        // Mirror of the table's multiplicative hash: the home slot is
        // the top log2(capacity) bits of key * HASH_MUL.
        const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;
        let capacity = table.capacity() as u64;
        let shift = 64 - capacity.trailing_zeros();
        let pool: Vec<u64> = (1u64..)
            .filter(|k| k.wrapping_mul(HASH_MUL) >> shift >= capacity - 2)
            .take(32)
            .collect();
        let mut keys: Vec<u64> = Vec::new();
        for p in picks {
            let k = pool[(p % pool.len() as u64) as usize];
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for (n, &k) in keys.iter().enumerate() {
            table.insert(k, n as u64);
            oracle.insert(k, n as u64);
        }
        prop_assert_eq!(
            table.capacity() as u64,
            capacity,
            "must stay in the wraparound regime"
        );
        // Fisher–Yates over the random words: removals in arbitrary order.
        let mut victims = keys.clone();
        for i in (1..victims.len()).rev() {
            let j = (order[i % order.len()] % (i as u64 + 1)) as usize;
            victims.swap(i, j);
        }
        for k in victims {
            prop_assert_eq!(table.remove(k), oracle.remove(&k));
            prop_assert_eq!(table.remove(k), None, "shift must leave no ghost copy");
            for (kk, vv) in &oracle {
                prop_assert_eq!(table.get(*kk), Some(vv), "survivor lost its chain");
            }
            prop_assert_eq!(table.len(), oracle.len());
        }
        prop_assert!(table.is_empty());
        // The vacated chain is clean: re-inserts see a fresh table.
        for &k in &keys {
            prop_assert_eq!(table.insert(k, 99), None);
            prop_assert_eq!(table.get(k), Some(&99));
        }
    }

    #[test]
    fn survives_adversarial_same_home_keys(extras in proptest::collection::vec(any::<u64>(), 0..32)) {
        // Keys whose multiplicative hash lands in one home slot at small
        // capacities: worst-case chains plus random background noise.
        let mut table: ShadowTable<usize> = ShadowTable::new();
        let clustered: Vec<u64> = (0..24u64).map(|i| i << 58).collect();
        for (n, &k) in clustered.iter().enumerate() {
            table.insert(k, n);
        }
        for &k in &extras {
            table.insert(k, usize::MAX);
        }
        // Remove every other clustered key, then verify the rest.
        for &k in clustered.iter().step_by(2) {
            prop_assert!(table.remove(k).is_some());
        }
        for (n, &k) in clustered.iter().enumerate() {
            if n % 2 == 1 {
                prop_assert_eq!(table.get(k), Some(&n));
            } else {
                prop_assert_eq!(table.get(k), None);
            }
        }
    }
}
