//! Ingest-level trace validation: a `.ddt` file whose event stream is
//! internally inconsistent (here, a thread that finishes twice) must be
//! refused by the trace-job path with a positioned, path-prefixed error
//! before any replay happens.

use ddrace_core::AnalysisMode;
use ddrace_harness::{Campaign, TraceSource};
use ddrace_program::{Addr, Op, ThreadId, TraceEvent};
use ddrace_trace::{write_trace_file, TraceMeta, TraceRecord};

/// Writes a trace where thread 1 finishes at record indices 5 and 6.
fn write_duplicate_finish_ddt(path: &std::path::Path) {
    let (t0, t1) = (ThreadId(0), ThreadId(1));
    let events = [
        TraceEvent::ThreadStarted {
            tid: t0,
            parent: None,
        },
        TraceEvent::Op {
            tid: t0,
            op: Op::Fork { child: t1 },
        },
        TraceEvent::ThreadStarted {
            tid: t1,
            parent: Some(t0),
        },
        TraceEvent::Op {
            tid: t1,
            op: Op::Write { addr: Addr(0x1000) },
        },
        TraceEvent::Op {
            tid: t0,
            op: Op::Write { addr: Addr(0x1000) },
        },
        TraceEvent::ThreadFinished { tid: t1 },
        TraceEvent::ThreadFinished { tid: t1 },
        TraceEvent::Op {
            tid: t0,
            op: Op::Join { child: t1 },
        },
        TraceEvent::ThreadFinished { tid: t0 },
    ];
    let records: Vec<TraceRecord> = events.into_iter().map(TraceRecord::Exec).collect();
    let meta = TraceMeta {
        source: "test".to_string(),
        label: "dup-finish".to_string(),
        seed: 1,
        fingerprint: 0xBAD,
    };
    write_trace_file(path, &meta, &records).unwrap();
}

#[test]
fn ingest_rejects_duplicate_thread_finished_with_a_positioned_error() {
    let dir = std::env::temp_dir().join(format!("ddrace-ingest-dup-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dup.ddt");
    write_duplicate_finish_ddt(&path);

    let spec = Campaign::builder("dup-finish-corpus")
        .trace_corpus([TraceSource::from_file(&path).unwrap()])
        .modes([AnalysisMode::Continuous])
        .seeds([0])
        .cores(2)
        .build();
    assert_eq!(spec.jobs.len(), 1);

    let err = spec.jobs[0]
        .run()
        .expect_err("inconsistent trace must be refused");
    assert!(
        err.starts_with(&path.display().to_string()),
        "error names the offending file: {err}"
    );
    assert!(err.contains("thread 1 finished twice"), "{err}");
    assert!(
        err.contains("record index 6"),
        "error carries the record index of the second finish: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
