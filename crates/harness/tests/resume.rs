//! Checkpoint/resume pins the harness's robustness guarantee: a campaign
//! killed mid-flight and resumed from its JSONL event stream produces an
//! aggregate byte-identical to an uninterrupted run, at any worker count.
//!
//! The kill is real: the event writer is rigged to panic partway through
//! the stream (truncating a line mid-write, as an abrupt death would),
//! the panic propagates through the worker scope, and `run_campaign`
//! itself dies. Resume then picks up from whatever reached the "disk".

use ddrace_core::AnalysisMode;
use ddrace_harness::{
    campaign_fingerprint, fingerprint_hex, resume_campaign, run_campaign, Campaign, EventSink,
    JobVariant, ResumeLog,
};
use ddrace_workloads::{phoenix, racy, Scale};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Worker counts to exercise: 1 plus whatever `DDRACE_WORKERS` asks for
/// (ci.sh runs this test at 1 and 8 to pin worker-count independence).
fn worker_counts() -> Vec<usize> {
    let env = std::env::var("DDRACE_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4);
    if env == 1 {
        vec![1]
    } else {
        vec![1, env]
    }
}

fn campaign() -> Campaign {
    Campaign::builder("resume-test")
        .workloads([phoenix::histogram(), racy::sparse_race()])
        .modes([AnalysisMode::Native, AnalysisMode::demand_hitm()])
        .seeds([42, 1337])
        .scale(Scale::TEST)
        .cores(4)
        .build()
}

/// An in-memory JSONL "file" that can be rigged to die mid-write after a
/// given number of event lines, truncating the final line — the on-disk
/// signature of a process killed while checkpointing.
#[derive(Clone)]
struct CrashyLog {
    buf: Arc<Mutex<Vec<u8>>>,
    /// Panic once this many newline-terminated lines have been written;
    /// `usize::MAX` never crashes.
    crash_after_lines: usize,
}

impl CrashyLog {
    fn reliable() -> CrashyLog {
        CrashyLog {
            buf: Arc::new(Mutex::new(Vec::new())),
            crash_after_lines: usize::MAX,
        }
    }

    fn crashing_after(lines: usize) -> CrashyLog {
        CrashyLog {
            buf: Arc::new(Mutex::new(Vec::new())),
            crash_after_lines: lines,
        }
    }

    /// Reads the buffer, recovering from the poison the injected panic
    /// leaves behind (the lock is held at the moment of "death").
    fn text(&self) -> String {
        let buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        String::from_utf8(buf.clone()).unwrap()
    }

    fn lines_written(&self) -> usize {
        self.text().lines().count()
    }
}

impl Write for CrashyLog {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        let mut buf = self.buf.lock().unwrap();
        let lines = buf.iter().filter(|&&b| b == b'\n').count();
        if lines >= self.crash_after_lines {
            // Half the payload lands, then the "process" dies.
            buf.extend_from_slice(&data[..data.len() / 2]);
            panic!("injected campaign kill");
        }
        buf.extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn aggregate(campaign: &Campaign, workers: usize, sink: &EventSink) -> String {
    let report = run_campaign(campaign, workers, sink);
    assert_eq!(report.failed(), 0);
    ddrace_json::to_string_pretty(&report.aggregate_json()).unwrap()
}

#[test]
fn killed_campaign_resumes_to_byte_identical_aggregate() {
    let spec = campaign();
    let baseline = aggregate(&spec, 2, &EventSink::null());

    for &workers in &worker_counts() {
        // Kill the campaign after the header plus three finished jobs.
        let log = CrashyLog::crashing_after(4);
        let sink = EventSink::new(Some(Box::new(log.clone())), false);
        let died = catch_unwind(AssertUnwindSafe(|| run_campaign(&spec, workers, &sink)));
        assert!(died.is_err(), "the injected kill must abort the campaign");
        drop(sink);

        let parsed = ResumeLog::parse(&log.text()).expect("truncated stream still parses");
        assert!(
            parsed.finished.len() < spec.jobs.len(),
            "the kill must leave unfinished jobs ({} finished)",
            parsed.finished.len()
        );

        // Resume from the partial stream, capturing the new stream.
        let resumed_log = CrashyLog::reliable();
        let sink = EventSink::new(Some(Box::new(resumed_log.clone())), false);
        let report = resume_campaign(&spec, workers, &sink, &parsed).expect("resume validates");
        assert_eq!(report.failed(), 0);
        let resumed = ddrace_json::to_string_pretty(&report.aggregate_json()).unwrap();
        assert_eq!(
            baseline, resumed,
            "resumed aggregate must be byte-identical (workers={workers})"
        );

        // Only the remainder actually executed.
        let started = resumed_log
            .text()
            .lines()
            .filter(|l| l.contains("\"job_started\""))
            .count();
        assert_eq!(started, spec.jobs.len() - parsed.finished.len());

        // The resumed stream is itself a complete checkpoint: resuming
        // from it re-runs nothing and still reproduces the aggregate.
        let full = ResumeLog::parse(&resumed_log.text()).unwrap();
        assert_eq!(full.finished.len(), spec.jobs.len());
        let silent = EventSink::null();
        let report = resume_campaign(&spec, workers, &silent, &full).unwrap();
        assert_eq!(
            baseline,
            ddrace_json::to_string_pretty(&report.aggregate_json()).unwrap(),
            "second-generation resume drifted (workers={workers})"
        );
    }
}

#[test]
fn resume_rejects_mismatched_campaign() {
    let spec = campaign();
    let log = CrashyLog::reliable();
    let sink = EventSink::new(Some(Box::new(log.clone())), false);
    run_campaign(&spec, 2, &sink);
    drop(sink);
    assert!(log.lines_written() > 0);
    let parsed = ResumeLog::parse(&log.text()).unwrap();

    // Same name, same workloads — but a different seed axis.
    let other = Campaign::builder("resume-test")
        .workloads([phoenix::histogram(), racy::sparse_race()])
        .modes([AnalysisMode::Native, AnalysisMode::demand_hitm()])
        .seeds([42, 1338])
        .scale(Scale::TEST)
        .cores(4)
        .build();
    let err = resume_campaign(&other, 2, &EventSink::null(), &parsed).unwrap_err();
    // The CLI surfaces this string verbatim and exits non-zero on it; pin
    // the full shape so it stays an actionable refusal, not a bare code.
    let expected = format!(
        "resume log was recorded for campaign `resume-test` (fingerprint {}), but the \
         current campaign is `resume-test` (fingerprint {}); the job set, seeds, or \
         configuration differ — refusing to resume",
        fingerprint_hex(campaign_fingerprint(&spec)),
        fingerprint_hex(campaign_fingerprint(&other)),
    );
    assert_eq!(err, expected);
}

#[test]
fn duplicate_label_campaign_resumes_by_id_not_label() {
    // The same workload twice: jobs 0 and 1 share a label but differ in
    // id and fingerprint. Resume must restore the finished one by id.
    let spec = Campaign::builder("dup-labels")
        .workloads([racy::sparse_race(), racy::sparse_race()])
        .modes([AnalysisMode::demand_hitm()])
        .seeds([7])
        .scale(Scale::TEST)
        .cores(2)
        .build();
    assert_eq!(spec.jobs[0].label(), spec.jobs[1].label());
    let log = CrashyLog::reliable();
    let sink = EventSink::new(Some(Box::new(log.clone())), false);
    let baseline = aggregate(&spec, 1, &sink);
    drop(sink);

    // Keep the header and the *first* job_finished line only, simulating
    // an interruption after one of the two identically-labelled jobs.
    let text = log.text();
    let mut kept: Vec<&str> = Vec::new();
    for line in text.lines() {
        if line.contains("\"job_finished\"") {
            kept.push(line);
            break;
        }
        if line.contains("\"campaign_started\"") {
            kept.push(line);
        }
    }
    let partial = kept.join("\n");
    let parsed = ResumeLog::parse(&partial).unwrap();
    assert_eq!(parsed.finished.len(), 1);
    let report = resume_campaign(&spec, 2, &EventSink::null(), &parsed).unwrap();
    assert_eq!(
        baseline,
        ddrace_json::to_string_pretty(&report.aggregate_json()).unwrap()
    );
}

#[test]
fn killed_variant_sweep_resumes_to_byte_identical_aggregate() {
    // The variant axis rides the same checkpoint machinery: kill a
    // cache-ladder + core-count sweep mid-flight, resume it, and the
    // aggregate must match an uninterrupted run byte for byte at every
    // worker count ci.sh pins (1 and 8).
    let spec = Campaign::builder("variant-resume-test")
        .workloads([racy::sparse_race()])
        .modes([AnalysisMode::Native, AnalysisMode::demand_hitm()])
        .variants([
            JobVariant::with_cores(2),
            JobVariant::private_cache("64KiB", 128),
        ])
        .seeds([42, 1337])
        .scale(Scale::TEST)
        .cores(4)
        .build();
    assert!(spec.has_variant_axis());
    let full_log = CrashyLog::reliable();
    let sink = EventSink::new(Some(Box::new(full_log.clone())), false);
    let baseline = aggregate(&spec, 2, &sink);
    drop(sink);
    // Variant fields reach the aggregate's per-job records and folds.
    assert!(baseline.contains("\"variant\": \"c2\""));
    assert!(baseline.contains("\"variant\": \"64KiB\""));

    // A checkpoint holding three finished variant jobs (however many
    // workers wrote the original stream, keeping the header plus the
    // first three job_finished lines models a mid-campaign death).
    let text = full_log.text();
    let partial: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"campaign_started\"") || l.contains("\"job_finished\""))
        .take(4)
        .collect();
    let partial = ResumeLog::parse(&partial.join("\n")).unwrap();
    assert_eq!(partial.finished.len(), 3);

    for &workers in &worker_counts() {
        // Prefilled variant jobs skip execution and the aggregate still
        // comes out byte-identical.
        let report = resume_campaign(&spec, workers, &EventSink::null(), &partial)
            .expect("resume validates");
        assert_eq!(report.failed(), 0);
        assert_eq!(
            baseline,
            ddrace_json::to_string_pretty(&report.aggregate_json()).unwrap(),
            "resumed variant-sweep aggregate must be byte-identical (workers={workers})"
        );

        // And a real kill mid-stream: whatever reached the "disk" resumes
        // to the same bytes.
        let log = CrashyLog::crashing_after(4);
        let sink = EventSink::new(Some(Box::new(log.clone())), false);
        let died = catch_unwind(AssertUnwindSafe(|| run_campaign(&spec, workers, &sink)));
        assert!(died.is_err(), "the injected kill must abort the campaign");
        drop(sink);
        let parsed = ResumeLog::parse(&log.text()).expect("truncated stream still parses");
        assert!(
            parsed.finished.len() < spec.jobs.len(),
            "the kill must leave unfinished jobs ({} finished)",
            parsed.finished.len()
        );
        let report =
            resume_campaign(&spec, workers, &EventSink::null(), &parsed).expect("resume validates");
        assert_eq!(report.failed(), 0);
        assert_eq!(
            baseline,
            ddrace_json::to_string_pretty(&report.aggregate_json()).unwrap(),
            "kill-resumed variant-sweep aggregate must be byte-identical (workers={workers})"
        );
    }
}

/// Writes a tiny hand-built racy trace (two threads, one unordered write
/// pair) as a `.ddt` file with the given header fingerprint.
fn write_ddt(path: &std::path::Path, label: &str, fingerprint: u64) {
    use ddrace_program::{Addr, Op, ThreadId, TraceEvent};
    use ddrace_trace::{write_trace_file, TraceMeta, TraceRecord};
    let (t0, t1) = (ThreadId(0), ThreadId(1));
    let events = [
        TraceEvent::ThreadStarted {
            tid: t0,
            parent: None,
        },
        TraceEvent::Op {
            tid: t0,
            op: Op::Fork { child: t1 },
        },
        TraceEvent::ThreadStarted {
            tid: t1,
            parent: Some(t0),
        },
        TraceEvent::Op {
            tid: t0,
            op: Op::Write { addr: Addr(0x1000) },
        },
        TraceEvent::Op {
            tid: t1,
            op: Op::Write { addr: Addr(0x1000) },
        },
        TraceEvent::ThreadFinished { tid: t1 },
        TraceEvent::Op {
            tid: t0,
            op: Op::Join { child: t1 },
        },
        TraceEvent::ThreadFinished { tid: t0 },
    ];
    let records: Vec<TraceRecord> = events.into_iter().map(TraceRecord::Exec).collect();
    let meta = TraceMeta {
        source: "test".to_string(),
        label: label.to_string(),
        seed: 1,
        fingerprint,
    };
    write_trace_file(path, &meta, &records).unwrap();
}

#[test]
fn ingest_resume_reuses_the_pinned_refusal_wording() {
    use ddrace_harness::TraceSource;
    // `ddrace ingest` builds a trace-corpus campaign and resumes through
    // the same checkpoint machinery as `campaign`/`fuzz`; this pins that
    // a foreign checkpoint gets the exact shared refusal string.
    let dir = std::env::temp_dir().join(format!("ddrace-ingest-pin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.ddt");
    let b = dir.join("b.ddt");
    write_ddt(&a, "a", 0x1111);
    write_ddt(&b, "b", 0x2222);

    let corpus = |paths: &[&std::path::Path]| -> Campaign {
        Campaign::builder("ingest-corpus")
            .trace_corpus(paths.iter().map(|p| TraceSource::from_file(p).unwrap()))
            .modes([AnalysisMode::Continuous])
            .seeds([0])
            .cores(2)
            .build()
    };
    let spec = corpus(&[&a, &b]);
    assert_eq!(spec.jobs.len(), 2);
    assert_eq!(spec.jobs[0].label(), "a/continuous/s0");

    // Ingest aggregates are byte-identical across worker counts, and a
    // complete checkpoint resumes to the same bytes.
    let log = CrashyLog::reliable();
    let sink = EventSink::new(Some(Box::new(log.clone())), false);
    let baseline = aggregate(&spec, 1, &sink);
    drop(sink);
    for &workers in &worker_counts() {
        assert_eq!(baseline, aggregate(&spec, workers, &EventSink::null()));
    }
    let parsed = ResumeLog::parse(&log.text()).unwrap();
    let report = resume_campaign(&spec, 2, &EventSink::null(), &parsed).unwrap();
    assert_eq!(
        baseline,
        ddrace_json::to_string_pretty(&report.aggregate_json()).unwrap()
    );

    // Re-record b.ddt with a different header fingerprint: same paths,
    // same names, but a foreign corpus. Resume must refuse with the
    // exact wording campaign/fuzz use.
    write_ddt(&b, "b", 0x3333);
    let foreign = corpus(&[&a, &b]);
    let err = resume_campaign(&foreign, 2, &EventSink::null(), &parsed).unwrap_err();
    let expected = format!(
        "resume log was recorded for campaign `ingest-corpus` (fingerprint {}), but the \
         current campaign is `ingest-corpus` (fingerprint {}); the job set, seeds, or \
         configuration differ — refusing to resume",
        fingerprint_hex(campaign_fingerprint(&spec)),
        fingerprint_hex(campaign_fingerprint(&foreign)),
    );
    assert_eq!(err, expected);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn multi_seed_aggregate_carries_seed_folds() {
    let spec = campaign();
    let report = run_campaign(&spec, 2, &EventSink::null());
    let rows = report.rows();
    assert_eq!(rows.len(), 2);
    for row in &rows {
        assert_eq!(row.seed_stats.len(), 2, "one fold per mode");
        for (m, fold) in row.seed_stats.iter().enumerate() {
            assert_eq!(fold.mode, spec.modes[m].label());
            assert_eq!(fold.seeds, 2);
            let cell = row.mode_runs(m, 2);
            let makespans: Vec<u64> = cell.iter().map(|r| r.makespan).collect();
            assert_eq!(fold.makespan.min, *makespans.iter().min().unwrap());
            assert_eq!(fold.makespan.max, *makespans.iter().max().unwrap());
            let mean = makespans.iter().sum::<u64>() as f64 / makespans.len() as f64;
            assert!((fold.makespan.mean - mean).abs() < 1e-9);
        }
    }
    // The folds land in the aggregate under rows[*].seed_stats...
    let json = report.aggregate_json();
    assert!(!json["rows"][0]["seed_stats"][0]["makespan"]["mean"].is_null());
    // ...but single-seed campaigns keep the historical row shape.
    let single = Campaign::builder("single-seed")
        .workloads([racy::sparse_race()])
        .modes([AnalysisMode::Native])
        .seeds([42])
        .scale(Scale::TEST)
        .cores(2)
        .build();
    let report = run_campaign(&single, 1, &EventSink::null());
    assert!(report.aggregate_json()["rows"][0]["seed_stats"].is_null());
}
