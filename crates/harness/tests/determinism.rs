//! The harness's core guarantee: the aggregate document is a function of
//! the campaign alone, not of how many workers ran it or how the pool
//! interleaved the jobs.

use ddrace_core::AnalysisMode;
use ddrace_harness::{run_campaign, Campaign, EventSink};
use ddrace_workloads::{phoenix, racy, Scale};

fn campaign() -> Campaign {
    Campaign::builder("determinism")
        .workloads([phoenix::histogram(), phoenix::kmeans(), racy::sparse_race()])
        .modes([
            AnalysisMode::Native,
            AnalysisMode::Continuous,
            AnalysisMode::demand_hitm(),
        ])
        .seeds([42, 1337])
        .scale(Scale::TEST)
        .cores(4)
        .build()
}

#[test]
fn aggregate_is_byte_identical_across_worker_counts() {
    let spec = campaign();
    // ci.sh pins both ends of the range by re-running this test under
    // DDRACE_WORKERS=1 and DDRACE_WORKERS=8.
    let mut counts = vec![1usize, 4, 16];
    if let Some(env) = std::env::var("DDRACE_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
    {
        counts.push(env);
    }
    let serialized: Vec<String> = counts
        .iter()
        .map(|&workers| {
            let report = run_campaign(&spec, workers, &EventSink::null());
            assert_eq!(report.finished(), spec.jobs.len());
            ddrace_json::to_string_pretty(&report.aggregate_json()).unwrap()
        })
        .collect();
    for (i, s) in serialized.iter().enumerate().skip(1) {
        assert_eq!(&serialized[0], s, "1 worker vs {} workers", counts[i]);
    }
}

#[test]
fn rows_keep_declaration_order() {
    let spec = campaign();
    let report = run_campaign(&spec, 8, &EventSink::null());
    let rows = report.rows();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].name, "histogram");
    assert_eq!(rows[1].name, "kmeans");
    assert_eq!(rows[2].name, "sparse_race");
    // modes × seeds runs per row, mode-major.
    for row in &rows {
        assert_eq!(row.runs.len(), 6);
        assert_eq!(row.runs[0].mode, "native");
        assert_eq!(row.runs[2].mode, "continuous");
    }
    // The same seed under the same mode gives the same makespan regardless
    // of which row position it landed in.
    let rerun = run_campaign(&spec, 1, &EventSink::null());
    for (a, b) in rows.iter().zip(rerun.rows()) {
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            assert_eq!(ra.makespan, rb.makespan);
        }
    }
}

#[test]
fn telemetry_totals_cover_all_jobs() {
    let spec = campaign();
    let report = run_campaign(&spec, 4, &EventSink::null());
    // Every job flushes sim.cycles once; the campaign total must equal the
    // sum over per-job telemetry.
    let per_job: u64 = report
        .records
        .iter()
        .filter_map(|r| r.telemetry.as_ref())
        .map(|t| t.counter("sim.cycles"))
        .sum();
    assert!(per_job > 0);
    assert_eq!(report.totals.counter("sim.cycles"), per_job);
}
