//! Edge cases of the raw executor: empty job lists, jobs that finish
//! inside the cancellation grace window, and the id-density contract of
//! the prefilled entry point that campaign resume relies on.

use ddrace_harness::{run_raw, run_raw_prefilled, EventSink, FailReason, JobRecord, RawJob};
use std::time::Duration;

fn ok_job(id: usize) -> RawJob<u64> {
    RawJob::new(id, format!("ok-{id}"), move |_| Ok(id as u64 * 10))
}

fn record(id: usize, value: u64) -> JobRecord<u64> {
    JobRecord {
        id,
        label: format!("prefilled-{id}"),
        outcome: Ok(value),
        telemetry: None,
        wall: Duration::ZERO,
    }
}

#[test]
fn empty_job_list_returns_no_records() {
    let records = run_raw(Vec::<RawJob<u64>>::new(), 4, &EventSink::null());
    assert!(records.is_empty());
}

#[test]
fn empty_campaign_produces_an_empty_report() {
    let campaign = ddrace_harness::Campaign::builder("empty").build();
    assert!(campaign.jobs.is_empty());
    let report = ddrace_harness::run_campaign(&campaign, 4, &EventSink::null());
    assert_eq!(report.finished(), 0);
    assert_eq!(report.failed(), 0);
    assert!(report.rows().is_empty());
}

/// A job that blows its budget but completes *inside* the grace window
/// the executor grants after raising the cancel token: the budget was
/// still blown, so it must be reported as a timeout — but the executor
/// reaps the thread instead of leaking it.
#[test]
fn job_finishing_inside_grace_window_is_still_a_timeout() {
    let mut job = RawJob::new(0, "barely-late", |_| {
        // Uncooperative: ignores the token, but wakes well inside the
        // 200 ms grace window that follows the 25 ms budget.
        std::thread::sleep(Duration::from_millis(75));
        Ok(7u64)
    });
    job.timeout = Some(Duration::from_millis(25));
    let records = run_raw(vec![job], 1, &EventSink::null());
    assert_eq!(records[0].outcome, Err(FailReason::Timeout));
    assert!(
        records[0].telemetry.is_some(),
        "a body that wound down in the grace window delivered telemetry"
    );
}

/// Regression: the executor used to discard the `(result, telemetry)`
/// pair a grace-window finisher sent, so `job_failed` events silently
/// lost the diagnostics of exactly the jobs that needed them. The
/// timeout verdict stands, but the counters the body recorded must
/// survive onto the failure record.
#[test]
fn grace_window_timeout_keeps_the_jobs_telemetry() {
    let mut job = RawJob::new(0, "late-but-counted", |_| {
        ddrace_telemetry::counter("events_processed", 42);
        std::thread::sleep(Duration::from_millis(75));
        ddrace_telemetry::counter("events_processed", 58);
        Ok(0u64)
    });
    job.timeout = Some(Duration::from_millis(25));
    let records = run_raw(vec![job], 1, &EventSink::null());
    assert_eq!(records[0].outcome, Err(FailReason::Timeout));
    let telemetry = records[0]
        .telemetry
        .as_ref()
        .expect("telemetry attached to the timeout record");
    assert_eq!(telemetry.counter("events_processed"), 100);
}

/// A job abandoned still running (it never acknowledges the token and
/// outlives the grace window) genuinely has no telemetry to attach.
#[test]
fn abandoned_timeout_still_has_no_telemetry() {
    let mut job = RawJob::new(0, "stuck", |_| {
        std::thread::sleep(Duration::from_millis(400));
        Ok(0u64)
    });
    job.timeout = Some(Duration::from_millis(25));
    let records = run_raw(vec![job], 1, &EventSink::null());
    assert_eq!(records[0].outcome, Err(FailReason::Timeout));
    assert!(records[0].telemetry.is_none());
}

#[test]
fn prefilled_slots_are_returned_in_id_order_without_execution() {
    // Jobs 1 and 3 are prefilled; only 0 and 2 may execute.
    let records = run_raw_prefilled(
        vec![ok_job(0), ok_job(2)],
        vec![record(3, 333), record(1, 111)],
        2,
        &EventSink::null(),
    );
    let values: Vec<u64> = records
        .iter()
        .map(|r| *r.outcome.as_ref().unwrap())
        .collect();
    assert_eq!(values, [0, 111, 20, 333]);
    assert_eq!(records[1].label, "prefilled-1");
    assert_eq!(records[3].label, "prefilled-3");
}

#[test]
fn all_slots_prefilled_executes_nothing() {
    let records = run_raw_prefilled(
        Vec::<RawJob<u64>>::new(),
        vec![record(0, 1), record(1, 2)],
        4,
        &EventSink::null(),
    );
    assert_eq!(records.len(), 2);
}

#[test]
#[should_panic(expected = "duplicate job id")]
fn prefill_rejects_duplicate_ids() {
    run_raw_prefilled(vec![ok_job(0)], vec![record(0, 1)], 1, &EventSink::null());
}

#[test]
#[should_panic(expected = "out of range")]
fn prefill_rejects_sparse_ids() {
    // Two slots total, but ids {0, 2}: id 2 is out of range.
    run_raw_prefilled(vec![ok_job(0)], vec![record(2, 1)], 1, &EventSink::null());
}
