//! Golden-file pin of the aggregate document: the exact bytes
//! `aggregate_json` produces for a small variant-swept campaign (and a
//! variant-free one) are committed under `tests/golden/`. Any change to
//! field order, float formatting, variant folding, or row structure shows
//! up as a diff against a reviewed artifact instead of silently shifting
//! downstream consumers (ci.sh, plotting scripts, the resume protocol).
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! DDRACE_UPDATE_GOLDEN=1 cargo test -p ddrace-harness --test golden
//! ```

use ddrace_core::AnalysisMode;
use ddrace_harness::{run_campaign, Campaign, EventSink, JobVariant};
use ddrace_workloads::{racy, Scale};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("DDRACE_UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun with DDRACE_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "aggregate bytes diverged from {} — if the format change is \
         intentional, regenerate with DDRACE_UPDATE_GOLDEN=1",
        path.display()
    );
}

fn render(campaign: &Campaign) -> String {
    let report = run_campaign(campaign, 4, &EventSink::null());
    assert_eq!(report.failed(), 0, "golden campaign must run clean");
    let mut text = ddrace_json::to_string_pretty(&report.aggregate_json()).unwrap();
    text.push('\n');
    text
}

#[test]
fn variant_swept_aggregate_matches_golden_bytes() {
    let campaign = Campaign::builder("golden-variants")
        .workloads([racy::sparse_race()])
        .modes([AnalysisMode::Continuous, AnalysisMode::demand_hitm()])
        .seeds([42])
        .scale(Scale::TEST)
        .cores(4)
        .variants([JobVariant::with_cores(2), JobVariant::with_cores(4)])
        .build();
    check_golden("variant_swept.json", &render(&campaign));
}

#[test]
fn variant_free_aggregate_matches_golden_bytes() {
    let campaign = Campaign::builder("golden-baseline")
        .workloads([racy::sparse_race()])
        .modes([AnalysisMode::Native, AnalysisMode::demand_hitm()])
        .seeds([42, 7])
        .scale(Scale::TEST)
        .cores(4)
        .build();
    check_golden("baseline.json", &render(&campaign));
}
