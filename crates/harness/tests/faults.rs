//! Fault injection against the raw executor: a panicking job and a job
//! that blows its wall-clock budget must each yield a failure record while
//! every other job still completes.

use ddrace_harness::{run_raw, EventSink, FailReason, RawJob};
use std::time::Duration;

fn ok_job(id: usize) -> RawJob<u64> {
    RawJob::new(id, format!("ok-{id}"), move |_| Ok(id as u64 * 10))
}

#[test]
fn panicking_job_is_isolated() {
    let jobs = vec![
        ok_job(0),
        RawJob::new(1, "boom", |_| panic!("injected failure")),
        ok_job(2),
    ];
    let records = run_raw(jobs, 2, &EventSink::null());
    assert_eq!(records.len(), 3);
    assert_eq!(records[0].outcome.as_ref().unwrap(), &0);
    assert_eq!(records[2].outcome.as_ref().unwrap(), &20);
    match &records[1].outcome {
        Err(FailReason::Panic(msg)) => assert!(msg.contains("injected failure")),
        other => panic!("expected a panic record, got {other:?}"),
    }
}

#[test]
fn timed_out_job_is_cancelled_and_reported() {
    let mut hang = RawJob::new(1, "hang", |token: &ddrace_harness::CancelToken| {
        // Cooperative hang: spin until the executor raises the token.
        while !token.cancelled() {
            std::thread::sleep(Duration::from_millis(5));
        }
        Err("cancelled".to_string())
    });
    hang.timeout = Some(Duration::from_millis(50));
    let jobs = vec![ok_job(0), hang, ok_job(2)];
    let records = run_raw(jobs, 2, &EventSink::null());
    assert_eq!(records[1].outcome, Err(FailReason::Timeout));
    assert_eq!(records[0].outcome.as_ref().unwrap(), &0);
    assert_eq!(records[2].outcome.as_ref().unwrap(), &20);
}

#[test]
fn error_result_is_a_failure_record() {
    let jobs = vec![RawJob::new(0, "err", |_| {
        Err::<u64, _>("bad input".to_string())
    })];
    let records = run_raw(jobs, 1, &EventSink::null());
    assert_eq!(
        records[0].outcome,
        Err(FailReason::Error("bad input".to_string()))
    );
}

#[test]
fn fail_reason_kinds_are_machine_readable() {
    assert_eq!(FailReason::Panic("x".into()).kind(), "panic");
    assert_eq!(FailReason::Timeout.kind(), "timeout");
    assert_eq!(FailReason::Error("x".into()).kind(), "error");
}

/// A `Write` implementation capturing the JSONL stream in memory.
#[derive(Clone, Default)]
struct Shared(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl std::io::Write for Shared {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Shared {
    fn events(&self) -> Vec<ddrace_json::Value> {
        let bytes = self.0.lock().unwrap().clone();
        String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(|l| ddrace_json::from_str(l).unwrap())
            .collect()
    }
}

#[test]
fn events_stream_reports_failures() {
    let shared = Shared::default();
    let sink = EventSink::new(Some(Box::new(shared.clone())), false);
    let jobs = vec![ok_job(0), RawJob::new(1, "boom", |_| panic!("kaboom"))];
    run_raw(jobs, 1, &sink);
    let events = shared.events();
    let kinds: Vec<&str> = events
        .iter()
        .map(|e| e["event"].as_str().expect("event discriminator"))
        .collect();
    assert_eq!(
        kinds,
        ["job_started", "job_finished", "job_started", "job_failed"]
    );
    // The failure event carries a machine-readable kind next to the
    // stringified reason — consumers never parse display strings.
    let failed = &events[3];
    assert_eq!(failed["kind"], "panic");
    assert!(failed["reason"].as_str().unwrap().contains("kaboom"));
}

#[test]
fn failed_job_telemetry_reaches_the_event_stream() {
    let shared = Shared::default();
    let sink = EventSink::new(Some(Box::new(shared.clone())), false);
    let jobs = vec![RawJob::new(0, "half-done", |_| {
        // Record some work, then fail: the counters must not be lost.
        ddrace_harness::telemetry::counter("job.progress", 17);
        Err::<u64, _>("gave up".to_string())
    })];
    let records = run_raw(jobs, 1, &sink);
    // The record itself keeps the telemetry...
    let telemetry = records[0].telemetry.as_ref().expect("telemetry captured");
    assert_eq!(telemetry.counter("job.progress"), 17);
    // ...and so does the job_failed event.
    let events = shared.events();
    let failed = &events[1];
    assert_eq!(failed["event"], "job_failed");
    assert_eq!(failed["kind"], "error");
    assert_eq!(failed["telemetry"]["counters"]["job.progress"], 17u64);
}
