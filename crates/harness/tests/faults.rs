//! Fault injection against the raw executor: a panicking job and a job
//! that blows its wall-clock budget must each yield a failure record while
//! every other job still completes.

use ddrace_harness::{run_raw, EventSink, FailReason, RawJob};
use std::time::Duration;

fn ok_job(id: usize) -> RawJob<u64> {
    RawJob {
        id,
        label: format!("ok-{id}"),
        timeout: None,
        body: Box::new(move |_| Ok(id as u64 * 10)),
        summary: None,
    }
}

#[test]
fn panicking_job_is_isolated() {
    let jobs = vec![
        ok_job(0),
        RawJob {
            id: 1,
            label: "boom".to_string(),
            timeout: None,
            body: Box::new(|_| panic!("injected failure")),
            summary: None,
        },
        ok_job(2),
    ];
    let records = run_raw(jobs, 2, &EventSink::null());
    assert_eq!(records.len(), 3);
    assert_eq!(records[0].outcome.as_ref().unwrap(), &0);
    assert_eq!(records[2].outcome.as_ref().unwrap(), &20);
    match &records[1].outcome {
        Err(FailReason::Panic(msg)) => assert!(msg.contains("injected failure")),
        other => panic!("expected a panic record, got {other:?}"),
    }
}

#[test]
fn timed_out_job_is_cancelled_and_reported() {
    let jobs = vec![
        ok_job(0),
        RawJob {
            id: 1,
            label: "hang".to_string(),
            timeout: Some(Duration::from_millis(50)),
            body: Box::new(|token| {
                // Cooperative hang: spin until the executor raises the token.
                while !token.cancelled() {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err("cancelled".to_string())
            }),
            summary: None,
        },
        ok_job(2),
    ];
    let records = run_raw(jobs, 2, &EventSink::null());
    assert_eq!(records[1].outcome, Err(FailReason::Timeout));
    assert_eq!(records[0].outcome.as_ref().unwrap(), &0);
    assert_eq!(records[2].outcome.as_ref().unwrap(), &20);
}

#[test]
fn error_result_is_a_failure_record() {
    let jobs = vec![RawJob {
        id: 0,
        label: "err".to_string(),
        timeout: None,
        body: Box::new(|_| Err::<u64, _>("bad input".to_string())),
        summary: None,
    }];
    let records = run_raw(jobs, 1, &EventSink::null());
    assert_eq!(
        records[0].outcome,
        Err(FailReason::Error("bad input".to_string()))
    );
}

#[test]
fn events_stream_reports_failures() {
    // Capture the JSONL stream through a shared buffer.
    #[derive(Clone, Default)]
    struct Shared(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let shared = Shared::default();
    let sink = EventSink::new(Some(Box::new(shared.clone())), false);
    let jobs = vec![
        ok_job(0),
        RawJob {
            id: 1,
            label: "boom".to_string(),
            timeout: None,
            body: Box::new(|_| panic!("kaboom")),
            summary: None,
        },
    ];
    run_raw(jobs, 1, &sink);
    let bytes = shared.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let events: Vec<ddrace_json::Value> = text
        .lines()
        .map(|l| ddrace_json::from_str(l).unwrap())
        .collect();
    let kinds: Vec<String> = events
        .iter()
        .map(|e| match e {
            ddrace_json::Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == "event")
                .map(|(_, v)| match v {
                    ddrace_json::Value::Str(s) => s.clone(),
                    _ => panic!("event discriminator must be a string"),
                })
                .unwrap(),
            _ => panic!("every event is an object"),
        })
        .collect();
    assert_eq!(
        kinds,
        ["job_started", "job_finished", "job_started", "job_failed"]
    );
}
