//! The parallel executor: a fixed worker pool over `std::thread` draining a
//! shared queue, with per-job timeouts, cooperative cancellation, and panic
//! isolation.
//!
//! Each queued job runs on a **dedicated** thread while its worker waits on
//! a channel with a deadline. That split is what buys the guarantees:
//!
//! - a panicking job poisons nothing — the panic is caught on the job
//!   thread and reported as a failure record;
//! - a job that blows its wall-clock budget is reported as timed out, its
//!   [`CancelToken`] is raised so cooperative bodies can wind down, and
//!   after a short grace period the worker moves on, leaving a truly stuck
//!   thread detached rather than hanging the campaign.
//!
//! Results are keyed by job id, so their order is independent of which
//! worker ran what when.

use crate::events::EventSink;
use ddrace_telemetry::Telemetry;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a timed-out job gets to acknowledge cancellation before its
/// thread is abandoned.
const CANCEL_GRACE: Duration = Duration::from_millis(200);

/// Shared flag a running job can poll to honour cancellation.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// True once the executor has given up on the job.
    pub fn cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

/// A unit of work for the raw executor: an id, a label, an optional
/// deadline, and a fallible body.
///
/// The campaign runner builds these from [`Job`](crate::Job)s; tests build
/// them directly to inject faults.
pub struct RawJob<T> {
    /// Result slot index; also used in emitted events.
    pub id: usize,
    /// Human-readable name for events and progress lines.
    pub label: String,
    /// Wall-clock budget; `None` means unlimited.
    pub timeout: Option<Duration>,
    /// The work itself. Receives the job's cancellation token.
    #[allow(clippy::type_complexity)]
    pub body: Box<dyn FnOnce(&CancelToken) -> Result<T, String> + Send + 'static>,
    /// Optional projection of the result into the `job_finished` event's
    /// `summary` payload.
    #[allow(clippy::type_complexity)]
    pub summary: Option<Box<dyn Fn(&T) -> ddrace_json::Value + Send>>,
    /// Optional projection of the result into the `job_finished` event's
    /// `result` payload — the full value, round-trippable by the resume
    /// reader. `None` keeps the event slim for jobs that never resume.
    #[allow(clippy::type_complexity)]
    pub resume_payload: Option<Box<dyn Fn(&T) -> ddrace_json::Value + Send>>,
    /// Extra fields appended to this job's `job_finished`/`job_failed`
    /// events (the campaign runner adds `seed` and `fingerprint` here).
    pub meta: Vec<(String, ddrace_json::Value)>,
}

impl<T> RawJob<T> {
    /// A job with no timeout, no event projections, and no extra event
    /// fields — the common shape in tests and simple callers.
    pub fn new(
        id: usize,
        label: impl Into<String>,
        body: impl FnOnce(&CancelToken) -> Result<T, String> + Send + 'static,
    ) -> RawJob<T> {
        RawJob {
            id,
            label: label.into(),
            timeout: None,
            body: Box::new(body),
            summary: None,
            resume_payload: None,
            meta: Vec::new(),
        }
    }
}

impl<T> std::fmt::Debug for RawJob<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RawJob")
            .field("id", &self.id)
            .field("label", &self.label)
            .field("timeout", &self.timeout)
            .finish_non_exhaustive()
    }
}

/// Why a job did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailReason {
    /// The body panicked; the payload message is captured.
    Panic(String),
    /// The body exceeded its wall-clock budget.
    Timeout,
    /// The body returned an error.
    Error(String),
}

impl FailReason {
    /// Machine-readable discriminator for events and retry policies:
    /// `"panic"`, `"timeout"`, or `"error"` — consumers match on this
    /// instead of parsing the display string.
    pub fn kind(&self) -> &'static str {
        match self {
            FailReason::Panic(_) => "panic",
            FailReason::Timeout => "timeout",
            FailReason::Error(_) => "error",
        }
    }
}

impl std::fmt::Display for FailReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailReason::Panic(msg) => write!(f, "panic: {msg}"),
            FailReason::Timeout => f.write_str("timeout"),
            FailReason::Error(msg) => write!(f, "error: {msg}"),
        }
    }
}

/// The record every job leaves behind, successful or not.
#[derive(Debug)]
pub struct JobRecord<T> {
    /// The job's id (and index in the result vector).
    pub id: usize,
    /// The job's label.
    pub label: String,
    /// The produced value, or why there is none.
    pub outcome: Result<T, FailReason>,
    /// Telemetry collected on the job thread. Present whenever the body
    /// ran to completion — including a timed-out body that wound down
    /// inside the cancellation grace window; absent only when the job
    /// thread was abandoned still running (or died without reporting).
    pub telemetry: Option<Telemetry>,
    /// Host wall-clock time the job occupied its worker.
    pub wall: Duration,
}

/// Runs `jobs` on a pool of `workers` OS threads, emitting start/finish
/// events into `sink`, and returns one record per job **in id order**.
///
/// # Panics
///
/// Panics if job ids are not exactly `0..jobs.len()` (campaign builders
/// guarantee this) or if a worker thread itself dies, which would be a bug
/// in the executor rather than in a job.
pub fn run_raw<T: Send + 'static>(
    jobs: Vec<RawJob<T>>,
    workers: usize,
    sink: &EventSink,
) -> Vec<JobRecord<T>> {
    assert!(
        jobs.iter().enumerate().all(|(i, j)| i == j.id),
        "job ids must be dense and ordered"
    );
    run_raw_prefilled(jobs, Vec::new(), workers, sink)
}

/// Like [`run_raw`], but with some result slots pre-filled from a prior
/// run (campaign resume): only `jobs` execute, yet the returned vector
/// covers every id, prefilled records included, in id order.
///
/// No events are emitted for prefilled records here — the campaign layer
/// replays their `job_finished` events before execution starts, so a
/// resumed run's stream is itself a complete checkpoint.
///
/// # Panics
///
/// Panics if the ids of `jobs` and `prefilled` together are not exactly
/// `0..(jobs.len() + prefilled.len())` with no duplicates, or if a worker
/// thread itself dies.
pub fn run_raw_prefilled<T: Send + 'static>(
    jobs: Vec<RawJob<T>>,
    prefilled: Vec<JobRecord<T>>,
    workers: usize,
    sink: &EventSink,
) -> Vec<JobRecord<T>> {
    let total = jobs.len() + prefilled.len();
    let mut seen = vec![false; total];
    for id in jobs
        .iter()
        .map(|j| j.id)
        .chain(prefilled.iter().map(|r| r.id))
    {
        assert!(id < total, "job id {id} out of range for {total} slots");
        assert!(!seen[id], "duplicate job id {id}");
        seen[id] = true;
    }
    let pending = jobs.len();
    let workers = workers.clamp(1, pending.max(1));
    let queue: Mutex<VecDeque<RawJob<T>>> = Mutex::new(jobs.into());
    let results: Mutex<Vec<Option<JobRecord<T>>>> = Mutex::new({
        let mut slots: Vec<Option<JobRecord<T>>> = (0..total).map(|_| None).collect();
        for record in prefilled {
            let slot = record.id;
            slots[slot] = Some(record);
        }
        slots
    });

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let Some(job) = queue.lock().unwrap().pop_front() else {
                    break;
                };
                let record = run_isolated(job, sink);
                let slot = record.id;
                results.lock().unwrap()[slot] = Some(record);
            });
        }
    });

    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every job leaves a record"))
        .collect()
}

/// Runs one job on a dedicated thread and waits for it, enforcing the
/// timeout and converting panics into failure records.
fn run_isolated<T: Send + 'static>(job: RawJob<T>, sink: &EventSink) -> JobRecord<T> {
    let RawJob {
        id,
        label,
        timeout,
        body,
        summary,
        resume_payload,
        meta,
    } = job;
    sink.job_started(id, &label, &meta);
    let start = Instant::now();
    let token = CancelToken::new();
    let (tx, rx) = mpsc::channel();
    let job_token = token.clone();
    let handle = std::thread::Builder::new()
        .name(format!("job-{id}"))
        .spawn(move || {
            ddrace_telemetry::install();
            let outcome = catch_unwind(AssertUnwindSafe(|| body(&job_token)));
            let telemetry = ddrace_telemetry::take();
            // The receiver is gone if the worker timed us out; that is fine.
            let _ = tx.send((outcome, telemetry));
        })
        .expect("spawn job thread");

    let received = match timeout {
        Some(budget) => rx.recv_timeout(budget),
        None => rx.recv().map_err(|_| mpsc::RecvTimeoutError::Disconnected),
    };
    let received = match received {
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // Over budget: raise the token, give cooperative bodies a short
            // grace window to wind down, then abandon the thread.
            token.cancel();
            match rx.recv_timeout(CANCEL_GRACE) {
                // Even if it finished during the grace period, the budget
                // was blown — report the timeout, but reap the thread and
                // keep the telemetry it sent: the counters describe real
                // work and are exactly the diagnostics a timeout needs.
                Ok((_, telemetry)) => {
                    let _ = handle.join();
                    Err((FailReason::Timeout, telemetry))
                }
                Err(_) => Err((FailReason::Timeout, None)),
            }
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The job thread died without sending — only possible if the
            // catch_unwind machinery itself aborted. Treat as a panic.
            let _ = handle.join();
            Err((FailReason::Panic("job thread died".to_string()), None))
        }
        Ok((outcome, telemetry)) => {
            let _ = handle.join();
            Ok((outcome, telemetry))
        }
    };

    let wall = start.elapsed();
    let (outcome, telemetry) = match received {
        Ok((Ok(Ok(value)), telemetry)) => (Ok(value), telemetry),
        Ok((Ok(Err(message)), telemetry)) => (Err(FailReason::Error(message)), telemetry),
        Ok((Err(payload), telemetry)) => (
            Err(FailReason::Panic(panic_message(payload.as_ref()))),
            telemetry,
        ),
        Err((reason, telemetry)) => (Err(reason), telemetry),
    };
    let record = JobRecord {
        id,
        label,
        outcome,
        telemetry,
        wall,
    };

    match &record.outcome {
        Ok(value) => {
            let payload = summary.as_ref().map(|f| f(value));
            let mut extra = meta;
            if let Some(project) = &resume_payload {
                extra.push(("result".to_string(), project(value)));
            }
            sink.job_finished(&record, payload, &extra);
        }
        Err(reason) => sink.job_failed(&record, reason, &meta),
    }
    record
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
