//! Campaign aggregation: per-job records rolled up into a deterministic
//! aggregate JSON document compatible with the `results/` schema.

use crate::executor::{FailReason, JobRecord};
use crate::job::Campaign;
use ddrace_core::RunResult;
use ddrace_json::{ToJson, Value};
use ddrace_telemetry::Telemetry;
use std::time::Duration;

/// Everything a finished campaign produced.
///
/// `records[i]` corresponds to `spec.jobs[i]` — id order, independent of
/// how the worker pool interleaved execution. All JSON derived from this
/// struct is deterministic: wall-clock times live only in the event stream.
#[derive(Debug)]
pub struct CampaignReport {
    /// The campaign that was run.
    pub spec: Campaign,
    /// One record per job, in job-id order.
    pub records: Vec<JobRecord<RunResult>>,
    /// Campaign-wide telemetry: every job's counters and spans merged.
    pub totals: Telemetry,
    /// Host wall-clock for the whole campaign.
    pub wall: Duration,
}

/// One benchmark's results across the campaign's mode axis — the same
/// `{name, suite, runs}` shape as the historical `results/*.json` rows.
#[derive(Debug, Clone)]
pub struct SuiteRow {
    /// Benchmark name.
    pub name: String,
    /// Suite label.
    pub suite: String,
    /// Results in mode-axis order (then seed-axis order within a mode).
    pub runs: Vec<RunResult>,
}

impl ToJson for SuiteRow {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("suite".to_string(), Value::Str(self.suite.clone())),
            ("runs".to_string(), self.runs.to_json()),
        ])
    }
}

impl CampaignReport {
    /// Number of jobs that produced a result.
    pub fn finished(&self) -> usize {
        self.records.iter().filter(|r| r.outcome.is_ok()).count()
    }

    /// Number of jobs that failed (panic, timeout, or error).
    pub fn failed(&self) -> usize {
        self.records.len() - self.finished()
    }

    /// The successful result for `job_id`, if any.
    pub fn result(&self, job_id: usize) -> Option<&RunResult> {
        self.records.get(job_id)?.outcome.as_ref().ok()
    }

    /// Reassembles results into one row per workload with runs across the
    /// mode (and seed) axes — the schema of the existing `results/` files.
    /// Workloads with any failed job are skipped; callers that need
    /// failure detail read [`CampaignReport::records`] directly.
    pub fn rows(&self) -> Vec<SuiteRow> {
        let runs_per_workload = self.spec.modes.len() * self.spec.seeds.len();
        self.spec
            .workloads
            .iter()
            .enumerate()
            .filter_map(|(w, spec)| {
                let base = w * runs_per_workload;
                let runs: Option<Vec<RunResult>> = (base..base + runs_per_workload)
                    .map(|id| self.result(id).cloned())
                    .collect();
                Some(SuiteRow {
                    name: spec.name.clone(),
                    suite: spec.suite.to_string(),
                    runs: runs?,
                })
            })
            .collect()
    }

    /// The deterministic aggregate document: campaign metadata, the
    /// results-schema-compatible `rows`, per-job status + counters, and
    /// campaign-total counters. Byte-identical across worker counts.
    pub fn aggregate_json(&self) -> Value {
        let jobs: Vec<Value> = self
            .records
            .iter()
            .map(|record| {
                let job = &self.spec.jobs[record.id];
                let mut fields = vec![
                    ("id".to_string(), Value::UInt(record.id as u64)),
                    ("label".to_string(), Value::Str(record.label.clone())),
                    (
                        "workload".to_string(),
                        Value::Str(job.workload.name.clone()),
                    ),
                    (
                        "suite".to_string(),
                        Value::Str(job.workload.suite.to_string()),
                    ),
                    ("mode".to_string(), Value::Str(job.mode.label().to_string())),
                    ("seed".to_string(), Value::UInt(job.seed)),
                ];
                match &record.outcome {
                    Ok(_) => {
                        fields.push(("status".to_string(), Value::Str("finished".to_string())));
                        if let Some(t) = &record.telemetry {
                            fields.push(("telemetry".to_string(), t.counters_json()));
                        }
                    }
                    Err(reason) => {
                        fields.push(("status".to_string(), Value::Str("failed".to_string())));
                        fields.push(("reason".to_string(), Value::Str(fail_label(reason))));
                    }
                }
                Value::Object(fields)
            })
            .collect();

        Value::Object(vec![
            ("campaign".to_string(), Value::Str(self.spec.name.clone())),
            (
                "jobs_total".to_string(),
                Value::UInt(self.records.len() as u64),
            ),
            ("jobs_failed".to_string(), Value::UInt(self.failed() as u64)),
            ("telemetry".to_string(), self.totals.counters_json()),
            ("rows".to_string(), self.rows().to_json()),
            ("jobs".to_string(), Value::Array(jobs)),
        ])
    }
}

/// A deterministic label for a failure: panic/error messages are kept (they
/// come from deterministic simulator code), but no wall-clock detail.
fn fail_label(reason: &FailReason) -> String {
    match reason {
        FailReason::Panic(msg) => format!("panic: {msg}"),
        FailReason::Timeout => "timeout".to_string(),
        FailReason::Error(msg) => format!("error: {msg}"),
    }
}
