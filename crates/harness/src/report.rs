//! Campaign aggregation: per-job records rolled up into a deterministic
//! aggregate JSON document compatible with the `results/` schema.

use crate::executor::{FailReason, JobRecord};
use crate::job::Campaign;
use ddrace_core::RunResult;
use ddrace_json::{ToJson, Value};
use ddrace_telemetry::Telemetry;
use std::time::Duration;

/// Everything a finished campaign produced.
///
/// `records[i]` corresponds to `spec.jobs[i]` — id order, independent of
/// how the worker pool interleaved execution. All JSON derived from this
/// struct is deterministic: wall-clock times live only in the event stream.
#[derive(Debug)]
pub struct CampaignReport {
    /// The campaign that was run.
    pub spec: Campaign,
    /// One record per job, in job-id order.
    pub records: Vec<JobRecord<RunResult>>,
    /// Campaign-wide telemetry: every job's counters and spans merged.
    pub totals: Telemetry,
    /// Host wall-clock for the whole campaign.
    pub wall: Duration,
}

/// Mean/min/max of one per-run metric folded across the seed axis.
///
/// The mean is an exact arithmetic mean over `u64` samples; all three
/// values are functions of the sample set alone, so the fold is as
/// deterministic as the runs it summarizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisStat {
    /// Arithmetic mean across seeds.
    pub mean: f64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl AxisStat {
    fn fold(samples: impl Iterator<Item = u64>) -> AxisStat {
        let mut count = 0u64;
        let mut sum = 0u128;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for s in samples {
            count += 1;
            sum += u128::from(s);
            min = min.min(s);
            max = max.max(s);
        }
        assert!(count > 0, "fold over an empty seed axis");
        AxisStat {
            mean: sum as f64 / count as f64,
            min,
            max,
        }
    }
}

impl ToJson for AxisStat {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("mean".to_string(), Value::Float(self.mean)),
            ("min".to_string(), Value::UInt(self.min)),
            ("max".to_string(), Value::UInt(self.max)),
        ])
    }
}

/// One (workload, mode, variant) cell's headline metrics folded across
/// the seed axis — the multi-seed summary the paper's mean-over-runs
/// numbers need.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedFold {
    /// Mode label this fold covers.
    pub mode: String,
    /// Variant name this fold covers; `None` for campaigns without a
    /// variant axis (and then omitted from the JSON, keeping the
    /// historical single-variant shape).
    pub variant: Option<String>,
    /// How many seeds were folded.
    pub seeds: usize,
    /// Simulated end-to-end time.
    pub makespan: AxisStat,
    /// Distinct races found.
    pub races_distinct: AxisStat,
    /// Performance-monitoring interrupts delivered.
    pub pmis: AxisStat,
    /// Memory accesses routed through the detector.
    pub accesses_analyzed: AxisStat,
}

impl ToJson for SeedFold {
    fn to_json(&self) -> Value {
        let mut fields = vec![("mode".to_string(), Value::Str(self.mode.clone()))];
        if let Some(variant) = &self.variant {
            fields.push(("variant".to_string(), Value::Str(variant.clone())));
        }
        fields.extend(vec![
            ("seeds".to_string(), Value::UInt(self.seeds as u64)),
            ("makespan".to_string(), self.makespan.to_json()),
            ("races_distinct".to_string(), self.races_distinct.to_json()),
            ("pmis".to_string(), self.pmis.to_json()),
            (
                "accesses_analyzed".to_string(),
                self.accesses_analyzed.to_json(),
            ),
        ]);
        Value::Object(fields)
    }
}

/// One benchmark's results across the campaign's mode axis — the same
/// `{name, suite, runs}` shape as the historical `results/*.json` rows,
/// plus per-(mode, variant) seed fold-downs when the campaign swept
/// several seeds.
#[derive(Debug, Clone)]
pub struct SuiteRow {
    /// Benchmark name.
    pub name: String,
    /// Suite label.
    pub suite: String,
    /// Results in mode-axis order (then variant-axis, then seed-axis
    /// order within a mode: `runs[(m * variants + v) * seeds + s]`).
    pub runs: Vec<RunResult>,
    /// Per-(mode, variant) mean/min/max across the seed axis; empty for
    /// single-seed campaigns (where the fold would restate `runs`), and
    /// then omitted from the JSON so single-seed aggregates keep their
    /// historical shape.
    pub seed_stats: Vec<SeedFold>,
}

impl SuiteRow {
    /// The runs of one mode (index into the campaign's mode axis), in
    /// variant-major, seed-minor order. `runs_per_mode` is the campaign's
    /// `variants.len() * seeds.len()` — just `seeds.len()` for campaigns
    /// without a variant axis.
    pub fn mode_runs(&self, mode_index: usize, runs_per_mode: usize) -> &[RunResult] {
        &self.runs[mode_index * runs_per_mode..(mode_index + 1) * runs_per_mode]
    }
}

impl ToJson for SuiteRow {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("suite".to_string(), Value::Str(self.suite.clone())),
            ("runs".to_string(), self.runs.to_json()),
        ];
        if !self.seed_stats.is_empty() {
            fields.push(("seed_stats".to_string(), self.seed_stats.to_json()));
        }
        Value::Object(fields)
    }
}

impl CampaignReport {
    /// Number of jobs that produced a result.
    pub fn finished(&self) -> usize {
        self.records.iter().filter(|r| r.outcome.is_ok()).count()
    }

    /// Number of jobs that failed (panic, timeout, or error).
    pub fn failed(&self) -> usize {
        self.records.len() - self.finished()
    }

    /// The successful result for `job_id`, if any.
    pub fn result(&self, job_id: usize) -> Option<&RunResult> {
        self.records.get(job_id)?.outcome.as_ref().ok()
    }

    /// Reassembles results into one row per workload with runs across the
    /// mode (and variant and seed) axes — the schema of the existing
    /// `results/` files. Multi-seed campaigns additionally get
    /// per-(workload, mode, variant) mean/min/max fold-downs in each
    /// row's `seed_stats`.
    /// Workloads with any failed job are skipped; callers that need
    /// failure detail read [`CampaignReport::records`] directly.
    pub fn rows(&self) -> Vec<SuiteRow> {
        let seeds = self.spec.seeds.len();
        let variants = self.spec.variants.len();
        let has_variants = self.spec.has_variant_axis();
        let runs_per_workload = self.spec.modes.len() * variants * seeds;
        self.spec
            .workloads
            .iter()
            .enumerate()
            .filter_map(|(w, spec)| {
                let base = w * runs_per_workload;
                let runs: Option<Vec<RunResult>> = (base..base + runs_per_workload)
                    .map(|id| self.result(id).cloned())
                    .collect();
                let runs = runs?;
                let seed_stats = if seeds > 1 {
                    self.spec
                        .modes
                        .iter()
                        .enumerate()
                        .flat_map(|(m, mode)| {
                            self.spec
                                .variants
                                .iter()
                                .enumerate()
                                .map(move |(v, var)| (m, mode, v, var))
                        })
                        .map(|(m, mode, v, var)| {
                            let start = (m * variants + v) * seeds;
                            let cell = &runs[start..start + seeds];
                            SeedFold {
                                mode: mode.label().to_string(),
                                variant: has_variants.then(|| var.name.clone()),
                                seeds,
                                makespan: AxisStat::fold(cell.iter().map(|r| r.makespan)),
                                races_distinct: AxisStat::fold(
                                    cell.iter().map(|r| r.races.distinct as u64),
                                ),
                                pmis: AxisStat::fold(cell.iter().map(|r| r.pmis)),
                                accesses_analyzed: AxisStat::fold(
                                    cell.iter().map(|r| r.accesses_analyzed),
                                ),
                            }
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                Some(SuiteRow {
                    name: spec.name.clone(),
                    suite: spec.suite.to_string(),
                    runs,
                    seed_stats,
                })
            })
            .collect()
    }

    /// The campaign's work split by pipeline phase — generation vs
    /// simulation vs detection — reconstructed from campaign-total
    /// counters. Deliberately built from deterministic counters only
    /// (never span wall-clock), so the aggregate stays byte-reproducible.
    pub fn phase_breakdown(&self) -> Value {
        let t = &self.totals;
        Value::Object(vec![
            (
                "generation".to_string(),
                Value::Object(vec![(
                    "programs".to_string(),
                    Value::UInt(t.counter("gen.programs")),
                )]),
            ),
            (
                "simulation".to_string(),
                Value::Object(vec![
                    ("cycles".to_string(), Value::UInt(t.counter("sim.cycles"))),
                    (
                        "accesses".to_string(),
                        Value::UInt(t.counter("sim.accesses")),
                    ),
                    (
                        "scheduler_ops".to_string(),
                        Value::UInt(t.counter("sched.ops")),
                    ),
                    (
                        "context_switches".to_string(),
                        Value::UInt(t.counter("sched.context_switches")),
                    ),
                ]),
            ),
            (
                "detection".to_string(),
                Value::Object(vec![
                    (
                        "accesses_analyzed".to_string(),
                        Value::UInt(t.counter("sim.accesses_analyzed")),
                    ),
                    (
                        "shadow_ops".to_string(),
                        Value::UInt(t.counter("detector.shadow_ops")),
                    ),
                    (
                        "fast_path_hits".to_string(),
                        Value::UInt(t.counter("detector.fast_path_hits")),
                    ),
                    (
                        "cycles_enabled".to_string(),
                        Value::UInt(t.counter("sim.cycles_enabled")),
                    ),
                ]),
            ),
        ])
    }

    /// The deterministic aggregate document: campaign metadata, the
    /// results-schema-compatible `rows`, per-job status + counters, and
    /// campaign-total counters. Byte-identical across worker counts.
    pub fn aggregate_json(&self) -> Value {
        let has_variants = self.spec.has_variant_axis();
        let jobs: Vec<Value> = self
            .records
            .iter()
            .map(|record| {
                let job = &self.spec.jobs[record.id];
                let mut fields = vec![
                    ("id".to_string(), Value::UInt(record.id as u64)),
                    ("label".to_string(), Value::Str(record.label.clone())),
                    (
                        "workload".to_string(),
                        Value::Str(job.workload.name.clone()),
                    ),
                    (
                        "suite".to_string(),
                        Value::Str(job.workload.suite.to_string()),
                    ),
                    ("mode".to_string(), Value::Str(job.mode.label().to_string())),
                    ("seed".to_string(), Value::UInt(job.seed)),
                ];
                if has_variants {
                    fields.push(("variant".to_string(), Value::Str(job.variant.name.clone())));
                }
                match &record.outcome {
                    Ok(_) => {
                        fields.push(("status".to_string(), Value::Str("finished".to_string())));
                        if let Some(t) = &record.telemetry {
                            fields.push(("telemetry".to_string(), t.counters_json()));
                        }
                    }
                    Err(reason) => {
                        fields.push(("status".to_string(), Value::Str("failed".to_string())));
                        fields.push(("reason".to_string(), Value::Str(fail_label(reason))));
                    }
                }
                Value::Object(fields)
            })
            .collect();

        Value::Object(vec![
            ("campaign".to_string(), Value::Str(self.spec.name.clone())),
            (
                "jobs_total".to_string(),
                Value::UInt(self.records.len() as u64),
            ),
            ("jobs_failed".to_string(), Value::UInt(self.failed() as u64)),
            ("telemetry".to_string(), self.totals.counters_json()),
            ("phase_breakdown".to_string(), self.phase_breakdown()),
            ("rows".to_string(), self.rows().to_json()),
            ("jobs".to_string(), Value::Array(jobs)),
        ])
    }
}

/// A deterministic label for a failure: panic/error messages are kept (they
/// come from deterministic simulator code), but no wall-clock detail.
fn fail_label(reason: &FailReason) -> String {
    match reason {
        FailReason::Panic(msg) => format!("panic: {msg}"),
        FailReason::Timeout => "timeout".to_string(),
        FailReason::Error(msg) => format!("error: {msg}"),
    }
}
