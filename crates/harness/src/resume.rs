//! Checkpoint/resume: replaying a prior campaign's JSONL event stream so
//! an interrupted sweep only re-runs the jobs that never finished.
//!
//! The event stream is the checkpoint — no extra state file. A
//! `campaign_started` event carries a **spec fingerprint** (a hash over
//! the campaign name and every job's full configuration), and each
//! `job_finished` event carries its job's own fingerprint plus the full
//! `result` payload and telemetry counters.
//!
//! Two layers live here:
//!
//! - [`CheckpointLog`] — the generic reader: parses any harness event
//!   stream, keeps each finished job's `result` as raw JSON, and
//!   validates identity (campaign fingerprint, job count, per-job
//!   fingerprints) before converting finished jobs into typed
//!   [`JobRecord`](crate::JobRecord)s via a caller-supplied decoder.
//!   This is what non-campaign runs on the same worker pool (the
//!   conformance fuzzer's `ddrace fuzz --resume`) use.
//! - [`ResumeLog`] — the campaign-typed wrapper: results decoded into
//!   [`RunResult`]s, consumed by
//!   [`resume_campaign`](crate::resume_campaign). Because the aggregate
//!   document is a function of per-job results alone, a resumed campaign
//!   reproduces the uninterrupted aggregate byte for byte.
//!
//! Jobs are keyed by **id + fingerprint**, never by label: two jobs of a
//! campaign may share a label (the same workload listed twice), but ids
//! are dense and fingerprints pin the exact configuration.

use crate::executor::JobRecord;
use crate::job::{Campaign, Job};
use ddrace_core::RunResult;
use ddrace_json::{FromJson, ToJson, Value};
use ddrace_telemetry::Telemetry;
use std::collections::BTreeMap;
use std::time::Duration;

/// A 64-bit FNV-1a hash of `bytes` — the hash behind every harness
/// fingerprint. Public so other checkpointed runs (the conformance
/// fuzzer) fingerprint their job specs the same way.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The canonical JSON a job's fingerprint hashes: every field that
/// affects its result, in a fixed order. Baseline jobs hash exactly the
/// historical field set, so checkpoints recorded before the variant axis
/// existed stay resumable; a non-baseline variant appends its name and
/// patch, making every swept configuration point distinct.
fn job_spec_json(job: &Job) -> Value {
    let mut fields = vec![
        ("id".to_string(), Value::UInt(job.id as u64)),
        ("workload".to_string(), job.workload.to_json()),
        ("mode".to_string(), job.mode.to_json()),
        ("seed".to_string(), Value::UInt(job.seed)),
        ("scale".to_string(), job.scale.to_json()),
        ("cores".to_string(), Value::UInt(job.cores as u64)),
        ("quantum".to_string(), Value::UInt(u64::from(job.quantum))),
        ("detector_kind".to_string(), job.detector_kind.to_json()),
        (
            "timeout_ms".to_string(),
            match job.timeout {
                Some(t) => Value::UInt(t.as_millis() as u64),
                None => Value::Null,
            },
        ),
    ];
    if !job.variant.is_baseline() {
        fields.push((
            "variant".to_string(),
            Value::Object(vec![
                ("name".to_string(), Value::Str(job.variant.name.clone())),
                ("patch".to_string(), job.variant.patch.to_json()),
            ]),
        ));
    }
    // Appended only for trace-corpus jobs so workload campaigns keep
    // their historical fingerprints. Identity is (name, header
    // fingerprint), not the path: a corpus may move on disk, but a
    // re-recorded trace with different identity refuses to resume.
    if let Some(trace) = &job.trace {
        fields.push((
            "trace".to_string(),
            Value::Object(vec![
                ("name".to_string(), Value::Str(trace.name.clone())),
                (
                    "fingerprint".to_string(),
                    Value::Str(fingerprint_hex(trace.fingerprint)),
                ),
            ]),
        ));
    }
    Value::Object(fields)
}

/// Fingerprint of one job's full configuration (including its id).
pub fn job_fingerprint(job: &Job) -> u64 {
    fnv1a(job_spec_json(job).to_compact().as_bytes())
}

/// Fingerprint of a whole campaign: its name plus every job fingerprint,
/// in id order. Any change to the job set — reordered axes, a different
/// seed list, a config tweak — yields a different value.
pub fn campaign_fingerprint(campaign: &Campaign) -> u64 {
    fingerprint_of_jobs(
        &campaign.name,
        campaign
            .jobs
            .iter()
            .map(job_fingerprint)
            .collect::<Vec<_>>(),
    )
}

/// Combines a run name and its per-job fingerprints (in id order) into
/// one run fingerprint, the way [`campaign_fingerprint`] does — shared
/// with other checkpointed runs so every stream validates identically.
pub fn fingerprint_of_jobs(name: &str, job_fingerprints: impl AsRef<[u64]>) -> u64 {
    let mut canonical = format!("campaign:{name}");
    for fp in job_fingerprints.as_ref() {
        canonical.push_str(&format!(";{fp:016x}"));
    }
    fnv1a(canonical.as_bytes())
}

/// Formats a fingerprint the way events carry it: 16 lowercase hex digits.
pub fn fingerprint_hex(fingerprint: u64) -> String {
    format!("{fingerprint:016x}")
}

/// The identity check every resume performs before trusting a log: the
/// run fingerprint (name + full per-job configuration) and the job count
/// must both match. Single-sourced so the campaign and fuzz paths emit
/// the same refusal message.
fn check_compatibility(
    log_campaign: &str,
    log_fingerprint: u64,
    log_jobs_total: usize,
    name: &str,
    fingerprint: u64,
    jobs_total: usize,
) -> Result<(), String> {
    if log_fingerprint != fingerprint {
        return Err(format!(
            "resume log was recorded for campaign `{}` (fingerprint {}), \
             but the current campaign is `{}` (fingerprint {}); \
             the job set, seeds, or configuration differ — refusing to resume",
            log_campaign,
            fingerprint_hex(log_fingerprint),
            name,
            fingerprint_hex(fingerprint),
        ));
    }
    if log_jobs_total != jobs_total {
        return Err(format!(
            "resume log recorded {log_jobs_total} jobs, current campaign has {jobs_total}"
        ));
    }
    Ok(())
}

/// Per-job identity check: the recorded fingerprint must match the
/// current spec's — resume never trusts labels alone.
fn check_job_fingerprint(
    id: usize,
    label: &str,
    recorded: u64,
    expected: u64,
) -> Result<(), String> {
    if recorded != expected {
        return Err(format!(
            "resume log job #{id} ({label}) has fingerprint {}, expected {}",
            fingerprint_hex(recorded),
            fingerprint_hex(expected),
        ));
    }
    Ok(())
}

/// One finished job recovered from a prior event stream, its `result`
/// payload still raw JSON. The typed layers decode it.
#[derive(Debug, Clone)]
pub struct RawFinishedJob {
    /// The job's label as recorded.
    pub label: String,
    /// The job's spec fingerprint as recorded.
    pub fingerprint: u64,
    /// The event's `result` payload, undecoded ([`Value::Null`] when the
    /// event carried none).
    pub result: Value,
    /// Telemetry counters (and spans) as recorded, if any.
    pub telemetry: Option<Telemetry>,
    /// The recorded wall-clock time of the original run.
    pub wall: Duration,
}

/// A parsed prior event stream with raw result payloads: the campaign
/// identity it was recorded for and every job that finished before the
/// interruption. Result-type agnostic; see [`ResumeLog`] for the
/// campaign-typed view.
#[derive(Debug, Clone)]
pub struct CheckpointLog {
    /// The recorded campaign name.
    pub campaign: String,
    /// The recorded campaign fingerprint.
    pub fingerprint: u64,
    /// The recorded job count.
    pub jobs_total: usize,
    /// Finished jobs keyed by id. Failed jobs are deliberately absent —
    /// resume re-runs them.
    pub finished: BTreeMap<usize, RawFinishedJob>,
    /// Lines that did not parse as JSON (a kill can truncate the final
    /// line mid-write); kept as a count for diagnostics.
    pub malformed_lines: usize,
}

impl CheckpointLog {
    /// Parses a JSONL event stream produced by a prior harness run.
    ///
    /// Tolerates a truncated trailing line (the usual signature of a
    /// mid-write kill) and ignores event kinds it does not need;
    /// requires exactly one `campaign_started` event.
    pub fn parse(text: &str) -> Result<CheckpointLog, String> {
        let mut header: Option<(String, u64, usize)> = None;
        let mut finished = BTreeMap::new();
        let mut malformed_lines = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(event) = Value::parse(line) else {
                malformed_lines += 1;
                continue;
            };
            match event["event"].as_str() {
                Some("campaign_started") => {
                    let name = event["campaign"]
                        .as_str()
                        .ok_or("campaign_started: missing campaign name")?
                        .to_string();
                    let fingerprint = parse_fingerprint(&event)
                        .ok_or("campaign_started: missing or invalid fingerprint (stream predates resume support?)")?;
                    let jobs_total = event["jobs"]
                        .as_u64()
                        .ok_or("campaign_started: missing job count")?
                        as usize;
                    if header.is_some() {
                        return Err(
                            "resume log contains more than one campaign_started event".to_string()
                        );
                    }
                    header = Some((name, fingerprint, jobs_total));
                }
                Some("job_finished") => {
                    let id = event["id"].as_u64().ok_or("job_finished: missing id")? as usize;
                    let label = event["label"]
                        .as_str()
                        .ok_or_else(|| format!("job_finished #{id}: missing label"))?
                        .to_string();
                    let fingerprint = parse_fingerprint(&event).ok_or_else(|| {
                        format!("job_finished #{id} ({label}): missing or invalid fingerprint")
                    })?;
                    let telemetry = if event["telemetry"].is_null() {
                        None
                    } else {
                        Some(Telemetry::from_json(&event["telemetry"]).map_err(|e| {
                            format!("job_finished #{id} ({label}): invalid telemetry: {e}")
                        })?)
                    };
                    let wall = event["wall_ms"]
                        .as_f64()
                        .filter(|ms| ms.is_finite() && *ms >= 0.0)
                        .map(|ms| Duration::from_secs_f64(ms / 1e3))
                        .unwrap_or_default();
                    finished.insert(
                        id,
                        RawFinishedJob {
                            label,
                            fingerprint,
                            result: event["result"].clone(),
                            telemetry,
                            wall,
                        },
                    );
                }
                // Failures re-run; start/finish markers carry no state.
                Some(_) => {}
                None => malformed_lines += 1,
            }
        }
        let (campaign, fingerprint, jobs_total) =
            header.ok_or("resume log has no campaign_started event")?;
        Ok(CheckpointLog {
            campaign,
            fingerprint,
            jobs_total,
            finished,
            malformed_lines,
        })
    }

    /// Validates this log against the run about to execute — `name`,
    /// its run `fingerprint`, and the expected per-job fingerprints in
    /// id order — then converts finished jobs into prefilled records,
    /// decoding each raw `result` payload with `decode`.
    ///
    /// The error messages match [`ResumeLog::prefill`]'s exactly; the
    /// two paths refuse a mismatched checkpoint with the same words.
    pub fn prefill_with<T>(
        &self,
        name: &str,
        fingerprint: u64,
        job_fingerprints: &[u64],
        mut decode: impl FnMut(usize, &RawFinishedJob) -> Result<T, String>,
    ) -> Result<Vec<JobRecord<T>>, String> {
        check_compatibility(
            &self.campaign,
            self.fingerprint,
            self.jobs_total,
            name,
            fingerprint,
            job_fingerprints.len(),
        )?;
        let mut records = Vec::with_capacity(self.finished.len());
        for (&id, done) in &self.finished {
            let expected = *job_fingerprints.get(id).ok_or_else(|| {
                format!("resume log finished job #{id} is out of range for this campaign")
            })?;
            check_job_fingerprint(id, &done.label, done.fingerprint, expected)?;
            records.push(JobRecord {
                id,
                label: done.label.clone(),
                outcome: Ok(decode(id, done)?),
                telemetry: done.telemetry.clone(),
                wall: done.wall,
            });
        }
        Ok(records)
    }
}

/// One finished job recovered from a prior event stream.
#[derive(Debug, Clone)]
pub struct FinishedJob {
    /// The job's label as recorded.
    pub label: String,
    /// The job's spec fingerprint as recorded.
    pub fingerprint: u64,
    /// The full result, round-tripped through the event's `result` field.
    pub result: RunResult,
    /// Telemetry counters (and spans) as recorded, if any.
    pub telemetry: Option<Telemetry>,
    /// The recorded wall-clock time of the original run.
    pub wall: Duration,
}

/// A parsed prior event stream: the campaign identity it was recorded
/// for and every job that finished before the interruption.
#[derive(Debug, Clone)]
pub struct ResumeLog {
    /// The recorded campaign name.
    pub campaign: String,
    /// The recorded campaign fingerprint.
    pub fingerprint: u64,
    /// The recorded job count.
    pub jobs_total: usize,
    /// Finished jobs keyed by id. Failed jobs are deliberately absent —
    /// resume re-runs them.
    pub finished: BTreeMap<usize, FinishedJob>,
    /// Lines that did not parse as JSON (a kill can truncate the final
    /// line mid-write); kept as a count for diagnostics.
    pub malformed_lines: usize,
}

impl ResumeLog {
    /// Parses a JSONL event stream produced by a prior campaign run,
    /// decoding each finished job's `result` payload into a
    /// [`RunResult`]. See [`CheckpointLog::parse`] for stream handling.
    pub fn parse(text: &str) -> Result<ResumeLog, String> {
        let raw = CheckpointLog::parse(text)?;
        let mut finished = BTreeMap::new();
        for (&id, done) in &raw.finished {
            let result = RunResult::from_json(&done.result).map_err(|e| {
                format!(
                    "job_finished #{id} ({}): invalid result payload: {e}",
                    done.label
                )
            })?;
            finished.insert(
                id,
                FinishedJob {
                    label: done.label.clone(),
                    fingerprint: done.fingerprint,
                    result,
                    telemetry: done.telemetry.clone(),
                    wall: done.wall,
                },
            );
        }
        Ok(ResumeLog {
            campaign: raw.campaign,
            fingerprint: raw.fingerprint,
            jobs_total: raw.jobs_total,
            finished,
            malformed_lines: raw.malformed_lines,
        })
    }

    /// Validates this log against the campaign about to run and converts
    /// its finished jobs into prefilled records.
    ///
    /// Rejects a log whose campaign fingerprint differs from the current
    /// campaign's (different name, job set, seeds, or configuration) and
    /// any finished job whose id/fingerprint pair does not match —
    /// resume never trusts labels alone.
    pub fn prefill(&self, campaign: &Campaign) -> Result<Vec<JobRecord<RunResult>>, String> {
        check_compatibility(
            &self.campaign,
            self.fingerprint,
            self.jobs_total,
            &campaign.name,
            campaign_fingerprint(campaign),
            campaign.jobs.len(),
        )?;
        let mut records = Vec::with_capacity(self.finished.len());
        for (&id, done) in &self.finished {
            let job = campaign.jobs.get(id).ok_or_else(|| {
                format!("resume log finished job #{id} is out of range for this campaign")
            })?;
            check_job_fingerprint(id, &done.label, done.fingerprint, job_fingerprint(job))?;
            records.push(JobRecord {
                id,
                label: done.label.clone(),
                outcome: Ok(done.result.clone()),
                telemetry: done.telemetry.clone(),
                wall: done.wall,
            });
        }
        Ok(records)
    }
}

fn parse_fingerprint(event: &Value) -> Option<u64> {
    u64::from_str_radix(event["fingerprint"].as_str()?, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrace_core::AnalysisMode;
    use ddrace_workloads::{racy, Scale};

    fn campaign() -> Campaign {
        Campaign::builder("fp-test")
            .workloads([racy::sparse_race()])
            .modes([AnalysisMode::Native, AnalysisMode::Continuous])
            .seeds([1, 2])
            .scale(Scale::TEST)
            .cores(2)
            .build()
    }

    #[test]
    fn fingerprints_are_stable_and_config_sensitive() {
        let a = campaign_fingerprint(&campaign());
        let b = campaign_fingerprint(&campaign());
        assert_eq!(a, b, "same spec, same fingerprint");
        let other = Campaign::builder("fp-test")
            .workloads([racy::sparse_race()])
            .modes([AnalysisMode::Native, AnalysisMode::Continuous])
            .seeds([1, 3]) // one seed differs
            .scale(Scale::TEST)
            .cores(2)
            .build();
        assert_ne!(a, campaign_fingerprint(&other));
    }

    #[test]
    fn job_fingerprint_distinguishes_duplicate_labels() {
        let spec = Campaign::builder("dups")
            .workloads([racy::sparse_race(), racy::sparse_race()])
            .seeds([7])
            .scale(Scale::TEST)
            .build();
        assert_eq!(spec.jobs[0].label(), spec.jobs[1].label());
        // Same label, different id — fingerprints must differ so resume
        // can never cross-wire the two.
        assert_ne!(
            job_fingerprint(&spec.jobs[0]),
            job_fingerprint(&spec.jobs[1])
        );
    }

    #[test]
    fn fingerprints_distinguish_variants() {
        use crate::variant::{ConfigPatch, JobVariant};
        let with_variants = |variants: Vec<JobVariant>| {
            Campaign::builder("fp-variants")
                .workloads([racy::sparse_race()])
                .modes([AnalysisMode::demand_hitm()])
                .seeds([7])
                .scale(Scale::TEST)
                .variants(variants)
                .build()
        };
        // Same slot (id 0), same workload/mode/seed — only the variant
        // differs. Every pair of fingerprints must differ, including
        // nested-only patches (cache geometry, demand knobs) that never
        // touch the job's scalar fields.
        let variants = [
            JobVariant::baseline(),
            JobVariant::with_cores(2),
            JobVariant::private_cache("16KiB", 32),
            JobVariant::private_cache("64KiB", 128),
            JobVariant::new(
                "cooldown",
                ConfigPatch {
                    cooldown_accesses: Some(999),
                    ..ConfigPatch::default()
                },
            ),
        ];
        let prints: Vec<u64> = variants
            .iter()
            .map(|v| job_fingerprint(&with_variants(vec![v.clone()]).jobs[0]))
            .collect();
        for i in 0..prints.len() {
            for j in i + 1..prints.len() {
                assert_ne!(
                    prints[i], prints[j],
                    "variants `{}` and `{}` collide",
                    variants[i].name, variants[j].name
                );
            }
        }
        // The baseline variant hashes to the pre-variant-axis fingerprint:
        // old checkpoints stay resumable.
        let plain = Campaign::builder("fp-variants")
            .workloads([racy::sparse_race()])
            .modes([AnalysisMode::demand_hitm()])
            .seeds([7])
            .scale(Scale::TEST)
            .build();
        assert_eq!(prints[0], job_fingerprint(&plain.jobs[0]));
    }

    #[test]
    fn parse_rejects_streams_without_header() {
        let err = ResumeLog::parse("{\"event\":\"job_started\",\"id\":0}\n").unwrap_err();
        assert!(err.contains("no campaign_started"), "{err}");
    }

    #[test]
    fn parse_tolerates_truncated_tail() {
        let spec = campaign();
        let head = format!(
            "{{\"event\":\"campaign_started\",\"campaign\":\"fp-test\",\"jobs\":4,\"workers\":1,\"fingerprint\":\"{}\"}}\n{{\"event\":\"job_finis",
            fingerprint_hex(campaign_fingerprint(&spec))
        );
        let log = ResumeLog::parse(&head).unwrap();
        assert_eq!(log.malformed_lines, 1);
        assert!(log.finished.is_empty());
        assert_eq!(log.jobs_total, 4);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn generic_prefill_rejects_with_the_same_words_as_typed_prefill() {
        let spec = campaign();
        let other = Campaign::builder("fp-test")
            .workloads([racy::sparse_race()])
            .modes([AnalysisMode::Native, AnalysisMode::Continuous])
            .seeds([1, 3])
            .scale(Scale::TEST)
            .cores(2)
            .build();
        let head = format!(
            "{{\"event\":\"campaign_started\",\"campaign\":\"fp-test\",\"jobs\":4,\"workers\":1,\"fingerprint\":\"{}\"}}\n",
            fingerprint_hex(campaign_fingerprint(&spec))
        );
        let typed_err = ResumeLog::parse(&head)
            .unwrap()
            .prefill(&other)
            .unwrap_err();
        let fps: Vec<u64> = other.jobs.iter().map(job_fingerprint).collect();
        let raw_err = CheckpointLog::parse(&head)
            .unwrap()
            .prefill_with::<()>(&other.name, campaign_fingerprint(&other), &fps, |_, _| {
                Ok(())
            })
            .unwrap_err();
        assert_eq!(typed_err, raw_err);
        assert!(typed_err.contains("refusing to resume"), "{typed_err}");
    }

    #[test]
    fn fingerprint_of_jobs_matches_campaign_fingerprint() {
        let spec = campaign();
        let fps: Vec<u64> = spec.jobs.iter().map(job_fingerprint).collect();
        assert_eq!(
            fingerprint_of_jobs(&spec.name, &fps),
            campaign_fingerprint(&spec)
        );
    }
}
