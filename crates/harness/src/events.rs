//! Structured campaign output: a JSON Lines event stream plus a human
//! progress summary on stderr.
//!
//! Each event is one compact JSON object per line with an `"event"`
//! discriminator — `campaign_started`, `job_started`, `job_finished`,
//! `job_failed`, `campaign_finished` — so the stream can be tailed and
//! post-processed with line-oriented tools. Events interleave in completion
//! order; consumers correlate on the `id` field. Wall-clock timings appear
//! *only* here, never in the deterministic aggregate.
//!
//! The stream doubles as a **checkpoint** (see [`crate::ResumeLog`]):
//! `campaign_started` carries the campaign spec fingerprint, and each
//! `job_finished` carries the job's own fingerprint, seed, full `result`
//! payload, and telemetry — everything needed to skip the job on a
//! subsequent `--resume` run. `job_failed` events carry a machine-readable
//! `kind` (`panic` | `timeout` | `error`) next to the human `reason`, plus
//! whatever telemetry the failing body had already recorded.

use crate::executor::{FailReason, JobRecord};
use ddrace_json::Value;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Where campaign events go: an optional JSONL writer and an optional
/// stderr progress feed. Shared by all workers; internally synchronized.
pub struct EventSink {
    jsonl: Option<Mutex<Box<dyn Write + Send>>>,
    progress: bool,
    /// Report `wall_ms` as `0.0` in JSONL events (stderr progress keeps
    /// real timings). Runs that promise byte-reproducible event streams
    /// (the conformance fuzzer) set this; wall clock is the only
    /// nondeterministic field an event otherwise carries.
    zero_wall: bool,
    total: AtomicUsize,
    done: AtomicUsize,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink")
            .field("jsonl", &self.jsonl.is_some())
            .field("progress", &self.progress)
            .finish()
    }
}

impl EventSink {
    /// A sink that discards everything (used by tests and library callers
    /// that only want the returned records).
    pub fn null() -> EventSink {
        EventSink::new(None, false)
    }

    /// A sink writing JSONL events to `jsonl` (if given) and, when
    /// `progress` is set, human summary lines to stderr.
    pub fn new(jsonl: Option<Box<dyn Write + Send>>, progress: bool) -> EventSink {
        EventSink {
            jsonl: jsonl.map(Mutex::new),
            progress,
            zero_wall: false,
            total: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
        }
    }

    /// Makes the JSONL stream byte-deterministic: every `wall_ms` field
    /// is written as `0.0`. Line *order* still follows completion order;
    /// consumers wanting byte-identical streams across worker counts
    /// sort the lines (each line is self-contained). Stderr progress is
    /// unaffected and keeps real timings.
    pub fn with_deterministic_wall(mut self) -> EventSink {
        self.zero_wall = true;
        self
    }

    fn wall_field(&self, wall: Duration) -> Value {
        Value::Float(if self.zero_wall { 0.0 } else { ms(wall) })
    }

    fn emit(&self, event: &str, mut fields: Vec<(String, Value)>) {
        let Some(writer) = &self.jsonl else {
            return;
        };
        let mut pairs = vec![("event".to_string(), Value::Str(event.to_string()))];
        pairs.append(&mut fields);
        let line = Value::Object(pairs).to_compact();
        let mut w = writer.lock().unwrap();
        // Event loss must not kill the campaign; the aggregate still lands.
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }

    fn note(&self, line: &str) {
        if self.progress {
            eprintln!("{line}");
        }
    }

    pub(crate) fn campaign_started(
        &self,
        name: &str,
        jobs: usize,
        workers: usize,
        fingerprint: &str,
    ) {
        self.total.store(jobs, Ordering::Relaxed);
        self.done.store(0, Ordering::Relaxed);
        self.emit(
            "campaign_started",
            vec![
                ("campaign".to_string(), Value::Str(name.to_string())),
                ("jobs".to_string(), Value::UInt(jobs as u64)),
                ("workers".to_string(), Value::UInt(workers as u64)),
                (
                    "fingerprint".to_string(),
                    Value::Str(fingerprint.to_string()),
                ),
            ],
        );
        self.note(&format!(
            "campaign {name}: {jobs} jobs on {workers} workers"
        ));
    }

    /// Emits a `job_started` event. `extra` fields (job fingerprint,
    /// seed, variant name) are appended after the standard ones so
    /// stream consumers can attribute a start line without waiting for
    /// the finish event.
    pub(crate) fn job_started(&self, id: usize, label: &str, extra: &[(String, Value)]) {
        let mut fields = vec![
            ("id".to_string(), Value::UInt(id as u64)),
            ("label".to_string(), Value::Str(label.to_string())),
        ];
        fields.extend(extra.iter().cloned());
        self.emit("job_started", fields);
    }

    /// Emits a `job_finished` event. `extra` fields (job fingerprint,
    /// seed, the full `result` payload, a `resumed` marker) are appended
    /// after the standard ones; the resume reader keys on them.
    pub(crate) fn job_finished<T>(
        &self,
        record: &JobRecord<T>,
        summary: Option<Value>,
        extra: &[(String, Value)],
    ) {
        let mut fields = vec![
            ("id".to_string(), Value::UInt(record.id as u64)),
            ("label".to_string(), Value::Str(record.label.clone())),
            ("wall_ms".to_string(), self.wall_field(record.wall)),
        ];
        if let Some(t) = &record.telemetry {
            fields.push(("telemetry".to_string(), ddrace_json::ToJson::to_json(t)));
        }
        if let Some(s) = summary {
            fields.push(("summary".to_string(), s));
        }
        fields.extend(extra.iter().cloned());
        self.emit("job_finished", fields);
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        self.note(&format!(
            "[{done}/{}] ok   {} ({:.1} ms)",
            self.total.load(Ordering::Relaxed),
            record.label,
            ms(record.wall),
        ));
    }

    /// Emits a `job_failed` event: a machine-readable `kind`
    /// (`panic` | `timeout` | `error`) next to the human-readable
    /// `reason`, plus any telemetry the failing body recorded before it
    /// died — counters from failed runs still reach post-processing.
    pub(crate) fn job_failed<T>(
        &self,
        record: &JobRecord<T>,
        reason: &FailReason,
        extra: &[(String, Value)],
    ) {
        let mut fields = vec![
            ("id".to_string(), Value::UInt(record.id as u64)),
            ("label".to_string(), Value::Str(record.label.clone())),
            ("kind".to_string(), Value::Str(reason.kind().to_string())),
            ("reason".to_string(), Value::Str(reason.to_string())),
            ("wall_ms".to_string(), self.wall_field(record.wall)),
        ];
        if let Some(t) = &record.telemetry {
            fields.push(("telemetry".to_string(), ddrace_json::ToJson::to_json(t)));
        }
        fields.extend(extra.iter().cloned());
        self.emit("job_failed", fields);
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        self.note(&format!(
            "[{done}/{}] FAIL {}: {reason}",
            self.total.load(Ordering::Relaxed),
            record.label,
        ));
    }

    pub(crate) fn campaign_finished(
        &self,
        name: &str,
        finished: usize,
        failed: usize,
        wall: Duration,
    ) {
        self.emit(
            "campaign_finished",
            vec![
                ("campaign".to_string(), Value::Str(name.to_string())),
                ("finished".to_string(), Value::UInt(finished as u64)),
                ("failed".to_string(), Value::UInt(failed as u64)),
                ("wall_ms".to_string(), self.wall_field(wall)),
            ],
        );
        self.note(&format!(
            "campaign {name}: {finished} finished, {failed} failed in {:.1} ms",
            ms(wall)
        ));
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}
