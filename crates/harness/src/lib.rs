//! # ddrace-harness — the parallel campaign runner
//!
//! The paper's evaluation is a *campaign*: analysis modes × workloads ×
//! sensitivity sweeps. This crate is the layer that runs such campaigns
//! well: declaratively built job sets, a fixed `std::thread` worker pool
//! with panic isolation and per-job timeouts, structured telemetry, and a
//! JSON Lines event stream next to a deterministic aggregate document.
//!
//! ## Pieces
//!
//! - [`Job`] / [`Campaign`] / [`CampaignBuilder`] — the job model. A job is
//!   (workload, mode, seed, config overrides); a campaign is the cross
//!   product of sweep axes, with ids in declaration order.
//! - [`run_campaign`] — drains the jobs through a worker pool. Results are
//!   keyed by job id, so the aggregate is **byte-identical no matter how
//!   many workers ran it** — the property the determinism test pins down.
//! - [`RawJob`] / [`run_raw`] — the untyped executor underneath, also used
//!   to inject faults (panicking and hanging jobs) in tests.
//! - [`telemetry`] (re-exported `ddrace-telemetry`) — the span/counter sink
//!   `ddrace-core::sim` and `ddrace-detector` emit into while a job runs.
//! - [`EventSink`] — `job_started`/`job_finished`/`job_failed` JSONL events
//!   with telemetry payloads, plus human progress on stderr.
//! - [`CampaignReport`] — per-job records, campaign-total counters, and the
//!   aggregate JSON whose `rows` field keeps the historical `results/`
//!   schema.
//!
//! ## Example
//!
//! ```
//! use ddrace_harness::{Campaign, EventSink, run_campaign};
//! use ddrace_core::AnalysisMode;
//! use ddrace_workloads::{phoenix, Scale};
//!
//! let campaign = Campaign::builder("doc-example")
//!     .workloads([phoenix::histogram()])
//!     .modes([AnalysisMode::Native, AnalysisMode::demand_hitm()])
//!     .scale(Scale::TEST)
//!     .cores(4)
//!     .build();
//! let report = run_campaign(&campaign, 2, &EventSink::null());
//! assert_eq!(report.finished(), 2);
//! assert!(report.totals.counter("sim.cycles") > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod events;
mod executor;
mod job;
mod report;

pub use ddrace_telemetry as telemetry;
pub use events::EventSink;
pub use executor::{run_raw, CancelToken, FailReason, JobRecord, RawJob};
pub use job::{Campaign, CampaignBuilder, Job};
pub use report::{CampaignReport, SuiteRow};

use ddrace_core::RunResult;
use ddrace_json::Value;
use ddrace_telemetry::Telemetry;
use std::time::Instant;

/// Runs every job of `campaign` on a pool of `workers` threads, streaming
/// events into `sink`, and returns the full report.
///
/// Job *scheduling* is nondeterministic; job *results* are not. Each
/// simulation is single-threaded and seeded, records land in id-indexed
/// slots, and the aggregate exposes no wall-clock data — so the same
/// campaign produces the same [`CampaignReport::aggregate_json`] at any
/// worker count.
pub fn run_campaign(campaign: &Campaign, workers: usize, sink: &EventSink) -> CampaignReport {
    let start = Instant::now();
    sink.campaign_started(&campaign.name, campaign.jobs.len(), workers);
    let raw: Vec<RawJob<RunResult>> = campaign
        .jobs
        .iter()
        .cloned()
        .map(|job| RawJob {
            id: job.id,
            label: job.label(),
            timeout: job.timeout,
            summary: Some(Box::new(job_summary)),
            body: Box::new(move |token| {
                if token.cancelled() {
                    return Err("cancelled before start".to_string());
                }
                let _span = telemetry::span("job.run");
                job.run()
            }),
        })
        .collect();
    let records = run_raw(raw, workers, sink);
    let mut totals = Telemetry::new();
    for record in &records {
        if let Some(t) = &record.telemetry {
            totals.merge(t);
        }
    }
    let wall = start.elapsed();
    let report = CampaignReport {
        spec: campaign.clone(),
        records,
        totals,
        wall,
    };
    sink.campaign_finished(&campaign.name, report.finished(), report.failed(), wall);
    report
}

/// The compact per-job summary attached to `job_finished` events: the
/// headline numbers, not the full `RunResult`.
fn job_summary(result: &RunResult) -> Value {
    Value::Object(vec![
        ("mode".to_string(), Value::Str(result.mode.clone())),
        ("makespan".to_string(), Value::UInt(result.makespan)),
        (
            "races_distinct".to_string(),
            Value::UInt(result.races.distinct as u64),
        ),
        ("pmis".to_string(), Value::UInt(result.pmis)),
        (
            "accesses_analyzed".to_string(),
            Value::UInt(result.accesses_analyzed),
        ),
        (
            "enabled_cycles".to_string(),
            Value::UInt(result.enabled_cycles),
        ),
        ("total_cycles".to_string(), Value::UInt(result.total_cycles)),
    ])
}
