//! # ddrace-harness — the parallel campaign runner
//!
//! The paper's evaluation is a *campaign*: analysis modes × workloads ×
//! sensitivity sweeps. This crate is the layer that runs such campaigns
//! well: declaratively built job sets, a fixed `std::thread` worker pool
//! with panic isolation and per-job timeouts, structured telemetry, and a
//! JSON Lines event stream next to a deterministic aggregate document.
//!
//! ## Pieces
//!
//! - [`Job`] / [`Campaign`] / [`CampaignBuilder`] — the job model. A job is
//!   (workload, mode, variant, seed, config overrides); a campaign is the
//!   cross product of sweep axes, with ids in declaration order.
//! - [`JobVariant`] / [`ConfigPatch`] — the variant axis: named per-job
//!   configuration overrides (cache geometry, core count, quantum, scale,
//!   detector, demand-mode knobs) for the paper's sensitivity sweeps (A3
//!   cache ladder, A5 SMT core packing). Variants flow into labels,
//!   events, fingerprints, and the aggregate.
//! - [`run_campaign`] — drains the jobs through a worker pool. Results are
//!   keyed by job id, so the aggregate is **byte-identical no matter how
//!   many workers ran it** — the property the determinism test pins down.
//! - [`RawJob`] / [`run_raw`] — the untyped executor underneath, also used
//!   to inject faults (panicking and hanging jobs) in tests.
//! - [`telemetry`] (re-exported `ddrace-telemetry`) — the span/counter sink
//!   `ddrace-core::sim` and `ddrace-detector` emit into while a job runs.
//! - [`EventSink`] — `job_started`/`job_finished`/`job_failed` JSONL events
//!   with telemetry payloads, plus human progress on stderr. The stream
//!   carries spec fingerprints and full result payloads, making it a
//!   checkpoint.
//! - [`ResumeLog`] / [`resume_campaign`] — parse a prior run's event
//!   stream, validate it against the campaign by fingerprint, and re-run
//!   only the jobs that never finished. The resumed aggregate is
//!   byte-identical to an uninterrupted run's.
//! - [`CampaignReport`] — per-job records, campaign-total counters, and the
//!   aggregate JSON whose `rows` field keeps the historical `results/`
//!   schema, plus per-(workload, mode) mean/min/max fold-downs across the
//!   seed axis when a campaign sweeps more than one seed.
//!
//! ## Example
//!
//! ```
//! use ddrace_harness::{Campaign, EventSink, run_campaign};
//! use ddrace_core::AnalysisMode;
//! use ddrace_workloads::{phoenix, Scale};
//!
//! let campaign = Campaign::builder("doc-example")
//!     .workloads([phoenix::histogram()])
//!     .modes([AnalysisMode::Native, AnalysisMode::demand_hitm()])
//!     .scale(Scale::TEST)
//!     .cores(4)
//!     .build();
//! let report = run_campaign(&campaign, 2, &EventSink::null());
//! assert_eq!(report.finished(), 2);
//! assert!(report.totals.counter("sim.cycles") > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod events;
mod executor;
mod job;
mod report;
mod resume;
mod variant;

pub use ddrace_telemetry as telemetry;
pub use events::EventSink;
pub use executor::{run_raw, run_raw_prefilled, CancelToken, FailReason, JobRecord, RawJob};
pub use job::{Campaign, CampaignBuilder, Job, TraceSource};
pub use report::{AxisStat, CampaignReport, SeedFold, SuiteRow};
pub use resume::{
    campaign_fingerprint, fingerprint_hex, fingerprint_of_jobs, fnv1a, job_fingerprint,
    CheckpointLog, FinishedJob, RawFinishedJob, ResumeLog,
};
pub use variant::{ConfigPatch, JobVariant};

use ddrace_core::RunResult;
use ddrace_json::{ToJson, Value};
use ddrace_telemetry::Telemetry;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Runs every job of `campaign` on a pool of `workers` threads, streaming
/// events into `sink`, and returns the full report.
///
/// Job *scheduling* is nondeterministic; job *results* are not. Each
/// simulation is single-threaded and seeded, records land in id-indexed
/// slots, and the aggregate exposes no wall-clock data — so the same
/// campaign produces the same [`CampaignReport::aggregate_json`] at any
/// worker count.
pub fn run_campaign(campaign: &Campaign, workers: usize, sink: &EventSink) -> CampaignReport {
    run_campaign_prefilled(campaign, workers, sink, Vec::new())
}

/// Resumes an interrupted campaign from a prior run's parsed event stream.
///
/// The log is validated against `campaign` — the campaign fingerprint
/// (name + full per-job configuration) must match, and every finished
/// job is checked by id **and** job fingerprint — then the jobs the log
/// records as finished are pre-filled from their `result` payloads and
/// only the remainder executes. The resulting
/// [`CampaignReport::aggregate_json`] is byte-identical to an
/// uninterrupted run's, and the new event stream re-lists the prefilled
/// jobs (marked `"resumed": true`), so it is itself a complete
/// checkpoint for any further resume.
///
/// # Errors
///
/// Returns an error when the log's fingerprint does not match the
/// campaign (different job set, seeds, or configuration) or a recorded
/// job does not line up with its slot.
pub fn resume_campaign(
    campaign: &Campaign,
    workers: usize,
    sink: &EventSink,
    log: &ResumeLog,
) -> Result<CampaignReport, String> {
    let prefilled = log.prefill(campaign)?;
    Ok(run_campaign_prefilled(campaign, workers, sink, prefilled))
}

/// Extra event fields every campaign job carries: its seed and its spec
/// fingerprint (the keys the resume reader validates against), plus its
/// variant name when the job sits on a swept variant axis.
fn job_event_meta(job: &Job) -> Vec<(String, Value)> {
    let mut meta = vec![
        ("seed".to_string(), Value::UInt(job.seed)),
        (
            "fingerprint".to_string(),
            Value::Str(fingerprint_hex(job_fingerprint(job))),
        ),
    ];
    if !job.variant.is_baseline() {
        meta.push(("variant".to_string(), Value::Str(job.variant.name.clone())));
    }
    meta
}

/// The outcome of [`run_checkpointed`]: id-indexed records plus the
/// run's wall-clock time (which never reaches any deterministic output).
#[derive(Debug)]
pub struct CheckpointedRun<T> {
    /// One record per job, in id order.
    pub records: Vec<JobRecord<T>>,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
}

/// Runs an arbitrary checkpointable job set on the worker pool with the
/// full campaign event protocol — `campaign_started` (carrying
/// `fingerprint`), per-job start/finish/fail events, prefilled-job
/// replay, `campaign_finished` — without assuming the jobs are
/// simulator [`Job`]s. [`run_campaign`] is this function applied to a
/// campaign's typed jobs; the conformance fuzzer applies it to fuzz
/// specs.
///
/// `jobs` must contain **every** job of the run (ids dense, `jobs[i].id
/// == i`), including those already in `prefilled`: a prefilled job's
/// `meta`, `summary`, and `resume_payload` hooks are used to re-emit its
/// `job_finished` event (marked `"resumed": true`, with its full
/// `result` payload) so the new stream alone can drive the next resume.
/// Only the jobs absent from `prefilled` execute.
///
/// # Panics
///
/// Panics if job ids are not dense or a prefilled id has no job.
pub fn run_checkpointed<T: Send + 'static>(
    name: &str,
    fingerprint: u64,
    jobs: Vec<RawJob<T>>,
    prefilled: Vec<JobRecord<T>>,
    workers: usize,
    sink: &EventSink,
) -> CheckpointedRun<T> {
    let start = Instant::now();
    for (i, job) in jobs.iter().enumerate() {
        assert_eq!(job.id, i, "job ids must be dense and in order");
    }
    sink.campaign_started(name, jobs.len(), workers, &fingerprint_hex(fingerprint));
    let skip: HashSet<usize> = prefilled.iter().map(|r| r.id).collect();
    // Replay finished events for prefilled jobs (with their full result
    // payloads) so the new stream alone can drive the next resume.
    for record in &prefilled {
        if let Ok(result) = &record.outcome {
            let job = &jobs[record.id];
            let mut extra = job.meta.clone();
            extra.push(("resumed".to_string(), Value::Bool(true)));
            if let Some(payload) = &job.resume_payload {
                extra.push(("result".to_string(), payload(result)));
            }
            let summary = job.summary.as_ref().map(|s| s(result));
            sink.job_finished(record, summary, &extra);
        }
    }
    let remaining: Vec<RawJob<T>> = jobs.into_iter().filter(|j| !skip.contains(&j.id)).collect();
    let records = run_raw_prefilled(remaining, prefilled, workers, sink);
    let finished = records.iter().filter(|r| r.outcome.is_ok()).count();
    let wall = start.elapsed();
    sink.campaign_finished(name, finished, records.len() - finished, wall);
    CheckpointedRun { records, wall }
}

fn run_campaign_prefilled(
    campaign: &Campaign,
    workers: usize,
    sink: &EventSink,
    prefilled: Vec<JobRecord<RunResult>>,
) -> CampaignReport {
    let raw: Vec<RawJob<RunResult>> = campaign
        .jobs
        .iter()
        .cloned()
        .map(|job| RawJob {
            id: job.id,
            label: job.label(),
            timeout: job.timeout,
            summary: Some(Box::new(job_summary)),
            resume_payload: Some(Box::new(|result: &RunResult| result.to_json())),
            meta: job_event_meta(&job),
            body: Box::new(move |token| {
                if token.cancelled() {
                    return Err("cancelled before start".to_string());
                }
                let _span = telemetry::span("job.run");
                job.run()
            }),
        })
        .collect();
    let run = run_checkpointed(
        &campaign.name,
        campaign_fingerprint(campaign),
        raw,
        prefilled,
        workers,
        sink,
    );
    let mut totals = Telemetry::new();
    for record in &run.records {
        if let Some(t) = &record.telemetry {
            totals.merge(t);
        }
    }
    CampaignReport {
        spec: campaign.clone(),
        records: run.records,
        totals,
        wall: run.wall,
    }
}

/// The compact per-job summary attached to `job_finished` events: the
/// headline numbers, not the full `RunResult`.
fn job_summary(result: &RunResult) -> Value {
    Value::Object(vec![
        ("mode".to_string(), Value::Str(result.mode.clone())),
        ("makespan".to_string(), Value::UInt(result.makespan)),
        (
            "races_distinct".to_string(),
            Value::UInt(result.races.distinct as u64),
        ),
        ("pmis".to_string(), Value::UInt(result.pmis)),
        (
            "accesses_analyzed".to_string(),
            Value::UInt(result.accesses_analyzed),
        ),
        (
            "enabled_cycles".to_string(),
            Value::UInt(result.enabled_cycles),
        ),
        ("total_cycles".to_string(), Value::UInt(result.total_cycles)),
    ])
}
