//! The job model: one [`Job`] is a single simulator run; a [`Campaign`] is
//! a declarative set of jobs built from sweep axes.

use crate::variant::JobVariant;
use ddrace_core::{AnalysisMode, DetectorKind, IngestEngine, RunResult, SimConfig, Simulation};
use ddrace_pmu::IndicatorMode;
use ddrace_program::{PickStrategy, SchedulerConfig};
use ddrace_workloads::{IterProfile, Scale, Structure, Suite, WorkloadSpec};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A recorded `.ddt` trace acting as a campaign input: instead of
/// generating a workload program and scheduling it, the job replays the
/// trace's interleaving through the detector configuration.
///
/// Identity for resume purposes is the pair (name, header fingerprint) —
/// *not* the path, so a corpus directory can move between machines
/// without invalidating its checkpoints, while re-recording a trace with
/// different contents refuses cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSource {
    /// Where the trace lives; read lazily when the job runs.
    pub path: PathBuf,
    /// Corpus-relative name (file stem), used in labels and events.
    pub name: String,
    /// The trace header's program/config identity fingerprint.
    pub fingerprint: u64,
}

impl TraceSource {
    /// Opens `path` far enough to read the trace header and returns the
    /// source (name = file stem).
    ///
    /// # Errors
    ///
    /// Returns the decoder's message (version skew, corrupt header, I/O)
    /// as a string.
    pub fn from_file(path: impl AsRef<Path>) -> Result<TraceSource, String> {
        let path = path.as_ref();
        let meta = ddrace_trace::read_meta(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".to_string());
        Ok(TraceSource {
            path: path.to_path_buf(),
            name,
            fingerprint: meta.fingerprint,
        })
    }
}

/// One unit of campaign work: a workload run under one analysis mode with
/// one seed, one configuration variant, and explicit overrides.
///
/// Jobs are pure descriptions — running one never mutates the campaign —
/// and carry a stable `id` assigned at build time, so results can be
/// reassembled in declaration order no matter how the worker pool
/// scheduled them.
///
/// The scalar fields (`scale`, `cores`, `quantum`, `detector_kind`) hold
/// the **effective** values: the builder materializes any variant
/// overrides into them, so a job reads the same whether its configuration
/// came from the campaign-wide defaults or its variant's patch. The
/// variant's nested overrides (cache geometry, demand-mode knobs) are
/// applied in [`Job::sim_config`].
#[derive(Debug, Clone)]
pub struct Job {
    /// Position of this job in its campaign (also its result slot).
    pub id: usize,
    /// The workload to run.
    pub workload: WorkloadSpec,
    /// The analysis mode to run it under.
    pub mode: AnalysisMode,
    /// Seed for both workload generation and the interleaving scheduler.
    pub seed: u64,
    /// Workload scale preset (effective; variant overrides materialized).
    pub scale: Scale,
    /// Simulated core count (effective).
    pub cores: usize,
    /// Scheduler quantum in cycles per timeslice (effective).
    pub quantum: u32,
    /// Which detector implementation analysis modes use (effective).
    pub detector_kind: DetectorKind,
    /// The variant-axis point this job belongs to; carries the cache and
    /// demand-knob overrides and names the job in labels and events.
    pub variant: JobVariant,
    /// Runnable-thread picker. Not part of the job fingerprint: both
    /// strategies produce digest-identical results (pinned by the
    /// schedule-equivalence suite), so it cannot affect the outcome.
    pub pick_strategy: PickStrategy,
    /// `Some` for trace-corpus jobs: replay this recorded trace instead
    /// of generating and scheduling `workload` (which then only lends
    /// its name to labels).
    pub trace: Option<TraceSource>,
    /// How trace-corpus jobs schedule decode vs. detection. Like
    /// `pick_strategy`, not part of the job fingerprint: both engines
    /// produce identical results (pinned by the ingest-equivalence
    /// suite), so it cannot affect the outcome — it only trades wall
    /// clock.
    pub ingest_engine: IngestEngine,
    /// Wall-clock budget; `None` means unlimited.
    pub timeout: Option<Duration>,
}

impl Job {
    /// The human name used in events and progress: `workload/mode/s{seed}`,
    /// with the variant name appended (`.../{variant}`) for any
    /// non-baseline variant, so jobs that differ only in swept
    /// configuration — cores, quantum, scale, detector, cache geometry —
    /// never share a label.
    pub fn label(&self) -> String {
        let base = format!(
            "{}/{}/s{}",
            self.workload.name,
            self.mode.label(),
            self.seed
        );
        if self.variant.is_baseline() {
            base
        } else {
            format!("{base}/{}", self.variant.name)
        }
    }

    /// The simulation config this job describes, with the variant's cache
    /// geometry and demand-mode knob overrides applied.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::new(self.cores, self.mode);
        cfg.scheduler = SchedulerConfig {
            quantum: self.quantum,
            seed: self.seed,
            jitter: true,
        };
        cfg.detector_kind = self.detector_kind;
        cfg.pick_strategy = self.pick_strategy;
        let patch = &self.variant.patch;
        if let Some(l1) = patch.l1 {
            cfg.cache.l1 = l1;
        }
        if let Some(l2) = patch.l2 {
            cfg.cache.l2 = l2;
        }
        if let Some(l3) = patch.l3 {
            cfg.cache.l3 = l3;
        }
        if let AnalysisMode::Demand {
            indicator,
            controller,
        } = &mut cfg.mode
        {
            if let (Some(period), IndicatorMode::HitmSampling { period: p, .. }) =
                (patch.sample_period, indicator)
            {
                *p = period;
            }
            if let Some(cooldown) = patch.cooldown_accesses {
                controller.cooldown_accesses = cooldown;
            }
        }
        cfg
    }

    /// Runs the simulation synchronously on the calling thread: generate
    /// and schedule the workload, or — for trace-corpus jobs — decode
    /// and replay the recorded interleaving.
    pub fn run(&self) -> Result<RunResult, String> {
        if let Some(source) = &self.trace {
            let _span = ddrace_telemetry::span("job.ingest");
            ddrace_telemetry::counter("ingest.traces", 1);
            // Streamed slab-at-a-time replay: the record stream is never
            // materialised, and content validation (duplicate thread
            // finishes) happens inline before events reach the detector.
            return ddrace_core::ingest_path(
                &Simulation::new(self.sim_config()),
                &source.path,
                self.ingest_engine,
            )
            .map_err(|e| format!("{}: {e}", source.path.display()));
        }
        let program = {
            let _span = ddrace_telemetry::span("job.generate");
            ddrace_telemetry::counter("gen.programs", 1);
            self.workload.program(self.scale, self.seed)
        };
        Simulation::new(self.sim_config())
            .run(program)
            .map_err(|e| format!("schedule error: {e}"))
    }
}

/// The stand-in workload spec a trace-corpus job carries: it exists so
/// labels and the aggregate's workload axis have a name; trace jobs
/// never generate a program from it.
fn trace_placeholder_workload(name: &str) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_string(),
        suite: Suite::Kernel,
        workers: 1,
        structure: Structure::ForkJoin {
            iterations: 1,
            barrier_per_iter: false,
        },
        iter: IterProfile::private_only(0),
        init_shared_words: 0,
        final_merge_words: 0,
        private_bytes: 64,
        shared_bytes: 64,
        hot_words: 1,
        lock_count: 1,
    }
}

/// A named, ordered set of jobs produced by [`CampaignBuilder`].
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign name; becomes the aggregate's `"campaign"` field.
    pub name: String,
    /// Jobs in declaration order; `jobs[i].id == i`.
    pub jobs: Vec<Job>,
    /// The mode axis the jobs were built from, in order.
    pub modes: Vec<AnalysisMode>,
    /// The workload axis the jobs were built from, in order.
    pub workloads: Vec<WorkloadSpec>,
    /// The seed axis the jobs were built from, in order.
    pub seeds: Vec<u64>,
    /// The variant axis the jobs were built from, in order. Campaigns
    /// built without [`CampaignBuilder::variants`] carry the single
    /// implicit [`JobVariant::baseline`] point.
    pub variants: Vec<JobVariant>,
}

impl Campaign {
    /// Starts building a campaign.
    pub fn builder(name: impl Into<String>) -> CampaignBuilder {
        CampaignBuilder {
            name: name.into(),
            workloads: Vec::new(),
            traces: Vec::new(),
            modes: vec![AnalysisMode::Native],
            seeds: vec![42],
            variants: vec![JobVariant::baseline()],
            scale: Scale::SMALL,
            cores: 8,
            quantum: 32,
            detector_kind: DetectorKind::default(),
            pick_strategy: PickStrategy::default(),
            ingest_engine: IngestEngine::default(),
            timeout: None,
        }
    }

    /// True when this campaign sweeps configuration variants (anything
    /// beyond the single implicit baseline). Gates the `variant` fields in
    /// the aggregate so variant-free campaigns keep their historical shape.
    pub fn has_variant_axis(&self) -> bool {
        !(self.variants.len() == 1 && self.variants[0].is_baseline())
    }
}

/// Declarative sweep axes; `build` takes the cross product
/// workload × mode × variant × seed in that (workload-major,
/// seed-innermost) order.
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    name: String,
    workloads: Vec<WorkloadSpec>,
    traces: Vec<TraceSource>,
    modes: Vec<AnalysisMode>,
    seeds: Vec<u64>,
    variants: Vec<JobVariant>,
    scale: Scale,
    cores: usize,
    quantum: u32,
    detector_kind: DetectorKind,
    pick_strategy: PickStrategy,
    ingest_engine: IngestEngine,
    timeout: Option<Duration>,
}

impl CampaignBuilder {
    /// Adds workloads to the workload axis.
    pub fn workloads(mut self, specs: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads.extend(specs);
        self
    }

    /// Adds recorded traces to the workload axis: each source becomes a
    /// sweep position (after any generated workloads) whose jobs replay
    /// the trace under every mode × variant × seed instead of scheduling
    /// a program — so detectors and modes sweep over a recorded corpus
    /// exactly like they sweep over synthetic workloads.
    pub fn trace_corpus(mut self, sources: impl IntoIterator<Item = TraceSource>) -> Self {
        self.traces.extend(sources);
        self
    }

    /// Sets the analysis-mode axis (replacing the default `[Native]`).
    pub fn modes(mut self, modes: impl IntoIterator<Item = AnalysisMode>) -> Self {
        self.modes = modes.into_iter().collect();
        self
    }

    /// Sets the seed axis (replacing the default `[42]`).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the variant axis (replacing the implicit single baseline):
    /// every (workload, mode) cell runs once per variant per seed, with
    /// each variant's [`ConfigPatch`](crate::ConfigPatch) applied on top
    /// of the builder-wide configuration.
    pub fn variants(mut self, variants: impl IntoIterator<Item = JobVariant>) -> Self {
        self.variants = variants.into_iter().collect();
        self
    }

    /// Sets the workload scale for every job.
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the simulated core count for every job.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the scheduler quantum for every job.
    pub fn quantum(mut self, quantum: u32) -> Self {
        self.quantum = quantum;
        self
    }

    /// Sets the detector implementation for every job.
    pub fn detector_kind(mut self, kind: DetectorKind) -> Self {
        self.detector_kind = kind;
        self
    }

    /// Sets the scheduler's runnable-thread picker for every job.
    pub fn pick_strategy(mut self, strategy: PickStrategy) -> Self {
        self.pick_strategy = strategy;
        self
    }

    /// Sets the ingest engine trace-corpus jobs replay through (default
    /// [`IngestEngine::Pipelined`]); generated-workload jobs ignore it.
    pub fn ingest_engine(mut self, engine: IngestEngine) -> Self {
        self.ingest_engine = engine;
        self
    }

    /// Sets a per-job wall-clock timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Expands the axes into a [`Campaign`]; job ids follow declaration
    /// order: workloads outermost, then modes, then variants, then seeds.
    ///
    /// Variant scalar overrides are materialized here: a job's `scale`,
    /// `cores`, `quantum`, and `detector_kind` fields hold the effective
    /// values after its variant's patch is applied.
    pub fn build(self) -> Campaign {
        // Trace sources join the workload axis after generated workloads,
        // each carrying a stand-in spec so labels/axes have a name.
        let sources: Vec<(WorkloadSpec, Option<TraceSource>)> = self
            .workloads
            .iter()
            .map(|w| (w.clone(), None))
            .chain(
                self.traces
                    .iter()
                    .map(|t| (trace_placeholder_workload(&t.name), Some(t.clone()))),
            )
            .collect();
        let mut jobs = Vec::with_capacity(
            sources.len() * self.modes.len() * self.variants.len() * self.seeds.len(),
        );
        for (workload, trace) in &sources {
            for &mode in &self.modes {
                for variant in &self.variants {
                    let patch = &variant.patch;
                    for &seed in &self.seeds {
                        jobs.push(Job {
                            id: jobs.len(),
                            workload: workload.clone(),
                            mode,
                            seed,
                            scale: patch.scale.unwrap_or(self.scale),
                            cores: patch.cores.unwrap_or(self.cores),
                            quantum: patch.quantum.unwrap_or(self.quantum),
                            detector_kind: patch.detector_kind.unwrap_or(self.detector_kind),
                            variant: variant.clone(),
                            pick_strategy: self.pick_strategy,
                            trace: trace.clone(),
                            ingest_engine: self.ingest_engine,
                            timeout: self.timeout,
                        });
                    }
                }
            }
        }
        Campaign {
            name: self.name,
            jobs,
            modes: self.modes,
            workloads: sources.into_iter().map(|(w, _)| w).collect(),
            seeds: self.seeds,
            variants: self.variants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::ConfigPatch;
    use ddrace_cache::LevelConfig;
    use ddrace_workloads::racy;
    use std::collections::HashSet;

    #[test]
    fn baseline_labels_keep_historical_shape() {
        let spec = Campaign::builder("labels")
            .workloads([racy::sparse_race()])
            .modes([AnalysisMode::Native])
            .seeds([7])
            .build();
        assert_eq!(spec.jobs[0].label(), "sparse_race/native/s7");
        assert!(!spec.has_variant_axis());
    }

    #[test]
    fn variant_swept_jobs_get_unique_labels() {
        // Jobs differing only in cores/quantum/detector — the regression:
        // the old `workload/mode/s{seed}` label collapsed them all.
        let spec = Campaign::builder("labels")
            .workloads([racy::sparse_race()])
            .modes([AnalysisMode::Native, AnalysisMode::demand_hitm()])
            .variants([
                JobVariant::with_cores(1),
                JobVariant::with_cores(4),
                JobVariant::new(
                    "q8",
                    ConfigPatch {
                        quantum: Some(8),
                        ..ConfigPatch::default()
                    },
                ),
                JobVariant::new(
                    "djit",
                    ConfigPatch {
                        detector_kind: Some(DetectorKind::Djit),
                        ..ConfigPatch::default()
                    },
                ),
            ])
            .seeds([1, 2])
            .build();
        assert!(spec.has_variant_axis());
        let labels: HashSet<String> = spec.jobs.iter().map(Job::label).collect();
        assert_eq!(
            labels.len(),
            spec.jobs.len(),
            "every variant-swept job needs a distinct label: {labels:?}"
        );
        assert!(labels.contains("sparse_race/native/s1/c4"));
    }

    #[test]
    fn build_materializes_scalar_overrides() {
        let spec = Campaign::builder("mat")
            .workloads([racy::sparse_race()])
            .modes([AnalysisMode::Native])
            .variants([
                JobVariant::baseline(),
                JobVariant::new(
                    "small",
                    ConfigPatch {
                        cores: Some(2),
                        quantum: Some(16),
                        scale: Some(Scale::TEST),
                        detector_kind: Some(DetectorKind::LockSet),
                        ..ConfigPatch::default()
                    },
                ),
            ])
            .cores(8)
            .quantum(32)
            .scale(Scale::SMALL)
            .build();
        let base = &spec.jobs[0];
        let small = &spec.jobs[1];
        assert_eq!(
            (base.cores, base.quantum, base.scale),
            (8, 32, Scale::SMALL)
        );
        assert_eq!(
            (small.cores, small.quantum, small.scale),
            (2, 16, Scale::TEST)
        );
        assert_eq!(small.detector_kind, DetectorKind::LockSet);
    }

    #[test]
    fn sim_config_applies_cache_and_demand_knobs() {
        let l2 = LevelConfig {
            sets: 32,
            ways: 8,
            latency: 12,
        };
        let spec = Campaign::builder("patch")
            .workloads([racy::sparse_race()])
            .modes([AnalysisMode::demand_hitm()])
            .variants([JobVariant::new(
                "tuned",
                ConfigPatch {
                    l2: Some(l2),
                    sample_period: Some(64),
                    cooldown_accesses: Some(123),
                    ..ConfigPatch::default()
                },
            )])
            .build();
        let cfg = spec.jobs[0].sim_config();
        assert_eq!(cfg.cache.l2, l2);
        // Untouched levels keep the Nehalem defaults.
        assert_eq!(cfg.cache.l1.sets, 64);
        match cfg.mode {
            AnalysisMode::Demand {
                indicator: IndicatorMode::HitmSampling { period, .. },
                controller,
            } => {
                assert_eq!(period, 64);
                assert_eq!(controller.cooldown_accesses, 123);
            }
            other => panic!("expected patched demand mode, got {other:?}"),
        }
        // The job's declared mode is untouched; only the sim config is.
        assert_eq!(spec.jobs[0].mode, AnalysisMode::demand_hitm());
    }

    #[test]
    fn cross_product_order_is_variant_then_seed() {
        let spec = Campaign::builder("order")
            .workloads([racy::sparse_race()])
            .modes([AnalysisMode::Native, AnalysisMode::Continuous])
            .variants([JobVariant::with_cores(1), JobVariant::with_cores(2)])
            .seeds([10, 11])
            .build();
        assert_eq!(spec.jobs.len(), 8);
        // mode-major, then variant, then seed.
        let key = |j: &Job| (j.mode.label().to_string(), j.cores, j.seed);
        assert_eq!(key(&spec.jobs[0]), ("native".into(), 1, 10));
        assert_eq!(key(&spec.jobs[1]), ("native".into(), 1, 11));
        assert_eq!(key(&spec.jobs[2]), ("native".into(), 2, 10));
        assert_eq!(key(&spec.jobs[4]), ("continuous".into(), 1, 10));
    }
}
