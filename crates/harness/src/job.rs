//! The job model: one [`Job`] is a single simulator run; a [`Campaign`] is
//! a declarative set of jobs built from sweep axes.

use ddrace_core::{AnalysisMode, DetectorKind, RunResult, SimConfig, Simulation};
use ddrace_program::{PickStrategy, SchedulerConfig};
use ddrace_workloads::{Scale, WorkloadSpec};
use std::time::Duration;

/// One unit of campaign work: a workload run under one analysis mode with
/// one seed and explicit configuration overrides.
///
/// Jobs are pure descriptions — running one never mutates the campaign —
/// and carry a stable `id` assigned at build time, so results can be
/// reassembled in declaration order no matter how the worker pool
/// scheduled them.
#[derive(Debug, Clone)]
pub struct Job {
    /// Position of this job in its campaign (also its result slot).
    pub id: usize,
    /// The workload to run.
    pub workload: WorkloadSpec,
    /// The analysis mode to run it under.
    pub mode: AnalysisMode,
    /// Seed for both workload generation and the interleaving scheduler.
    pub seed: u64,
    /// Workload scale preset.
    pub scale: Scale,
    /// Simulated core count.
    pub cores: usize,
    /// Scheduler quantum (cycles per timeslice before a switch roll).
    pub quantum: u32,
    /// Which detector implementation analysis modes use.
    pub detector_kind: DetectorKind,
    /// Runnable-thread picker. Not part of the job fingerprint: both
    /// strategies produce digest-identical results (pinned by the
    /// schedule-equivalence suite), so it cannot affect the outcome.
    pub pick_strategy: PickStrategy,
    /// Wall-clock budget; `None` means unlimited.
    pub timeout: Option<Duration>,
}

impl Job {
    /// `workload/mode/seed`, the human name used in events and progress.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/s{}",
            self.workload.name,
            self.mode.label(),
            self.seed
        )
    }

    /// The simulation config this job describes.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::new(self.cores, self.mode);
        cfg.scheduler = SchedulerConfig {
            quantum: self.quantum,
            seed: self.seed,
            jitter: true,
        };
        cfg.detector_kind = self.detector_kind;
        cfg.pick_strategy = self.pick_strategy;
        cfg
    }

    /// Runs the simulation synchronously on the calling thread.
    pub fn run(&self) -> Result<RunResult, String> {
        let program = {
            let _span = ddrace_telemetry::span("job.generate");
            ddrace_telemetry::counter("gen.programs", 1);
            self.workload.program(self.scale, self.seed)
        };
        Simulation::new(self.sim_config())
            .run(program)
            .map_err(|e| format!("schedule error: {e}"))
    }
}

/// A named, ordered set of jobs produced by [`CampaignBuilder`].
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign name; becomes the aggregate's `"campaign"` field.
    pub name: String,
    /// Jobs in declaration order; `jobs[i].id == i`.
    pub jobs: Vec<Job>,
    /// The mode axis the jobs were built from, in order.
    pub modes: Vec<AnalysisMode>,
    /// The workload axis the jobs were built from, in order.
    pub workloads: Vec<WorkloadSpec>,
    /// The seed axis the jobs were built from, in order.
    pub seeds: Vec<u64>,
}

impl Campaign {
    /// Starts building a campaign.
    pub fn builder(name: impl Into<String>) -> CampaignBuilder {
        CampaignBuilder {
            name: name.into(),
            workloads: Vec::new(),
            modes: vec![AnalysisMode::Native],
            seeds: vec![42],
            scale: Scale::SMALL,
            cores: 8,
            quantum: 32,
            detector_kind: DetectorKind::default(),
            pick_strategy: PickStrategy::default(),
            timeout: None,
        }
    }
}

/// Declarative sweep axes; `build` takes the cross product
/// workload × mode × seed in that (workload-major) order.
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    name: String,
    workloads: Vec<WorkloadSpec>,
    modes: Vec<AnalysisMode>,
    seeds: Vec<u64>,
    scale: Scale,
    cores: usize,
    quantum: u32,
    detector_kind: DetectorKind,
    pick_strategy: PickStrategy,
    timeout: Option<Duration>,
}

impl CampaignBuilder {
    /// Adds workloads to the workload axis.
    pub fn workloads(mut self, specs: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads.extend(specs);
        self
    }

    /// Sets the analysis-mode axis (replacing the default `[Native]`).
    pub fn modes(mut self, modes: impl IntoIterator<Item = AnalysisMode>) -> Self {
        self.modes = modes.into_iter().collect();
        self
    }

    /// Sets the seed axis (replacing the default `[42]`).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the workload scale for every job.
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the simulated core count for every job.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the scheduler quantum for every job.
    pub fn quantum(mut self, quantum: u32) -> Self {
        self.quantum = quantum;
        self
    }

    /// Sets the detector implementation for every job.
    pub fn detector_kind(mut self, kind: DetectorKind) -> Self {
        self.detector_kind = kind;
        self
    }

    /// Sets the scheduler's runnable-thread picker for every job.
    pub fn pick_strategy(mut self, strategy: PickStrategy) -> Self {
        self.pick_strategy = strategy;
        self
    }

    /// Sets a per-job wall-clock timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Expands the axes into a [`Campaign`]; job ids follow declaration
    /// order: workloads outermost, then modes, then seeds.
    pub fn build(self) -> Campaign {
        let mut jobs =
            Vec::with_capacity(self.workloads.len() * self.modes.len() * self.seeds.len());
        for workload in &self.workloads {
            for &mode in &self.modes {
                for &seed in &self.seeds {
                    jobs.push(Job {
                        id: jobs.len(),
                        workload: workload.clone(),
                        mode,
                        seed,
                        scale: self.scale,
                        cores: self.cores,
                        quantum: self.quantum,
                        detector_kind: self.detector_kind,
                        pick_strategy: self.pick_strategy,
                        timeout: self.timeout,
                    });
                }
            }
        }
        Campaign {
            name: self.name,
            jobs,
            modes: self.modes,
            workloads: self.workloads,
            seeds: self.seeds,
        }
    }
}
