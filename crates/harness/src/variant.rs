//! The variant axis: named per-job configuration overrides.
//!
//! The mode axis covers the paper's main comparison (native vs continuous
//! vs demand-driven), but the sensitivity experiments sweep *hardware and
//! tool configuration*: A3 shrinks the private caches until HITM recall
//! collapses, A5 packs more threads per core until coherence traffic
//! disappears. A [`JobVariant`] is one point of such a sweep — a name plus
//! a [`ConfigPatch`] of optional overrides — and
//! [`CampaignBuilder::variants`](crate::CampaignBuilder::variants) crosses
//! the variant axis with the workload × mode × seed axes.
//!
//! Variants are first-class campaign citizens: the variant name lands in
//! job labels, `job_started`/`job_finished` events, and the aggregate, and
//! the patch is hashed into the job fingerprint, so `--resume` can never
//! confuse two jobs that differ only in swept configuration.

use ddrace_cache::LevelConfig;
use ddrace_core::DetectorKind;
use ddrace_json::{ToJson, Value};
use ddrace_workloads::Scale;

/// Optional overrides a variant applies on top of the campaign-wide job
/// configuration. `None` fields inherit the builder's value.
///
/// Scalar overrides (`cores`, `quantum`, `scale`, `detector_kind`) are
/// materialized into the [`Job`](crate::Job)'s own fields at build time;
/// the nested overrides (cache geometry, demand-mode knobs) are applied in
/// [`Job::sim_config`](crate::Job::sim_config).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConfigPatch {
    /// Simulated core count.
    pub cores: Option<usize>,
    /// Scheduler quantum (cycles per timeslice).
    pub quantum: Option<u32>,
    /// Workload scale preset.
    pub scale: Option<Scale>,
    /// Detector implementation.
    pub detector_kind: Option<DetectorKind>,
    /// Private L1 geometry.
    pub l1: Option<LevelConfig>,
    /// Private L2 geometry.
    pub l2: Option<LevelConfig>,
    /// Shared L3 geometry.
    pub l3: Option<LevelConfig>,
    /// HITM sample-after value (demand modes with a sampling indicator).
    pub sample_period: Option<u64>,
    /// Controller cooldown in analyzed accesses (demand modes).
    pub cooldown_accesses: Option<u64>,
}

impl ConfigPatch {
    /// True when the patch overrides nothing.
    pub fn is_identity(&self) -> bool {
        *self == ConfigPatch::default()
    }
}

impl ToJson for ConfigPatch {
    /// Canonical JSON for fingerprinting: only the overridden fields, in a
    /// fixed order, so adding a new `None` field later never perturbs
    /// existing fingerprints.
    fn to_json(&self) -> Value {
        let mut fields = Vec::new();
        if let Some(cores) = self.cores {
            fields.push(("cores".to_string(), Value::UInt(cores as u64)));
        }
        if let Some(quantum) = self.quantum {
            fields.push(("quantum".to_string(), Value::UInt(u64::from(quantum))));
        }
        if let Some(scale) = self.scale {
            fields.push(("scale".to_string(), scale.to_json()));
        }
        if let Some(kind) = self.detector_kind {
            fields.push(("detector_kind".to_string(), kind.to_json()));
        }
        if let Some(l1) = self.l1 {
            fields.push(("l1".to_string(), l1.to_json()));
        }
        if let Some(l2) = self.l2 {
            fields.push(("l2".to_string(), l2.to_json()));
        }
        if let Some(l3) = self.l3 {
            fields.push(("l3".to_string(), l3.to_json()));
        }
        if let Some(period) = self.sample_period {
            fields.push(("sample_period".to_string(), Value::UInt(period)));
        }
        if let Some(cooldown) = self.cooldown_accesses {
            fields.push(("cooldown_accesses".to_string(), Value::UInt(cooldown)));
        }
        Value::Object(fields)
    }
}

/// One point of the variant axis: a name (it suffixes job labels and tags
/// events and aggregate records) plus the configuration it applies.
#[derive(Debug, Clone, PartialEq)]
pub struct JobVariant {
    /// Short name, e.g. `c4` or `16KiB`. Appears in labels as
    /// `workload/mode/s{seed}/{name}`.
    pub name: String,
    /// The overrides this variant applies.
    pub patch: ConfigPatch,
}

impl JobVariant {
    /// A named variant with the given patch.
    pub fn new(name: impl Into<String>, patch: ConfigPatch) -> JobVariant {
        JobVariant {
            name: name.into(),
            patch,
        }
    }

    /// The implicit single point of a campaign without a variant axis.
    /// Baseline jobs keep the historical label, fingerprint, and aggregate
    /// shape — a campaign built without `variants(...)` is byte-identical
    /// to one built before the axis existed.
    pub fn baseline() -> JobVariant {
        JobVariant {
            name: "base".to_string(),
            patch: ConfigPatch::default(),
        }
    }

    /// True for the implicit no-override point created by
    /// [`JobVariant::baseline`].
    pub fn is_baseline(&self) -> bool {
        self.name == "base" && self.patch.is_identity()
    }

    /// A `c{cores}` variant overriding only the simulated core count —
    /// the A5 SMT sweep's axis (thread `t` runs on core `t mod cores`, so
    /// fewer cores co-schedule more threads per core).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is 0 or greater than 64 (the simulator's limit).
    pub fn with_cores(cores: usize) -> JobVariant {
        assert!(
            (1..=64).contains(&cores),
            "core-count variant must be in 1..=64, got {cores}"
        );
        JobVariant {
            name: format!("c{cores}"),
            patch: ConfigPatch {
                cores: Some(cores),
                ..ConfigPatch::default()
            },
        }
    }

    /// A private-cache-size variant: `l2_sets` 8-way L2 sets with the L1
    /// co-scaled at 1/8 of the L2 (floor of 2 sets), the geometry the A3
    /// sweep uses. The label names the **L2** capacity; the sweep scales
    /// the whole private hierarchy, not the L2 alone (see EXPERIMENTS.md).
    ///
    /// # Panics
    ///
    /// Panics if `l2_sets` is not a power of two (cache geometry rule).
    pub fn private_cache(label: impl Into<String>, l2_sets: usize) -> JobVariant {
        assert!(
            l2_sets.is_power_of_two(),
            "cache sets must be a power of two, got {l2_sets}"
        );
        JobVariant {
            name: label.into(),
            patch: ConfigPatch {
                l1: Some(LevelConfig {
                    sets: (l2_sets / 8).max(2),
                    ways: 8,
                    latency: 4,
                }),
                l2: Some(LevelConfig {
                    sets: l2_sets,
                    ways: 8,
                    latency: 12,
                }),
                ..ConfigPatch::default()
            },
        }
    }

    /// The canonical five-point private-cache ladder of experiment A3:
    /// 16 KiB to 4 MiB of private L2 (L1 co-scaled at 1/8). Labels name
    /// the L2 capacity.
    pub fn private_cache_sweep() -> Vec<JobVariant> {
        [
            ("16KiB", 32usize),
            ("64KiB", 128),
            ("256KiB", 512),
            ("1MiB", 2048),
            ("4MiB", 8192),
        ]
        .into_iter()
        .map(|(label, sets)| JobVariant::private_cache(label, sets))
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_patch_is_identity() {
        assert!(ConfigPatch::default().is_identity());
        let patched = ConfigPatch {
            cores: Some(4),
            ..ConfigPatch::default()
        };
        assert!(!patched.is_identity());
    }

    #[test]
    fn baseline_detection() {
        assert!(JobVariant::baseline().is_baseline());
        assert!(!JobVariant::with_cores(4).is_baseline());
        // A named variant with an identity patch is not the baseline: the
        // caller asked for a labelled axis point.
        assert!(!JobVariant::new("foo", ConfigPatch::default()).is_baseline());
    }

    #[test]
    fn patch_json_is_sparse_and_ordered() {
        assert_eq!(ConfigPatch::default().to_json().to_compact(), "{}");
        let patch = ConfigPatch {
            quantum: Some(8),
            cores: Some(2),
            ..ConfigPatch::default()
        };
        // Field order is fixed (declaration order), not insertion order.
        assert_eq!(patch.to_json().to_compact(), "{\"cores\":2,\"quantum\":8}");
    }

    #[test]
    fn cache_sweep_geometry_matches_a3_formula() {
        let v = JobVariant::private_cache("16KiB", 32);
        let l1 = v.patch.l1.unwrap();
        let l2 = v.patch.l2.unwrap();
        assert_eq!(l1.sets, 4); // 32/8
        assert_eq!(l2.sets, 32);
        // Floor: a tiny L2 still leaves a 2-set L1.
        let tiny = JobVariant::private_cache("tiny", 8);
        assert_eq!(tiny.patch.l1.unwrap().sets, 2);
        assert_eq!(JobVariant::private_cache_sweep().len(), 5);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_core_variant_rejected() {
        let _ = JobVariant::with_cores(0);
    }
}
