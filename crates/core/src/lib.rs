//! **ddrace-core** — the demand-driven race-detection controller: the
//! primary contribution of *"Demand-driven software race detection using
//! hardware performance counters"* (Greathouse, Ma, Frank, Peri, Austin;
//! ISCA 2011), reproduced as a deterministic simulation.
//!
//! Software race detectors that instrument every memory access cost
//! 30–300×. The paper's observation: races require inter-thread sharing,
//! and sharing of recently-written data is visible to hardware as HITM
//! cache-coherence events countable by the PMU. So run uninstrumented by
//! default, arm a HITM counter, and enable the expensive race detector
//! only when the hardware says sharing is happening; turn it back off
//! after software observes a long enough sharing-free streak.
//!
//! This crate binds the substrates together:
//!
//! * [`Simulation`] drives a program (from `ddrace-program`) through the
//!   cache hierarchy (`ddrace-cache`), feeds the [`SharingIndicator`]
//!   (`ddrace-pmu`) while analysis is off, and the race detector
//!   (`ddrace-detector`) while on;
//! * [`DemandController`] is the enable/disable state machine;
//! * [`CostModel`] accounts simulated cycles so mode-vs-mode slowdowns
//!   reproduce the paper's headline ratios;
//! * [`RunResult`] carries everything the experiments report.
//!
//! # Example
//!
//! ```
//! use ddrace_core::{AnalysisMode, run_program};
//! use ddrace_program::{ProgramBuilder, ThreadId};
//!
//! // An unsynchronized write-write pair.
//! let mut b = ProgramBuilder::new();
//! let x = b.alloc_shared(8).base();
//! let t1 = b.add_thread();
//! b.on(ThreadId::MAIN).fork(t1).write(x).join(t1);
//! b.on(t1).write(x);
//!
//! let result = run_program(b.build(), 2, AnalysisMode::Continuous)?;
//! assert_eq!(result.races.distinct, 1);
//! # Ok::<(), ddrace_program::ScheduleError>(())
//! ```
//!
//! [`SharingIndicator`]: ddrace_pmu::SharingIndicator

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod controller;
mod cost;
mod ingest;
mod mode;
mod result;
mod sim;
mod timeline;

pub use controller::{AnalysisState, ControllerStats, DemandController};
pub use cost::CostModel;
pub use ingest::{ingest_path, ingest_reader, IngestEngine, ReplaySession};
pub use mode::{AnalysisMode, ControllerConfig, DetectorKind, EnableScope, SimConfig};
pub use result::{geomean, RaceSummary, RunResult};
pub use sim::{run_program, Simulation};
pub use timeline::{render_timeline, result_timeline, ToggleEvent, ToggleKind};
