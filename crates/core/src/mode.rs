//! Analysis modes and simulation configuration.

use crate::cost::CostModel;
use ddrace_cache::CacheConfig;
use ddrace_detector::DetectorConfig;
use ddrace_pmu::IndicatorMode;
use ddrace_program::{PickStrategy, SchedulerConfig};

/// Whose instrumentation a sharing signal enables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnableScope {
    /// One signal anywhere enables analysis for **every** thread — the
    /// paper's design. Conservative: any access racing with the shared
    /// one is observed.
    #[default]
    Global,
    /// A signal enables analysis only on the **core that took the
    /// interrupt** (the consumer side of the sharing). Cheaper toggles
    /// and lower residency, but accesses by still-dark threads go
    /// unchecked — an extension the paper discusses as finer-grained
    /// enabling.
    PerCore,
}

/// Demand-driven controller tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerConfig {
    /// Disable analysis after this many consecutive *analyzed* memory
    /// accesses with no inter-thread sharing observed in software.
    pub cooldown_accesses: u64,
    /// Hysteresis: once enabled, analyze at least this many accesses
    /// before considering a disable (prevents thrashing on bursty
    /// sharing).
    pub min_on_accesses: u64,
    /// Enable granularity.
    pub scope: EnableScope,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            cooldown_accesses: 6_000,
            min_on_accesses: 200,
            scope: EnableScope::Global,
        }
    }
}

/// How the race-analysis tool runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisMode {
    /// No tool attached at all: pure native execution. The baseline every
    /// slowdown is computed against.
    Native,
    /// The tool analyzes every memory access for the whole run — the
    /// conventional continuous-analysis configuration (Inspector XE as
    /// shipped).
    Continuous,
    /// The paper's contribution: analysis starts disabled and is toggled
    /// by the hardware sharing indicator + software cooldown.
    Demand {
        /// The hardware sharing indicator to use.
        indicator: IndicatorMode,
        /// Enable/disable policy tuning.
        controller: ControllerConfig,
    },
}

impl AnalysisMode {
    /// Demand-driven with the realistic HITM indicator at default tuning.
    pub fn demand_hitm() -> Self {
        AnalysisMode::Demand {
            indicator: IndicatorMode::hitm_default(),
            controller: ControllerConfig::default(),
        }
    }

    /// Demand-driven with the idealized oracle indicator.
    pub fn demand_oracle() -> Self {
        AnalysisMode::Demand {
            indicator: IndicatorMode::Oracle,
            controller: ControllerConfig::default(),
        }
    }

    /// Demand-driven with the oracle indicator and a controller that never
    /// disables once enabled (`min_on_accesses` saturated). This is the
    /// *eager* reference point for attributing demand-mode misses: any
    /// race this configuration still misses was lost to enable latency
    /// (the tool was dark when the racy write happened), while a race it
    /// catches but demand-HITM misses was lost to a quiet HITM indicator.
    pub fn demand_oracle_eager() -> Self {
        AnalysisMode::Demand {
            indicator: IndicatorMode::Oracle,
            controller: ControllerConfig {
                min_on_accesses: u64::MAX,
                ..ControllerConfig::default()
            },
        }
    }

    /// Returns `true` if a tool is attached (anything but native).
    pub fn tool_attached(&self) -> bool {
        !matches!(self, AnalysisMode::Native)
    }

    /// A short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            AnalysisMode::Native => "native",
            AnalysisMode::Continuous => "continuous",
            AnalysisMode::Demand {
                indicator: IndicatorMode::Oracle,
                ..
            } => "demand-oracle",
            AnalysisMode::Demand {
                indicator: IndicatorMode::Disabled,
                ..
            } => "demand-off",
            AnalysisMode::Demand { .. } => "demand-hitm",
        }
    }
}

/// Which race-detection algorithm the tool runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DetectorKind {
    /// FastTrack happens-before (the commercial-tool design; default).
    #[default]
    FastTrack,
    /// Full-vector-clock happens-before (A1 ablation).
    Djit,
    /// Eraser-style lockset (baseline foil).
    LockSet,
}

/// Complete configuration of one simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of cores; thread `t` is pinned to core `t mod cores`.
    pub cores: usize,
    /// Cache hierarchy parameters.
    pub cache: CacheConfig,
    /// Interleaving scheduler parameters.
    pub scheduler: SchedulerConfig,
    /// Runnable-thread picker implementation. Digest-equivalent choices;
    /// [`PickStrategy::LegacyScan`] is kept for equivalence testing.
    pub pick_strategy: PickStrategy,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Shadow-memory configuration.
    pub detector: DetectorConfig,
    /// Detection algorithm.
    pub detector_kind: DetectorKind,
    /// Analysis mode.
    pub mode: AnalysisMode,
    /// Capture the event stream (plus HITM-indicator samples) while the
    /// run executes, for emission as a `.ddt` trace. Recording is purely
    /// observational: a recorded run's [`RunResult`](crate::RunResult)
    /// is byte-identical to the same run without recording. Retrieve the
    /// records with [`Simulation::run_recorded`](crate::Simulation::run_recorded).
    pub record: bool,
}

impl SimConfig {
    /// A config for `cores` cores in the given mode, defaults elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is 0 or greater than 64.
    pub fn new(cores: usize, mode: AnalysisMode) -> Self {
        SimConfig {
            cores,
            cache: CacheConfig::nehalem(cores),
            scheduler: SchedulerConfig::default(),
            pick_strategy: PickStrategy::default(),
            cost: CostModel::default(),
            detector: DetectorConfig::default(),
            detector_kind: DetectorKind::FastTrack,
            mode,
            record: false,
        }
    }

    /// Validates cross-field consistency.
    ///
    /// # Panics
    ///
    /// Panics if the cache config disagrees with `cores` or is invalid.
    pub fn validate(&self) {
        assert_eq!(
            self.cache.cores, self.cores,
            "cache config must match core count"
        );
        self.cache.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let modes = [
            AnalysisMode::Native,
            AnalysisMode::Continuous,
            AnalysisMode::demand_hitm(),
            AnalysisMode::demand_oracle(),
        ];
        let labels: std::collections::HashSet<&str> = modes.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), modes.len());
    }

    #[test]
    fn tool_attachment() {
        assert!(!AnalysisMode::Native.tool_attached());
        assert!(AnalysisMode::Continuous.tool_attached());
        assert!(AnalysisMode::demand_hitm().tool_attached());
    }

    #[test]
    fn eager_mode_never_considers_disable() {
        let AnalysisMode::Demand {
            indicator,
            controller,
        } = AnalysisMode::demand_oracle_eager()
        else {
            panic!("eager mode must be demand-driven");
        };
        assert_eq!(indicator, ddrace_pmu::IndicatorMode::Oracle);
        assert_eq!(controller.min_on_accesses, u64::MAX);
        assert_eq!(AnalysisMode::demand_oracle_eager().label(), "demand-oracle");
    }

    #[test]
    fn config_construction_and_validation() {
        let cfg = SimConfig::new(4, AnalysisMode::Continuous);
        cfg.validate();
        assert_eq!(cfg.cores, 4);
        assert_eq!(cfg.detector_kind, DetectorKind::FastTrack);
    }

    #[test]
    #[should_panic(expected = "must match core count")]
    fn mismatched_cache_cores_rejected() {
        let mut cfg = SimConfig::new(4, AnalysisMode::Native);
        cfg.cores = 8;
        cfg.validate();
    }

    #[test]
    fn controller_defaults() {
        let c = ControllerConfig::default();
        assert!(c.cooldown_accesses > c.min_on_accesses);
    }
}

ddrace_json::json_unit_enum!(EnableScope { Global, PerCore });
ddrace_json::json_struct!(ControllerConfig {
    cooldown_accesses,
    min_on_accesses,
    scope
});
ddrace_json::json_enum!(AnalysisMode {
    Native,
    Continuous,
    Demand { indicator, controller }
});
ddrace_json::json_unit_enum!(DetectorKind {
    FastTrack,
    Djit,
    LockSet
});
