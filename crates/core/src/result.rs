//! Results of one simulated run and derived metrics.

use crate::controller::ControllerStats;
use crate::timeline::ToggleEvent;
use ddrace_cache::CacheStats;
use ddrace_detector::{DetectorStats, RaceReport};
use ddrace_program::{OpCounts, RunStats};

/// Summary of the races a run detected.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RaceSummary {
    /// Distinct races (deduplicated pairs).
    pub distinct: usize,
    /// Distinct shadow units (≈ variables) involved.
    pub distinct_addresses: usize,
    /// Total racy events observed including duplicates.
    pub occurrences: u64,
    /// The distinct reports themselves.
    pub reports: Vec<RaceReport>,
    /// Occurrence counts aligned with `reports`.
    pub report_occurrences: Vec<u64>,
}

/// Everything measured in one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The mode label ("native", "continuous", "demand-hitm", ...).
    pub mode: String,
    /// Simulated end-to-end time: the maximum per-core cycle count.
    pub makespan: u64,
    /// Cycles accumulated per core.
    pub core_cycles: Vec<u64>,
    /// Races found (empty in native mode).
    pub races: RaceSummary,
    /// Cache and coherence statistics.
    pub cache: CacheStats,
    /// Detector work counters, if a tool was attached.
    pub detector: Option<DetectorStats>,
    /// Controller transition counters, if demand-driven.
    pub controller: Option<ControllerStats>,
    /// Scheduler statistics.
    pub schedule: RunStats,
    /// Executed operation counts.
    pub ops: OpCounts,
    /// Memory accesses executed (data + sync words).
    pub accesses_total: u64,
    /// Memory accesses that went through the race detector.
    pub accesses_analyzed: u64,
    /// Performance-monitoring interrupts delivered.
    pub pmis: u64,
    /// Cycles spent (across all cores) while analysis was enabled.
    pub enabled_cycles: u64,
    /// Cycles spent across all cores in total.
    pub total_cycles: u64,
    /// Analysis enable/disable transitions in aggregate-cycle time
    /// (empty outside demand modes). Render with
    /// [`result_timeline`](crate::result_timeline).
    pub timeline: Vec<ToggleEvent>,
}

impl RunResult {
    /// Slowdown of this run relative to a native run of the same program
    /// and schedule.
    ///
    /// # Panics
    ///
    /// Panics if `native.makespan` is zero.
    pub fn slowdown_vs(&self, native: &RunResult) -> f64 {
        assert!(native.makespan > 0, "native makespan must be positive");
        self.makespan as f64 / native.makespan as f64
    }

    /// Speedup of this run over `other` (e.g. demand over continuous).
    ///
    /// # Panics
    ///
    /// Panics if this run's makespan is zero.
    pub fn speedup_over(&self, other: &RunResult) -> f64 {
        assert!(self.makespan > 0, "makespan must be positive");
        other.makespan as f64 / self.makespan as f64
    }

    /// Fraction of memory accesses that were analyzed.
    pub fn analyzed_fraction(&self) -> f64 {
        if self.accesses_total == 0 {
            0.0
        } else {
            self.accesses_analyzed as f64 / self.accesses_total as f64
        }
    }

    /// Fraction of execution cycles spent with analysis enabled.
    pub fn enabled_cycle_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.enabled_cycles as f64 / self.total_cycles as f64
        }
    }
}

/// Geometric mean of a slice of positive ratios; 0.0 for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(makespan: u64) -> RunResult {
        RunResult {
            mode: "test".into(),
            makespan,
            core_cycles: vec![makespan],
            races: RaceSummary::default(),
            cache: CacheStats::new(1),
            detector: None,
            controller: None,
            schedule: RunStats::default(),
            ops: OpCounts::default(),
            accesses_total: 100,
            accesses_analyzed: 25,
            pmis: 0,
            enabled_cycles: 10,
            total_cycles: 40,
            timeline: Vec::new(),
        }
    }

    #[test]
    fn ratios() {
        let native = result(100);
        let slow = result(5_000);
        assert!((slow.slowdown_vs(&native) - 50.0).abs() < 1e-12);
        assert!((native.speedup_over(&slow) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn fractions() {
        let r = result(100);
        assert!((r.analyzed_fraction() - 0.25).abs() < 1e-12);
        assert!((r.enabled_cycle_fraction() - 0.25).abs() < 1e-12);
        let mut idle = result(100);
        idle.accesses_total = 0;
        idle.total_cycles = 0;
        assert_eq!(idle.analyzed_fraction(), 0.0);
        assert_eq!(idle.enabled_cycle_fraction(), 0.0);
    }

    #[test]
    fn geomean_math() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }
}

ddrace_json::json_struct!(RaceSummary {
    distinct,
    distinct_addresses,
    occurrences,
    reports,
    report_occurrences
});
ddrace_json::json_struct!(RunResult {
    mode,
    makespan,
    core_cycles,
    races,
    cache,
    detector,
    controller,
    schedule,
    ops,
    accesses_total,
    accesses_analyzed,
    pmis,
    enabled_cycles,
    total_cycles,
    timeline
});
