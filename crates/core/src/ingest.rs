//! Streaming trace ingest: slab-granularity replay with an optional
//! decode→detect pipeline.
//!
//! [`Simulation::run_trace`] needs the whole record stream in memory.
//! This module replays a `.ddt` file without ever materialising it:
//! a [`SlabReader`](ddrace_trace::SlabReader) refills a recycled
//! [`EventSlab`] one block at a time, and [`ReplaySession::exec_slab`]
//! drains each slab straight into the simulation state — borrowed
//! events, no per-record heap values, content validation (duplicate
//! `ThreadFinished`) folded into the same pass.
//!
//! [`IngestEngine::Pipelined`] splits the two halves across threads:
//! a decoder thread fills double-buffered slabs while the detector
//! thread drains the previous one, with slab ownership bouncing over a
//! pair of channels. Slabs arrive in block order either way, and the
//! detector consumes them on one thread in that order, so serial and
//! pipelined ingest produce **identical** [`RunResult`]s — the pipeline
//! only overlaps decode latency with detection work.

use crate::result::RunResult;
use crate::sim::{SimState, Simulation};
use ddrace_program::{Event, ExecutionListener, RunStats};
use ddrace_trace::{
    open_trace_file, EventSlab, SlabReader, SlabRecord, TraceError, TraceErrorKind,
};
use std::io::Read;
use std::path::Path;
use std::sync::mpsc;

/// How the decode and detect halves of trace ingest are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestEngine {
    /// Decode a slab, then detect over it, on one thread. The baseline
    /// the pipelined engine is equivalence-checked against.
    Serial,
    /// Decode on a dedicated thread into double-buffered slabs while
    /// the calling thread runs detection — same results, decode latency
    /// hidden behind detector work.
    #[default]
    Pipelined,
}

impl IngestEngine {
    /// Stable lowercase name (CLI flag value, JSON field).
    pub fn label(self) -> &'static str {
        match self {
            IngestEngine::Serial => "serial",
            IngestEngine::Pipelined => "pipelined",
        }
    }

    /// Parses a [`IngestEngine::label`] back to the engine.
    pub fn from_label(s: &str) -> Option<IngestEngine> {
        match s {
            "serial" => Some(IngestEngine::Serial),
            "pipelined" => Some(IngestEngine::Pipelined),
            _ => None,
        }
    }
}

/// An in-progress streamed replay: simulation state plus the running
/// stream statistics [`Simulation::run_trace`] would have computed from
/// the materialised trace.
///
/// Feed decoded slabs in stream order via [`ReplaySession::exec_slab`],
/// then call [`ReplaySession::finish`]. The result is identical to
/// decoding the whole file and calling [`Simulation::run_trace`] on it.
pub struct ReplaySession {
    state: SimState,
    mode_label: &'static str,
    /// Records seen so far — the stream index duplicate-finish errors
    /// report, counting every record (HITM samples included) exactly as
    /// [`validate_exec`](ddrace_trace::validate_exec) does.
    records_seen: u64,
    finished: Vec<u32>,
    per_thread_ops: Vec<u64>,
    ops_executed: u64,
}

impl ReplaySession {
    /// Starts a streamed replay under `sim`'s configuration.
    pub fn new(sim: &Simulation) -> ReplaySession {
        ReplaySession {
            state: SimState::new(sim.config()),
            mode_label: sim.config().mode.label(),
            records_seen: 0,
            finished: Vec::new(),
            per_thread_ops: Vec::new(),
            ops_executed: 0,
        }
    }

    /// Replays one decoded slab: every execution record reaches the
    /// simulation (HITM samples are PMU observations, not schedule
    /// edges, and are skipped exactly as [`exec_trace`] drops them),
    /// with content validation inline.
    ///
    /// [`exec_trace`]: ddrace_trace::exec_trace
    ///
    /// # Errors
    ///
    /// [`TraceErrorKind::DuplicateThreadFinished`] at the offending
    /// record's stream index, matching the materialised
    /// [`validate_exec`](ddrace_trace::validate_exec) check.
    pub fn exec_slab(&mut self, slab: &EventSlab) -> Result<(), TraceError> {
        let mut index = 0;
        while index < slab.len() {
            // Bulk fast path: a same-thread run of compute records —
            // the bulk of a PMU-derived trace — is charge-only work
            // that cannot toggle analysis, so it replays in one call
            // instead of one enum dispatch per record.
            if let Some((tid, cycles)) = slab.compute_run(index) {
                let n = cycles.len() as u64;
                if self.per_thread_ops.len() <= tid.index() {
                    self.per_thread_ops.resize(tid.index() + 1, 0);
                }
                self.per_thread_ops[tid.index()] += n;
                self.ops_executed += n;
                self.state.on_compute_run(tid, cycles);
                self.records_seen += n;
                index += cycles.len();
                continue;
            }
            match slab.get(index) {
                SlabRecord::Hitm { .. } => {}
                SlabRecord::Exec(event) => {
                    match event {
                        Event::ThreadFinished { tid } => {
                            if self.finished.contains(&tid.0) {
                                return Err(TraceError {
                                    offset: self.records_seen,
                                    kind: TraceErrorKind::DuplicateThreadFinished { tid: tid.0 },
                                });
                            }
                            self.finished.push(tid.0);
                        }
                        Event::Op { tid, .. } => {
                            if self.per_thread_ops.len() <= tid.index() {
                                self.per_thread_ops.resize(tid.index() + 1, 0);
                            }
                            self.per_thread_ops[tid.index()] += 1;
                            self.ops_executed += 1;
                        }
                        _ => {}
                    }
                    self.state.on_event(event);
                }
            }
            self.records_seen += 1;
            index += 1;
        }
        Ok(())
    }

    /// Completes the replay. Scheduler-internal statistics that are not
    /// part of the event stream (blocks, context switches, handoffs)
    /// are zero, as under [`Simulation::run_trace`].
    pub fn finish(self) -> RunResult {
        let schedule = RunStats {
            ops_executed: self.ops_executed,
            per_thread_ops: self.per_thread_ops,
            ..RunStats::default()
        };
        self.state.into_result(schedule, self.mode_label)
    }
}

impl std::fmt::Debug for ReplaySession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplaySession")
            .field("mode", &self.mode_label)
            .field("records_seen", &self.records_seen)
            .field("ops_executed", &self.ops_executed)
            .finish()
    }
}

/// Number of slabs circulating between the decoder and detector threads
/// of a pipelined ingest. Two is exactly double buffering: one slab
/// being decoded into while the other is being detected over.
const PIPELINE_SLABS: usize = 2;

/// Streams a `.ddt` file through `sim` without materialising the record
/// stream — the demand-driven analogue of read-everything-then-replay.
///
/// # Errors
///
/// Any positioned [`TraceError`]: I/O, decode, or content validation.
pub fn ingest_path(
    sim: &Simulation,
    path: impl AsRef<Path>,
    engine: IngestEngine,
) -> Result<RunResult, TraceError> {
    ingest_reader(sim, open_trace_file(path)?, engine)
}

/// [`ingest_path`] over an already-open [`SlabReader`] (any byte
/// source; the header has been parsed).
///
/// # Errors
///
/// Any positioned [`TraceError`]: I/O, decode, or content validation.
pub fn ingest_reader<R: Read + Send>(
    sim: &Simulation,
    mut reader: SlabReader<R>,
    engine: IngestEngine,
) -> Result<RunResult, TraceError> {
    let _span = ddrace_telemetry::span("ingest.replay");
    let mut session = ReplaySession::new(sim);
    match engine {
        IngestEngine::Serial => run_serial(&mut session, &mut reader)?,
        IngestEngine::Pipelined => {
            // A decoder thread only helps when it can actually run at
            // the same time as the detector. On a single-CPU host the
            // two just timeslice, and the channel hops are pure
            // overhead — take the serial loop instead. Results are
            // identical either way; only scheduling differs.
            if std::thread::available_parallelism().map_or(1, |n| n.get()) > 1 {
                run_pipelined(&mut session, reader)?;
            } else {
                run_serial(&mut session, &mut reader)?;
            }
        }
    }
    Ok(session.finish())
}

/// Decode-then-detect on the calling thread, recycling one slab.
fn run_serial<R: Read>(
    session: &mut ReplaySession,
    reader: &mut SlabReader<R>,
) -> Result<(), TraceError> {
    let mut slab = EventSlab::new();
    while reader.read_slab(&mut slab)? {
        session.exec_slab(&slab)?;
    }
    Ok(())
}

/// The threaded decode→detect loop behind [`IngestEngine::Pipelined`].
///
/// Kept separate from the engine dispatch (and called directly by the
/// tests) so the channel protocol stays covered even on hosts where
/// [`ingest_reader`] would fall back to the serial loop.
fn run_pipelined<R: Read + Send>(
    session: &mut ReplaySession,
    mut reader: SlabReader<R>,
) -> Result<(), TraceError> {
    std::thread::scope(|scope| -> Result<(), TraceError> {
        // Full slabs flow decoder→detector; drained slabs flow
        // back for refill. Capacity matches the slab count so
        // neither send ever blocks longer than the other side's
        // current batch.
        let (full_tx, full_rx) =
            mpsc::sync_channel::<Result<EventSlab, TraceError>>(PIPELINE_SLABS);
        let (free_tx, free_rx) = mpsc::sync_channel::<EventSlab>(PIPELINE_SLABS);
        for _ in 0..PIPELINE_SLABS {
            free_tx
                .send(EventSlab::new())
                .expect("channel has capacity");
        }
        scope.spawn(move || {
            // Decoder: exits when the stream ends (dropping
            // full_tx signals EOF), on the first error, or when
            // the detector side hangs up after its own error.
            while let Ok(mut slab) = free_rx.recv() {
                match reader.read_slab(&mut slab) {
                    Ok(true) => {
                        if full_tx.send(Ok(slab)).is_err() {
                            return;
                        }
                    }
                    Ok(false) => return,
                    Err(e) => {
                        let _ = full_tx.send(Err(e));
                        return;
                    }
                }
            }
        });
        for message in full_rx {
            let slab = message?;
            session.exec_slab(&slab)?;
            // The decoder may already have exited cleanly.
            let _ = free_tx.send(slab);
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::{AnalysisMode, SimConfig};
    use ddrace_program::{ProgramBuilder, ThreadId};
    use ddrace_trace::{
        encode_trace_with, exec_trace, FormatVersion, TraceMeta, TraceRecord, TraceWriter,
    };

    fn meta() -> TraceMeta {
        TraceMeta {
            source: "test".into(),
            label: "ingest".into(),
            seed: 1,
            fingerprint: 1,
        }
    }

    /// Records from a real run: racy enough to exercise the detector
    /// and demand controller, with HITM samples interleaved.
    fn recorded_records() -> Vec<TraceRecord> {
        let mut b = ProgramBuilder::new();
        let shared = b.alloc_shared(8).base();
        let priv0 = b.alloc_private(ThreadId::MAIN, 4096);
        let t1 = b.add_thread();
        let priv1 = b.alloc_private(t1, 4096);
        let mut main = b.on(ThreadId::MAIN).fork(t1);
        for i in 0..100 {
            main = main.write(priv0.index(i * 8));
        }
        for _ in 0..30 {
            main = main.write(shared).read(shared);
        }
        let _ = main.join(t1);
        let mut w = b.on(t1);
        for i in 0..100 {
            w = w.write(priv1.index(i * 8));
        }
        for _ in 0..30 {
            w = w.write(shared).read(shared);
        }
        let _ = w;
        let sim = Simulation::new(SimConfig::new(2, AnalysisMode::demand_hitm()));
        let (_, records) = sim.run_recorded(b.build()).unwrap();
        assert!(!records.is_empty());
        records
    }

    fn sim() -> Simulation {
        Simulation::new(SimConfig::new(2, AnalysisMode::demand_hitm()))
    }

    /// Like [`ingest_reader`], but `Pipelined` always takes the
    /// threaded loop, so the channel protocol is exercised even on a
    /// single-CPU test host where the public entry point would fall
    /// back to the serial loop.
    fn ingest_with(
        sim: &Simulation,
        bytes: &[u8],
        engine: IngestEngine,
    ) -> Result<RunResult, TraceError> {
        let mut reader = SlabReader::new(bytes).unwrap();
        let mut session = ReplaySession::new(sim);
        match engine {
            IngestEngine::Serial => run_serial(&mut session, &mut reader)?,
            IngestEngine::Pipelined => run_pipelined(&mut session, reader)?,
        }
        Ok(session.finish())
    }

    #[test]
    fn serial_and_pipelined_match_run_trace_across_versions() {
        let records = recorded_records();
        let sim = sim();
        let baseline = sim.run_trace(&exec_trace(&records));
        assert!(baseline.races.distinct >= 1, "fixture must be racy");
        for version in [FormatVersion::V1, FormatVersion::V2] {
            let bytes = encode_trace_with(&meta(), &records, version);
            for engine in [IngestEngine::Serial, IngestEngine::Pipelined] {
                let result = ingest_with(&sim, &bytes, engine).unwrap();
                assert_eq!(
                    result,
                    baseline,
                    "{version:?}/{} differs from run_trace",
                    engine.label()
                );
                // The public entry point (which may pick either loop
                // for Pipelined depending on host parallelism) must
                // agree too.
                let reader = SlabReader::new(&bytes[..]).unwrap();
                assert_eq!(ingest_reader(&sim, reader, engine).unwrap(), baseline);
            }
        }
    }

    #[test]
    fn pipelined_crosses_many_blocks() {
        // Tiny block target: the pipeline's slab recycling actually
        // cycles, rather than one block covering the whole trace.
        let records = recorded_records();
        let mut writer = TraceWriter::new(Vec::new(), &meta())
            .unwrap()
            .block_target(64);
        for r in &records {
            writer.write(r).unwrap();
        }
        let bytes = writer.finish().unwrap();
        let sim = sim();
        let baseline = sim.run_trace(&exec_trace(&records));
        let result = ingest_with(&sim, &bytes, IngestEngine::Pipelined).unwrap();
        assert_eq!(result, baseline);
    }

    #[test]
    fn duplicate_finish_is_rejected_with_stream_index() {
        use ddrace_program::TraceEvent;
        let mut records = recorded_records();
        // Re-finish a thread that already finished; note its index.
        let dup = records
            .iter()
            .find_map(|r| match r {
                TraceRecord::Exec(TraceEvent::ThreadFinished { tid }) => Some(*tid),
                _ => None,
            })
            .expect("fixture finishes threads");
        records.push(TraceRecord::Exec(TraceEvent::ThreadFinished { tid: dup }));
        let expected_index = records.len() as u64 - 1;
        let bytes = encode_trace_with(&meta(), &records, FormatVersion::V2);
        for engine in [IngestEngine::Serial, IngestEngine::Pipelined] {
            let err = ingest_with(&sim(), &bytes, engine).unwrap_err();
            assert_eq!(
                err.kind,
                TraceErrorKind::DuplicateThreadFinished { tid: dup.0 }
            );
            assert_eq!(err.offset, expected_index, "{}", engine.label());
        }
    }

    #[test]
    fn decode_errors_propagate_through_the_pipeline() {
        let records = recorded_records();
        let mut bytes = encode_trace_with(&meta(), &records, FormatVersion::V2);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // corrupt the final block's payload
        for engine in [IngestEngine::Serial, IngestEngine::Pipelined] {
            let err = ingest_with(&sim(), &bytes, engine).unwrap_err();
            assert_eq!(
                err.kind,
                TraceErrorKind::BadBlock("checksum mismatch"),
                "{}",
                engine.label()
            );
        }
    }

    #[test]
    fn engine_labels_roundtrip() {
        for engine in [IngestEngine::Serial, IngestEngine::Pipelined] {
            assert_eq!(IngestEngine::from_label(engine.label()), Some(engine));
        }
        assert_eq!(IngestEngine::from_label("warp"), None);
        assert_eq!(IngestEngine::default(), IngestEngine::Pipelined);
    }
}
