//! Analysis-residency timelines: when, over the course of a run, the
//! demand-driven detector was actually on.
//!
//! The simulation records every enable/disable transition with a
//! timestamp in aggregate-cycle space; [`render_timeline`] turns that
//! into an ASCII strip — the quickest way to *see* the mechanism work
//! (short `#` bursts inside long `-` stretches on a Phoenix program;
//! nearly solid `#` on canneal).

use crate::result::RunResult;

/// What happened at a timeline point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToggleKind {
    /// Analysis switched on (a sharing signal arrived while off).
    Enable,
    /// Analysis switched off (cooldown elapsed).
    Disable,
}

/// One analysis transition, stamped in aggregate-cycle time (the sum of
/// cycles charged across all cores up to that moment — monotonic and
/// schedule-stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToggleEvent {
    /// Aggregate cycles consumed when the transition happened.
    pub at_total_cycles: u64,
    /// The transition direction.
    pub kind: ToggleKind,
}

/// Renders the run's analysis residency as an ASCII strip of `width`
/// characters: `#` where analysis was enabled, `-` where it was off.
/// Continuous runs render as all `#`, native runs as all `-`.
///
/// # Examples
///
/// ```
/// use ddrace_core::{render_timeline, ToggleEvent, ToggleKind};
/// let strip = render_timeline(
///     &[
///         ToggleEvent { at_total_cycles: 250, kind: ToggleKind::Enable },
///         ToggleEvent { at_total_cycles: 500, kind: ToggleKind::Disable },
///     ],
///     1_000,
///     true,
///     20,
/// );
/// assert_eq!(strip.len(), 20);
/// assert_eq!(&strip[5..10], "#####");
/// assert!(strip.starts_with("-----"));
/// ```
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn render_timeline(
    timeline: &[ToggleEvent],
    total_cycles: u64,
    starts_off: bool,
    width: usize,
) -> String {
    assert!(width > 0, "timeline width must be positive");
    if total_cycles == 0 {
        return "-".repeat(width);
    }
    let mut strip = vec![b'-'; width];
    let to_col = |cycles: u64| -> usize {
        ((cycles as u128 * width as u128 / total_cycles as u128) as usize).min(width - 1)
    };
    let mut on = !starts_off;
    let mut since = 0u64;
    let paint = |from: u64, to: u64, strip: &mut Vec<u8>| {
        let (a, b) = (to_col(from), to_col(to));
        for c in strip.iter_mut().take(b + 1).skip(a) {
            *c = b'#';
        }
    };
    for ev in timeline {
        match ev.kind {
            ToggleKind::Enable => {
                on = true;
                since = ev.at_total_cycles;
            }
            ToggleKind::Disable => {
                if on {
                    paint(since, ev.at_total_cycles, &mut strip);
                }
                on = false;
            }
        }
    }
    if on {
        paint(since, total_cycles, &mut strip);
    }
    String::from_utf8(strip).expect("ASCII strip")
}

/// Convenience: renders the strip for a [`RunResult`]. Continuous-mode
/// results (no controller) render as fully enabled; native as fully off.
pub fn result_timeline(result: &RunResult, width: usize) -> String {
    match (&result.controller, result.mode.as_str()) {
        (None, "continuous") => "#".repeat(width),
        (None, _) => "-".repeat(width),
        (Some(_), _) => render_timeline(&result.timeline, result.total_cycles, true, width),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_timeline_off() {
        assert_eq!(render_timeline(&[], 100, true, 10), "----------");
    }

    #[test]
    fn empty_timeline_on_paints_everything() {
        assert_eq!(render_timeline(&[], 100, false, 10), "##########");
    }

    #[test]
    fn single_burst() {
        let strip = render_timeline(
            &[
                ToggleEvent {
                    at_total_cycles: 40,
                    kind: ToggleKind::Enable,
                },
                ToggleEvent {
                    at_total_cycles: 60,
                    kind: ToggleKind::Disable,
                },
            ],
            100,
            true,
            10,
        );
        assert_eq!(strip, "----###---"); // end column inclusive
    }

    #[test]
    fn open_ended_enable_runs_to_the_end() {
        let strip = render_timeline(
            &[ToggleEvent {
                at_total_cycles: 80,
                kind: ToggleKind::Enable,
            }],
            100,
            true,
            10,
        );
        assert_eq!(strip, "--------##");
    }

    #[test]
    fn multiple_bursts() {
        let strip = render_timeline(
            &[
                ToggleEvent {
                    at_total_cycles: 0,
                    kind: ToggleKind::Enable,
                },
                ToggleEvent {
                    at_total_cycles: 10,
                    kind: ToggleKind::Disable,
                },
                ToggleEvent {
                    at_total_cycles: 90,
                    kind: ToggleKind::Enable,
                },
            ],
            100,
            true,
            10,
        );
        assert_eq!(strip, "##-------#");
    }

    #[test]
    fn zero_total_cycles_is_all_off() {
        assert_eq!(render_timeline(&[], 0, true, 5), "-----");
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = render_timeline(&[], 10, true, 0);
    }
}

ddrace_json::json_unit_enum!(ToggleKind { Enable, Disable });
ddrace_json::json_struct!(ToggleEvent {
    at_total_cycles,
    kind
});
