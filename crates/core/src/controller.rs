//! The demand-driven analysis controller: the paper's state machine.
//!
//! Analysis starts **off**. A hardware sharing signal (PMI from the HITM
//! counter, or the oracle) turns it **on** for all threads. While on, the
//! detector itself observes sharing in software; after a configurable run
//! of analyzed accesses with no sharing observed (and a minimum residency
//! to avoid thrashing), analysis turns back **off** and the hardware
//! indicator re-arms.

use crate::mode::ControllerConfig;

/// Whether memory-access analysis is currently enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisState {
    /// Uninstrumented execution; hardware indicator armed.
    Off,
    /// Full race detection on every access.
    On,
}

/// Counters the controller exposes for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Off→On transitions taken.
    pub enables: u64,
    /// On→Off transitions taken.
    pub disables: u64,
    /// Sharing signals received while already on (ignored).
    pub redundant_signals: u64,
}

/// The enable/disable state machine.
///
/// # Examples
///
/// ```
/// use ddrace_core::{DemandController, AnalysisState, ControllerConfig};
///
/// let cfg = ControllerConfig { cooldown_accesses: 3, min_on_accesses: 2, ..ControllerConfig::default() };
/// let mut c = DemandController::new(cfg);
/// assert_eq!(c.state(), AnalysisState::Off);
/// assert!(c.on_sharing_signal());          // hardware fires: enable
/// assert_eq!(c.state(), AnalysisState::On);
/// // Three quiet analyzed accesses (past the minimum residency): disable.
/// assert!(!c.on_analyzed_access(false));
/// assert!(!c.on_analyzed_access(false));
/// assert!(c.on_analyzed_access(false));
/// assert_eq!(c.state(), AnalysisState::Off);
/// ```
#[derive(Debug, Clone)]
pub struct DemandController {
    config: ControllerConfig,
    state: AnalysisState,
    analyzed_since_enable: u64,
    analyzed_since_sharing: u64,
    stats: ControllerStats,
}

impl DemandController {
    /// Creates a controller in the Off state.
    pub fn new(config: ControllerConfig) -> Self {
        DemandController {
            config,
            state: AnalysisState::Off,
            analyzed_since_enable: 0,
            analyzed_since_sharing: 0,
            stats: ControllerStats::default(),
        }
    }

    /// Current analysis state.
    pub fn state(&self) -> AnalysisState {
        self.state
    }

    /// Returns `true` if analysis is on.
    pub fn is_on(&self) -> bool {
        self.state == AnalysisState::On
    }

    /// Transition counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// A hardware sharing signal arrived. Returns `true` if this enabled
    /// analysis (a toggle the caller must charge for).
    pub fn on_sharing_signal(&mut self) -> bool {
        match self.state {
            AnalysisState::Off => {
                self.state = AnalysisState::On;
                self.analyzed_since_enable = 0;
                self.analyzed_since_sharing = 0;
                self.stats.enables += 1;
                true
            }
            AnalysisState::On => {
                self.stats.redundant_signals += 1;
                false
            }
        }
    }

    /// An analyzed memory access completed; `shared` is the detector's
    /// software sharing observation. Returns `true` if this access
    /// triggered a disable (a toggle the caller must charge for).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if called while analysis is off (only
    /// analyzed accesses may be reported).
    pub fn on_analyzed_access(&mut self, shared: bool) -> bool {
        debug_assert!(
            self.is_on(),
            "analyzed access reported while analysis is off"
        );
        self.analyzed_since_enable += 1;
        if shared {
            self.analyzed_since_sharing = 0;
            return false;
        }
        self.analyzed_since_sharing += 1;
        if self.analyzed_since_enable >= self.config.min_on_accesses
            && self.analyzed_since_sharing >= self.config.cooldown_accesses
        {
            self.state = AnalysisState::Off;
            self.stats.disables += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DemandController {
        DemandController::new(ControllerConfig {
            cooldown_accesses: 5,
            min_on_accesses: 2,
            ..ControllerConfig::default()
        })
    }

    #[test]
    fn starts_off() {
        let c = small();
        assert_eq!(c.state(), AnalysisState::Off);
        assert!(!c.is_on());
    }

    #[test]
    fn signal_enables_once() {
        let mut c = small();
        assert!(c.on_sharing_signal());
        assert!(c.is_on());
        assert!(!c.on_sharing_signal(), "already on: no new toggle");
        assert_eq!(c.stats().enables, 1);
        assert_eq!(c.stats().redundant_signals, 1);
    }

    #[test]
    fn sharing_resets_cooldown() {
        let mut c = small();
        c.on_sharing_signal();
        for _ in 0..4 {
            assert!(!c.on_analyzed_access(false));
        }
        // Sharing observed: the quiet streak restarts.
        assert!(!c.on_analyzed_access(true));
        for _ in 0..4 {
            assert!(!c.on_analyzed_access(false));
        }
        assert!(c.is_on());
        assert!(c.on_analyzed_access(false));
        assert!(!c.is_on());
        assert_eq!(c.stats().disables, 1);
    }

    #[test]
    fn min_residency_prevents_thrashing() {
        let mut c = DemandController::new(ControllerConfig {
            cooldown_accesses: 1,
            min_on_accesses: 10,
            ..ControllerConfig::default()
        });
        c.on_sharing_signal();
        for _ in 0..9 {
            assert!(!c.on_analyzed_access(false), "still inside min residency");
        }
        assert!(c.on_analyzed_access(false));
        assert!(!c.is_on());
    }

    #[test]
    fn reenable_after_disable() {
        let mut c = small();
        c.on_sharing_signal();
        for _ in 0..5 {
            c.on_analyzed_access(false);
        }
        assert!(!c.is_on());
        assert!(c.on_sharing_signal());
        assert!(c.is_on());
        assert_eq!(c.stats().enables, 2);
    }

    #[test]
    fn constant_sharing_keeps_analysis_on() {
        let mut c = small();
        c.on_sharing_signal();
        for _ in 0..10_000 {
            assert!(!c.on_analyzed_access(true));
        }
        assert!(c.is_on());
        assert_eq!(c.stats().disables, 0);
    }
}

ddrace_json::json_unit_enum!(AnalysisState { Off, On });
ddrace_json::json_struct!(ControllerStats {
    enables,
    disables,
    redundant_signals
});
