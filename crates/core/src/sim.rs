//! The simulation engine: programs × caches × PMU × detector × controller.
//!
//! [`Simulation`] executes a [`Program`] under one [`AnalysisMode`] and
//! returns a [`RunResult`]. The event flow per memory access is the
//! paper's architecture end to end:
//!
//! ```text
//!   scheduler ──op──▶ cache hierarchy ──AccessResult──▶
//!       analysis ON?  ──yes──▶ race detector (cost: instrumentation)
//!                     ──no───▶ sharing indicator (PMU) ──PMI──▶ enable
//! ```
//!
//! Synchronization operations always reach the detector (cheap, keeps
//! clocks correct) and always touch their backing memory word in the cache
//! (lock words ping-pong between cores and genuinely produce HITM events —
//! a conservative but realistic trigger source the paper also sees).
//!
//! Because the scheduler's interleaving depends only on the seed and the
//! program — never on costs or the listener — runs of the same program
//! under different modes see **identical schedules**, making slowdown
//! ratios apples-to-apples.

use crate::controller::{ControllerStats, DemandController};
use crate::cost::CostModel;
use crate::mode::{AnalysisMode, DetectorKind, EnableScope, SimConfig};
use crate::result::{RaceSummary, RunResult};
use crate::timeline::{ToggleEvent, ToggleKind};
use ddrace_cache::{AccessResult, CacheHierarchy, CoreId};
use ddrace_detector::{Djit, FastTrack, LockSet, RaceDetector};
use ddrace_pmu::SharingIndicator;
use ddrace_program::{
    AccessKind, Addr, AddressSpace, Event, ExecutionListener, Op, OpCounts, Program, ScheduleError,
    Scheduler, ThreadId, TraceEvent,
};
use ddrace_trace::TraceRecord;

/// Runs programs under a fixed configuration.
///
/// # Examples
///
/// ```
/// use ddrace_core::{AnalysisMode, SimConfig, Simulation};
/// use ddrace_program::{ProgramBuilder, ThreadId};
///
/// let mut b = ProgramBuilder::new();
/// let x = b.alloc_shared(8).base();
/// let t1 = b.add_thread();
/// b.on(ThreadId::MAIN).fork(t1).write(x).join(t1);
/// b.on(t1).write(x);
///
/// let sim = Simulation::new(SimConfig::new(2, AnalysisMode::Continuous));
/// let result = sim.run(b.build())?;
/// assert_eq!(result.races.distinct, 1); // the unordered write pair
/// # Ok::<(), ddrace_program::ScheduleError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimConfig,
}

impl Simulation {
    /// Creates a simulation.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (see [`SimConfig::validate`]).
    pub fn new(config: SimConfig) -> Self {
        config.validate();
        Simulation { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Executes `program` to completion.
    ///
    /// # Errors
    ///
    /// Propagates scheduler errors (deadlock, sync misuse).
    pub fn run(&self, program: Program) -> Result<RunResult, ScheduleError> {
        let _span = ddrace_telemetry::span("sim.run");
        let mut state = SimState::new(&self.config);
        let schedule = Scheduler::new(program, self.config.scheduler)
            .with_pick_strategy(self.config.pick_strategy)
            .run(&mut state)?;
        Ok(state.into_result(schedule, self.config.mode.label()))
    }

    /// Analyzes a previously recorded [`Trace`](ddrace_program::Trace)
    /// instead of scheduling a program — the record-once / analyze-many
    /// workflow. The interleaving is the trace's, byte for byte, so the
    /// same trace can be compared across any number of configurations.
    ///
    /// Scheduler-internal statistics that are not part of the event
    /// stream (blocks, context switches, handoffs) are reported as zero.
    pub fn run_trace(&self, trace: &ddrace_program::Trace) -> RunResult {
        let mut state = SimState::new(&self.config);
        trace.replay(&mut state);
        let mut per_thread_ops: Vec<u64> = Vec::new();
        for event in trace.events() {
            if let ddrace_program::TraceEvent::Op { tid, .. } = event {
                if per_thread_ops.len() <= tid.index() {
                    per_thread_ops.resize(tid.index() + 1, 0);
                }
                per_thread_ops[tid.index()] += 1;
            }
        }
        let schedule = ddrace_program::RunStats {
            ops_executed: trace.op_count(),
            per_thread_ops,
            ..ddrace_program::RunStats::default()
        };
        state.into_result(schedule, self.config.mode.label())
    }

    /// Executes `program` with trace capture on, returning both the
    /// result and the captured record stream (scheduler events plus the
    /// HITM samples the indicator raised), ready for
    /// [`ddrace_trace::encode_trace`].
    ///
    /// Capture is forced on regardless of [`SimConfig::record`]; the
    /// result is byte-identical to [`Simulation::run`] either way,
    /// because recording only observes.
    ///
    /// # Errors
    ///
    /// Propagates scheduler errors (deadlock, sync misuse).
    pub fn run_recorded(
        &self,
        program: Program,
    ) -> Result<(RunResult, Vec<TraceRecord>), ScheduleError> {
        // No telemetry span here: conform jobs call this per spec, and
        // span durations are wall-clock — they would break the fuzz
        // event stream's byte-determinism that ci.sh pins.
        let mut config = self.config;
        config.record = true;
        let mut state = SimState::new(&config);
        let schedule = Scheduler::new(program, config.scheduler)
            .with_pick_strategy(config.pick_strategy)
            .run(&mut state)?;
        let records = state.recorder.take().unwrap_or_default();
        Ok((state.into_result(schedule, config.mode.label()), records))
    }
}

/// Runs one program under `mode` with otherwise-default configuration —
/// the quickest way to try the system.
///
/// # Errors
///
/// Propagates scheduler errors.
pub fn run_program(
    program: Program,
    cores: usize,
    mode: AnalysisMode,
) -> Result<RunResult, ScheduleError> {
    Simulation::new(SimConfig::new(cores, mode)).run(program)
}

pub(crate) struct SimState {
    cores: usize,
    cost: CostModel,
    tool_attached: bool,
    continuous: bool,
    cache: CacheHierarchy,
    detector: Option<Box<dyn RaceDetector>>,
    indicator: Option<SharingIndicator>,
    /// Demand mode only. One controller under [`EnableScope::Global`];
    /// one per core under [`EnableScope::PerCore`].
    controllers: Vec<DemandController>,
    scope: EnableScope,
    core_cycles: Vec<u64>,
    ops: OpCounts,
    accesses_total: u64,
    accesses_analyzed: u64,
    pmis: u64,
    enabled_cycles: u64,
    total_cycles: u64,
    timeline: Vec<ToggleEvent>,
    /// `Some` when [`SimConfig::record`] is set: the `.ddt`-ready record
    /// stream. Purely observational — no field above reads it.
    recorder: Option<Vec<TraceRecord>>,
}

impl SimState {
    pub(crate) fn new(config: &SimConfig) -> Self {
        let detector: Option<Box<dyn RaceDetector>> = if config.mode.tool_attached() {
            Some(match config.detector_kind {
                DetectorKind::FastTrack => Box::new(FastTrack::new(config.detector)),
                DetectorKind::Djit => Box::new(Djit::new(config.detector)),
                DetectorKind::LockSet => Box::new(LockSet::new(config.detector)),
            })
        } else {
            None
        };
        let (indicator, controllers, scope) = match config.mode {
            AnalysisMode::Demand {
                indicator,
                controller,
            } => {
                let n = match controller.scope {
                    EnableScope::Global => 1,
                    EnableScope::PerCore => config.cores,
                };
                (
                    Some(SharingIndicator::new(indicator, config.cores)),
                    (0..n).map(|_| DemandController::new(controller)).collect(),
                    controller.scope,
                )
            }
            _ => (None, Vec::new(), EnableScope::Global),
        };
        SimState {
            cores: config.cores,
            cost: config.cost,
            tool_attached: config.mode.tool_attached(),
            continuous: matches!(config.mode, AnalysisMode::Continuous),
            cache: CacheHierarchy::new(config.cache),
            detector,
            indicator,
            controllers,
            scope,
            core_cycles: vec![0; config.cores],
            ops: OpCounts::default(),
            accesses_total: 0,
            accesses_analyzed: 0,
            pmis: 0,
            enabled_cycles: 0,
            total_cycles: 0,
            timeline: Vec::new(),
            recorder: config.record.then(Vec::new),
        }
    }

    fn core_of(&self, tid: ThreadId) -> CoreId {
        // Replay-hot: skip the hardware divide when thread ids fit the
        // core count (the common case), since `t % n == t` for `t < n`.
        let t = tid.index();
        let core = if t < self.cores { t } else { t % self.cores };
        CoreId(core as u32)
    }

    fn controller_index(&self, core: CoreId) -> usize {
        match self.scope {
            EnableScope::Global => 0,
            EnableScope::PerCore => core.index(),
        }
    }

    fn analysis_on(&self, core: CoreId) -> bool {
        if self.continuous {
            return true;
        }
        if self.controllers.is_empty() {
            return false;
        }
        self.controllers[self.controller_index(core)].is_on()
    }

    /// Charges a toggle transition: stop-the-world under global scope,
    /// one core under per-core scope.
    fn charge_toggle(&mut self, core: CoreId) {
        match self.scope {
            EnableScope::Global => {
                for c in &mut self.core_cycles {
                    *c += self.cost.toggle_cost;
                }
                self.total_cycles += self.cost.toggle_cost * self.cores as u64;
            }
            EnableScope::PerCore => {
                self.core_cycles[core.index()] += self.cost.toggle_cost;
                self.total_cycles += self.cost.toggle_cost;
            }
        }
    }

    fn charge(&mut self, core: CoreId, cycles: u64, analysis_was_on: bool) {
        self.core_cycles[core.index()] += cycles;
        self.total_cycles += cycles;
        if analysis_was_on {
            self.enabled_cycles += cycles;
        }
    }

    /// Feeds the hardware indicator with an access performed while
    /// analysis is off; handles a resulting PMI + enable. Returns the PMI
    /// cost to add to the op.
    fn feed_indicator(&mut self, core: CoreId, result: &AccessResult, kind: AccessKind) -> u64 {
        let Some(ind) = &mut self.indicator else {
            return 0;
        };
        let Some(signal) = ind.observe(core, result, kind) else {
            return 0;
        };
        self.pmis += 1;
        if let Some(rec) = &mut self.recorder {
            rec.push(TraceRecord::Hitm {
                core: signal.core.index() as u32,
                line: result.line,
                skid: signal.skid,
            });
        }
        let idx = self.controller_index(signal.core);
        if self.controllers[idx].on_sharing_signal() {
            self.charge_toggle(signal.core);
            self.timeline.push(ToggleEvent {
                at_total_cycles: self.total_cycles,
                kind: ToggleKind::Enable,
            });
        }
        u64::from(self.cost.pmi_cost)
    }

    /// A data memory access (read or write).
    fn handle_data_access(&mut self, tid: ThreadId, addr: Addr, kind: AccessKind) {
        let core = self.core_of(tid);
        let analysis_on = self.analysis_on(core);
        let result = self.cache.access(core, addr, kind);
        let base = if self.tool_attached {
            self.cost.translated(result.latency)
        } else {
            result.latency
        };
        let mut cycles = u64::from(base);
        self.accesses_total += 1;

        if analysis_on {
            let report = self
                .detector
                .as_mut()
                .expect("analysis on implies a detector")
                .on_access(tid, addr, kind);
            self.accesses_analyzed += 1;
            cycles += u64::from(self.cost.analysis_per_access);
            if !self.controllers.is_empty() {
                let idx = self.controller_index(core);
                if self.controllers[idx].on_analyzed_access(report.shared) {
                    self.charge_toggle(core);
                    self.timeline.push(ToggleEvent {
                        at_total_cycles: self.total_cycles,
                        kind: ToggleKind::Disable,
                    });
                }
            }
        } else {
            cycles += self.feed_indicator(core, &result, kind);
        }
        self.charge(core, cycles, analysis_on);
    }

    /// A synchronization operation that touches a backing memory word.
    fn handle_sync_access(&mut self, tid: ThreadId, op: &Op, addr: Addr, kind: AccessKind) {
        let core = self.core_of(tid);
        let analysis_on = self.analysis_on(core);
        let result = self.cache.access(core, addr, kind);
        let mut cycles = u64::from(if self.tool_attached {
            self.cost.translated(result.latency)
        } else {
            result.latency
        });
        self.accesses_total += 1;

        if let Some(d) = &mut self.detector {
            d.on_sync(tid, op);
            cycles += u64::from(self.cost.analysis_per_sync);
        }
        if !analysis_on {
            cycles += self.feed_indicator(core, &result, kind);
        }
        self.charge(core, cycles, analysis_on);
    }

    /// Fork/join: no user-level memory access, just thread management.
    fn handle_thread_mgmt(&mut self, tid: ThreadId, op: &Op) {
        let core = self.core_of(tid);
        let analysis_on = self.analysis_on(core);
        let mut cycles = u64::from(self.cost.thread_mgmt_cost);
        if let Some(d) = &mut self.detector {
            d.on_sync(tid, op);
            cycles += u64::from(self.cost.analysis_per_sync);
        }
        self.charge(core, cycles, analysis_on);
    }

    /// Replays a run of consecutive `Op::Compute` records for one
    /// thread in a single pass — the batched form of the
    /// [`Op::Compute`] arm of [`SimState::handle_op`], with identical
    /// arithmetic: each record's cycles are translated individually
    /// (integer rounding per op, not per batch) and the per-op charges
    /// are summed, which is associative over `u64`. Compute ops touch
    /// no memory and raise no signal, so analysis state cannot change
    /// mid-run and is sampled once.
    pub(crate) fn on_compute_run(&mut self, tid: ThreadId, cycles: &[u64]) {
        if self.recorder.is_some() {
            // Recording replays must capture one record per event;
            // take the unbatched path.
            for &c in cycles {
                self.on_event(Event::Op {
                    tid,
                    op: Op::Compute { cycles: c as u32 },
                });
            }
            return;
        }
        let core = self.core_of(tid);
        let analysis_on = self.analysis_on(core);
        let mut charged = 0u64;
        let mut declared = 0u64;
        for &c in cycles {
            let c = c as u32;
            declared += u64::from(c);
            charged += if self.tool_attached {
                u64::from(self.cost.translated(c))
            } else {
                u64::from(c)
            };
        }
        self.ops.record_compute_run(cycles.len() as u64, declared);
        self.charge(core, charged, analysis_on);
    }

    fn handle_op(&mut self, tid: ThreadId, op: Op) {
        self.ops.record(&op);
        match op {
            Op::Compute { cycles } => {
                let core = self.core_of(tid);
                let analysis_on = self.analysis_on(core);
                let cost = if self.tool_attached {
                    u64::from(self.cost.translated(cycles))
                } else {
                    u64::from(cycles)
                };
                self.charge(core, cost, analysis_on);
            }
            Op::Read { addr } => self.handle_data_access(tid, addr, AccessKind::Read),
            Op::Write { addr } => self.handle_data_access(tid, addr, AccessKind::Write),
            Op::AtomicRmw { addr } => {
                self.handle_sync_access(tid, &op, addr, AccessKind::AtomicRmw)
            }
            Op::Lock { lock } => self.handle_sync_access(
                tid,
                &op,
                AddressSpace::lock_addr(lock),
                AccessKind::AtomicRmw,
            ),
            Op::Unlock { lock } => {
                self.handle_sync_access(tid, &op, AddressSpace::lock_addr(lock), AccessKind::Write)
            }
            Op::Barrier { barrier, .. } => self.handle_sync_access(
                tid,
                &op,
                AddressSpace::barrier_addr(barrier),
                AccessKind::AtomicRmw,
            ),
            Op::Post { sem } => self.handle_sync_access(
                tid,
                &op,
                AddressSpace::sem_addr(sem),
                AccessKind::AtomicRmw,
            ),
            Op::WaitSem { sem } => self.handle_sync_access(
                tid,
                &op,
                AddressSpace::sem_addr(sem),
                AccessKind::AtomicRmw,
            ),
            Op::Fork { .. } | Op::Join { .. } => self.handle_thread_mgmt(tid, &op),
        }
    }

    /// Flushes the run's headline counters into the ambient telemetry
    /// sink. Every value is a simulated (deterministic) quantity, so the
    /// harness can put them in its byte-reproducible aggregate. A no-op
    /// when no sink is installed (any non-campaign use of the simulator).
    fn emit_telemetry(&self) {
        use ddrace_telemetry::counter;
        counter("sim.cycles", self.total_cycles);
        counter("sim.cycles_enabled", self.enabled_cycles);
        counter("sim.accesses", self.accesses_total);
        counter("sim.accesses_analyzed", self.accesses_analyzed);
        counter("sim.pmis", self.pmis);
        let enables = self
            .timeline
            .iter()
            .filter(|e| e.kind == ToggleKind::Enable)
            .count() as u64;
        counter("sim.enables", enables);
        counter("sim.disables", self.timeline.len() as u64 - enables);
        counter("cache.hitm_loads", self.cache.stats().total_hitm_loads());
        counter("cache.rfo_hitms", self.cache.stats().total_rfo_hitms());
        if let Some(d) = &self.detector {
            d.stats().emit_telemetry();
        }
    }

    pub(crate) fn into_result(self, schedule: ddrace_program::RunStats, mode: &str) -> RunResult {
        self.emit_telemetry();
        // Scheduler counters are deterministic too; emitted here because
        // the run stats only arrive when the schedule completes.
        {
            use ddrace_telemetry::counter;
            counter("sched.ops", schedule.ops_executed);
            counter("sched.context_switches", schedule.context_switches);
            counter("sched.blocks", schedule.blocks);
            counter("sched.lock_handoffs", schedule.lock_handoffs);
            counter("sched.barrier_episodes", schedule.barrier_episodes);
        }
        let races = match &self.detector {
            Some(d) => {
                let set = d.reports();
                RaceSummary {
                    distinct: set.distinct(),
                    distinct_addresses: set.distinct_addresses(),
                    occurrences: set.total_occurrences(),
                    reports: set.reports().to_vec(),
                    report_occurrences: set.occurrences().to_vec(),
                }
            }
            None => RaceSummary::default(),
        };
        RunResult {
            mode: mode.to_string(),
            makespan: self.core_cycles.iter().copied().max().unwrap_or(0),
            core_cycles: self.core_cycles,
            races,
            cache: self.cache.stats().clone(),
            detector: self.detector.as_ref().map(|d| d.stats()),
            controller: (!self.controllers.is_empty()).then(|| {
                self.controllers.iter().map(DemandController::stats).fold(
                    ControllerStats::default(),
                    |mut acc, s| {
                        acc.enables += s.enables;
                        acc.disables += s.disables;
                        acc.redundant_signals += s.redundant_signals;
                        acc
                    },
                )
            }),
            schedule,
            ops: self.ops,
            accesses_total: self.accesses_total,
            accesses_analyzed: self.accesses_analyzed,
            pmis: self.pmis,
            enabled_cycles: self.enabled_cycles,
            total_cycles: self.total_cycles,
            timeline: self.timeline,
        }
    }
}

impl ExecutionListener for SimState {
    fn on_event(&mut self, event: Event<'_>) {
        if let Some(rec) = &mut self.recorder {
            rec.push(TraceRecord::Exec(TraceEvent::from(&event)));
        }
        match event {
            Event::ThreadStarted { tid, parent } => {
                if let Some(d) = &mut self.detector {
                    d.on_thread_start(tid, parent);
                }
            }
            Event::ThreadFinished { tid } => {
                if let Some(d) = &mut self.detector {
                    d.on_thread_finish(tid);
                }
            }
            Event::BarrierReleased {
                barrier,
                participants,
            } => {
                if let Some(d) = &mut self.detector {
                    d.on_barrier_release(barrier, participants);
                }
            }
            Event::Op { tid, op } => self.handle_op(tid, op),
        }
    }
}

impl std::fmt::Debug for SimState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimState")
            .field("cores", &self.cores)
            .field("tool_attached", &self.tool_attached)
            .field("continuous", &self.continuous)
            .field("accesses_total", &self.accesses_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::ControllerConfig;
    use ddrace_pmu::IndicatorMode;
    use ddrace_program::ProgramBuilder;

    /// A program where two unsynchronized threads share one word heavily
    /// after a long private phase.
    fn racy_program(private_ops: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let shared = b.alloc_shared(8).base();
        let t1 = b.add_thread();
        let priv0 = b.alloc_private(ThreadId::MAIN, 4096);
        let priv1 = b.alloc_private(t1, 4096);
        let mut main = b.on(ThreadId::MAIN).fork(t1);
        for i in 0..private_ops {
            main = main.write(priv0.index(i as u64 * 8));
        }
        // Write→read sharing: the pattern the HITM load event can see.
        // (Write-only W→W sharing is the indicator's documented blind
        // spot; see the pmu crate.)
        for _ in 0..50 {
            main = main.write(shared).read(shared);
        }
        let main = main.join(t1);
        let _ = main;
        let mut w = b.on(t1);
        for i in 0..private_ops {
            w = w.write(priv1.index(i as u64 * 8));
        }
        for _ in 0..50 {
            w = w.write(shared).read(shared);
        }
        let _ = w;
        b.build()
    }

    /// A fully private program: each thread only touches its own region.
    fn private_program(ops: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let t1 = b.add_thread();
        let priv0 = b.alloc_private(ThreadId::MAIN, 65536);
        let priv1 = b.alloc_private(t1, 65536);
        let mut main = b.on(ThreadId::MAIN).fork(t1);
        for i in 0..ops {
            main = main
                .write(priv0.index(i as u64 * 8))
                .read(priv0.index(i as u64 * 8));
        }
        let main = main.join(t1);
        let _ = main;
        let mut w = b.on(t1);
        for i in 0..ops {
            w = w
                .write(priv1.index(i as u64 * 8))
                .read(priv1.index(i as u64 * 8));
        }
        let _ = w;
        b.build()
    }

    #[test]
    fn native_mode_runs_without_detector() {
        let r = run_program(private_program(100), 2, AnalysisMode::Native).unwrap();
        assert_eq!(r.races.distinct, 0);
        assert!(r.detector.is_none());
        assert_eq!(r.accesses_analyzed, 0);
        assert!(r.makespan > 0);
        assert_eq!(r.mode, "native");
    }

    #[test]
    fn continuous_analyzes_every_data_access() {
        let r = run_program(private_program(100), 2, AnalysisMode::Continuous).unwrap();
        assert_eq!(r.accesses_analyzed, 400); // 2 threads × 100 × (w+r)
        assert!(r.detector.is_some());
        assert_eq!(r.races.distinct, 0);
    }

    #[test]
    fn continuous_is_much_slower_than_native() {
        let native = run_program(private_program(500), 2, AnalysisMode::Native).unwrap();
        let cont = run_program(private_program(500), 2, AnalysisMode::Continuous).unwrap();
        let slowdown = cont.slowdown_vs(&native);
        assert!(slowdown > 10.0, "continuous slowdown {slowdown} too small");
    }

    #[test]
    fn demand_on_private_program_stays_off_and_is_fast() {
        let native = run_program(private_program(500), 2, AnalysisMode::Native).unwrap();
        let demand = run_program(private_program(500), 2, AnalysisMode::demand_hitm()).unwrap();
        let cont = run_program(private_program(500), 2, AnalysisMode::Continuous).unwrap();
        assert_eq!(
            demand.accesses_analyzed, 0,
            "no sharing, analysis never enables"
        );
        assert!(demand.slowdown_vs(&native) < 2.0);
        assert!(demand.speedup_over(&cont) > 5.0);
        assert_eq!(demand.controller.unwrap().enables, 0);
    }

    #[test]
    fn demand_hitm_finds_the_race() {
        let r = run_program(racy_program(200), 2, AnalysisMode::demand_hitm()).unwrap();
        assert!(
            r.races.distinct >= 1,
            "demand-driven analysis must catch the hot race"
        );
        assert!(r.controller.unwrap().enables >= 1);
        assert!(r.pmis >= 1);
        assert!(r.accesses_analyzed > 0);
        assert!(r.accesses_analyzed < r.accesses_total);
    }

    #[test]
    fn demand_oracle_finds_the_race() {
        let r = run_program(racy_program(200), 2, AnalysisMode::demand_oracle()).unwrap();
        assert!(r.races.distinct >= 1);
    }

    #[test]
    fn continuous_finds_the_race() {
        let r = run_program(racy_program(200), 2, AnalysisMode::Continuous).unwrap();
        assert!(r.races.distinct >= 1);
    }

    #[test]
    fn demand_is_faster_than_continuous_on_racy_program_with_private_phase() {
        let cont = run_program(racy_program(2_000), 2, AnalysisMode::Continuous).unwrap();
        let demand = run_program(racy_program(2_000), 2, AnalysisMode::demand_hitm()).unwrap();
        assert!(
            demand.speedup_over(&cont) > 1.5,
            "long private phase must be skipped"
        );
    }

    #[test]
    fn schedules_are_identical_across_modes() {
        // The op counts and scheduler stats must match exactly between
        // modes; only costs differ.
        let a = run_program(racy_program(300), 2, AnalysisMode::Native).unwrap();
        let b = run_program(racy_program(300), 2, AnalysisMode::Continuous).unwrap();
        let c = run_program(racy_program(300), 2, AnalysisMode::demand_hitm()).unwrap();
        assert_eq!(a.ops, b.ops);
        assert_eq!(b.ops, c.ops);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(b.schedule, c.schedule);
    }

    #[test]
    fn demand_disabled_indicator_never_enables() {
        let mode = AnalysisMode::Demand {
            indicator: IndicatorMode::Disabled,
            controller: ControllerConfig::default(),
        };
        let r = run_program(racy_program(100), 2, mode).unwrap();
        assert_eq!(r.accesses_analyzed, 0);
        assert_eq!(r.races.distinct, 0);
        assert_eq!(r.pmis, 0);
    }

    #[test]
    fn enabled_fraction_between_zero_and_one() {
        let r = run_program(racy_program(500), 2, AnalysisMode::demand_hitm()).unwrap();
        let f = r.enabled_cycle_fraction();
        assert!(f > 0.0 && f < 1.0, "fraction {f} out of range");
        let cont = run_program(racy_program(500), 2, AnalysisMode::Continuous).unwrap();
        assert!(cont.enabled_cycle_fraction() > 0.99);
    }

    #[test]
    fn lockset_detector_kind_runs() {
        let mut cfg = SimConfig::new(2, AnalysisMode::Continuous);
        cfg.detector_kind = DetectorKind::LockSet;
        let r = Simulation::new(cfg).run(racy_program(50)).unwrap();
        assert!(r.races.distinct >= 1);
    }

    #[test]
    fn djit_detector_kind_runs() {
        let mut cfg = SimConfig::new(2, AnalysisMode::Continuous);
        cfg.detector_kind = DetectorKind::Djit;
        let r = Simulation::new(cfg).run(racy_program(50)).unwrap();
        assert!(r.races.distinct >= 1);
    }

    #[test]
    fn per_core_scope_runs_and_detects() {
        use crate::mode::EnableScope;
        let mode = AnalysisMode::Demand {
            indicator: IndicatorMode::hitm_default(),
            controller: ControllerConfig {
                scope: EnableScope::PerCore,
                ..ControllerConfig::default()
            },
        };
        let r = run_program(racy_program(200), 2, mode).unwrap();
        assert!(
            r.controller.unwrap().enables >= 1,
            "the HITM side must wake"
        );
        let global = run_program(racy_program(200), 2, AnalysisMode::demand_hitm()).unwrap();
        assert_eq!(r.ops, global.ops, "same schedule");
        // The documented coverage trade-off: per-core enabling only wakes
        // the interrupted (consumer) core, so it can observe strictly
        // fewer accesses — and therefore at most as many races — as
        // global enabling on the same schedule.
        assert!(r.accesses_analyzed <= global.accesses_analyzed);
        assert!(r.races.distinct <= global.races.distinct);
        assert!(
            global.races.distinct >= 1,
            "global scope catches the hot race"
        );
    }

    #[test]
    fn co_scheduled_threads_blind_the_indicator() {
        // All threads on one core: no coherence traffic, no HITM, no
        // demand-mode detection — while continuous still sees the race.
        let demand = run_program(racy_program(100), 1, AnalysisMode::demand_hitm()).unwrap();
        assert_eq!(demand.cache.total_hitm_loads(), 0);
        assert_eq!(demand.races.distinct, 0);
        assert_eq!(demand.pmis, 0);
        let cont = run_program(racy_program(100), 1, AnalysisMode::Continuous).unwrap();
        assert!(cont.races.distinct >= 1);
    }

    #[test]
    fn timeline_matches_controller_transitions() {
        let r = run_program(racy_program(500), 2, AnalysisMode::demand_hitm()).unwrap();
        let ctrl = r.controller.unwrap();
        let enables = r
            .timeline
            .iter()
            .filter(|e| e.kind == crate::timeline::ToggleKind::Enable)
            .count() as u64;
        let disables = r
            .timeline
            .iter()
            .filter(|e| e.kind == crate::timeline::ToggleKind::Disable)
            .count() as u64;
        assert_eq!(enables, ctrl.enables);
        assert_eq!(disables, ctrl.disables);
        // Timestamps are monotone.
        assert!(r
            .timeline
            .windows(2)
            .all(|w| w[0].at_total_cycles <= w[1].at_total_cycles));
        // And the rendered strip has the right width.
        assert_eq!(crate::timeline::result_timeline(&r, 40).len(), 40);
    }

    #[test]
    fn more_threads_than_cores_is_fine() {
        let mut b = ProgramBuilder::new();
        b.all_start();
        let shared = b.alloc_shared(64);
        let mut tids = vec![ThreadId::MAIN];
        for _ in 1..6 {
            tids.push(b.add_thread());
        }
        for (i, &t) in tids.iter().enumerate() {
            b.on(t)
                .write(shared.index(i as u64 * 8))
                .read(shared.index(0));
        }
        let r = run_program(b.build(), 2, AnalysisMode::Continuous).unwrap();
        assert_eq!(r.core_cycles.len(), 2);
        assert!(r.makespan > 0);
    }
}
