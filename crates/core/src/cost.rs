//! The cycle cost model.
//!
//! The paper's speedups are ratios of execution times under different
//! analysis configurations. We account simulated cycles per core:
//!
//! * native work costs what the cache hierarchy says (plus declared
//!   compute cycles);
//! * running under the tool at all (any mode but native) costs a small
//!   multiplicative translator overhead — the thin binary-instrumentation
//!   layer stays resident even with analysis off;
//! * each *analyzed* memory access pays the shadow-memory/vector-clock
//!   cost; each sync operation pays sync-instrumentation cost whenever the
//!   tool is attached (sync tracking is always on);
//! * performance-monitoring interrupts and global analysis toggles cost
//!   cycles.
//!
//! Defaults are calibrated so continuous analysis lands in the 30–100×
//! slowdown band the paper reports for Inspector XE-class tools.

/// Cycle costs of the tool and machine events.
///
/// # Examples
///
/// ```
/// use ddrace_core::CostModel;
/// let m = CostModel::default();
/// // Tool-attached execution inflates a 100-cycle op only slightly while
/// // analysis is off...
/// assert_eq!(m.translated(100), 102);
/// // ...but analyzed accesses pay the full instrumentation cost.
/// assert!(m.analysis_per_access > 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Added cycles per analyzed memory access (shadow lookup, epoch/VC
    /// comparison, occasional report path).
    pub analysis_per_access: u32,
    /// Added cycles per synchronization operation while the tool is
    /// attached (sync tracking never turns off).
    pub analysis_per_sync: u32,
    /// Percent overhead on every operation while the tool is attached but
    /// analysis is off (the resident translator).
    pub translator_overhead_pct: u32,
    /// Cycles to take one performance-monitoring interrupt.
    pub pmi_cost: u32,
    /// Stop-the-world cycles, charged to *every* core, for one global
    /// analysis enable or disable transition (code patching / mode flush).
    pub toggle_cost: u64,
    /// Cycles for thread management operations (fork, join) themselves.
    pub thread_mgmt_cost: u32,
}

impl CostModel {
    /// Applies the resident-translator multiplier to a base cost.
    pub fn translated(&self, base: u32) -> u32 {
        base + base * self.translator_overhead_pct / 100
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            analysis_per_access: 250,
            analysis_per_sync: 400,
            translator_overhead_pct: 2,
            pmi_cost: 3_000,
            toggle_cost: 50_000,
            thread_mgmt_cost: 2_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translated_applies_percentage() {
        let m = CostModel {
            translator_overhead_pct: 10,
            ..CostModel::default()
        };
        assert_eq!(m.translated(100), 110);
        assert_eq!(m.translated(4), 4); // integer floor on tiny costs
        let zero = CostModel {
            translator_overhead_pct: 0,
            ..CostModel::default()
        };
        assert_eq!(zero.translated(100), 100);
    }

    #[test]
    fn defaults_are_sane() {
        let m = CostModel::default();
        assert!(
            m.analysis_per_access >= 100,
            "must dominate an L1 hit by ~30x"
        );
        assert!(m.toggle_cost > u64::from(m.pmi_cost));
        assert!(m.translator_overhead_pct < 10);
    }
}

ddrace_json::json_struct!(CostModel {
    analysis_per_access,
    analysis_per_sync,
    translator_overhead_pct,
    pmi_cost,
    toggle_cost,
    thread_mgmt_cost
});
