//! Property-based tests for the simulation engine and demand controller.

use ddrace_core::{
    run_program, AnalysisMode, ControllerConfig, DemandController, SimConfig, Simulation,
};
use ddrace_pmu::IndicatorMode;
use ddrace_program::{Op, Program, SchedulerConfig, StartMode};
use proptest::prelude::*;

/// Random well-formed fork-join-free programs: every thread does private
/// work plus occasional accesses to a shared region.
fn arb_program(max_threads: usize, len: usize) -> impl Strategy<Value = Vec<Vec<Op>>> {
    let thread_ops = proptest::collection::vec(
        prop_oneof![
            4 => (0u64..128).prop_map(|a| Op::Read { addr: ddrace_program::Addr(0x10_000 + a * 8) }),
            3 => (0u64..128).prop_map(|a| Op::Write { addr: ddrace_program::Addr(0x10_000 + a * 8) }),
            1 => (0u64..8).prop_map(|a| Op::Read { addr: ddrace_program::Addr(0x90_000 + a * 8) }),
            1 => (0u64..8).prop_map(|a| Op::Write { addr: ddrace_program::Addr(0x90_000 + a * 8) }),
            1 => (1u32..10).prop_map(|c| Op::Compute { cycles: c }),
            1 => (0u64..4).prop_map(|a| Op::AtomicRmw { addr: ddrace_program::Addr(0xA0_000 + a * 8) }),
        ],
        1..len,
    );
    proptest::collection::vec(thread_ops, 1..=max_threads)
}

fn sim(mode: AnalysisMode, seed: u64) -> Simulation {
    let mut cfg = SimConfig::new(4, mode);
    cfg.scheduler = SchedulerConfig {
        quantum: 8,
        seed,
        jitter: true,
    };
    Simulation::new(cfg)
}

fn program(threads: &[Vec<Op>]) -> Program {
    Program::from_thread_vecs(threads.to_vec(), StartMode::AllStart)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The simulation is deterministic end to end.
    #[test]
    fn simulation_is_deterministic(
        threads in arb_program(4, 80),
        seed in any::<u64>(),
    ) {
        let a = sim(AnalysisMode::demand_hitm(), seed).run(program(&threads)).unwrap();
        let b = sim(AnalysisMode::demand_hitm(), seed).run(program(&threads)).unwrap();
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.races.distinct, b.races.distinct);
        prop_assert_eq!(a.pmis, b.pmis);
        prop_assert_eq!(&a.core_cycles, &b.core_cycles);
    }

    /// Cost ordering: native ≤ any tool-attached mode; demand ≤
    /// continuous + toggle slack. Schedules are identical, so these hold
    /// per-run, not just on average.
    #[test]
    fn native_is_cheapest(threads in arb_program(4, 80), seed in any::<u64>()) {
        let native = sim(AnalysisMode::Native, seed).run(program(&threads)).unwrap();
        let cont = sim(AnalysisMode::Continuous, seed).run(program(&threads)).unwrap();
        let demand = sim(AnalysisMode::demand_hitm(), seed).run(program(&threads)).unwrap();
        prop_assert!(native.makespan <= cont.makespan);
        prop_assert!(native.makespan <= demand.makespan);
    }

    /// Demand-driven analysis never checks more accesses than continuous,
    /// and continuous checks exactly the data accesses.
    #[test]
    fn analyzed_access_bounds(threads in arb_program(4, 80), seed in any::<u64>()) {
        let cont = sim(AnalysisMode::Continuous, seed).run(program(&threads)).unwrap();
        let demand = sim(AnalysisMode::demand_hitm(), seed).run(program(&threads)).unwrap();
        prop_assert_eq!(cont.accesses_analyzed, cont.ops.reads + cont.ops.writes);
        prop_assert!(demand.accesses_analyzed <= cont.accesses_analyzed);
    }

    /// Races reported by demand modes are a subset (by shadow key) of
    /// those continuous analysis reports on the same schedule: demand can
    /// only miss, never invent.
    #[test]
    fn demand_races_are_a_subset(threads in arb_program(4, 100), seed in any::<u64>()) {
        let keys = |r: &ddrace_core::RunResult| {
            let mut v: Vec<u64> = r.races.reports.iter().map(|x| x.shadow_key).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let cont = sim(AnalysisMode::Continuous, seed).run(program(&threads)).unwrap();
        let demand = sim(AnalysisMode::demand_oracle(), seed).run(program(&threads)).unwrap();
        let ck = keys(&cont);
        for k in keys(&demand) {
            prop_assert!(ck.contains(&k), "demand invented race on key {k:#x}");
        }
    }

    /// Residency accounting is internally consistent.
    #[test]
    fn residency_fractions_in_range(threads in arb_program(4, 80), seed in any::<u64>()) {
        let r = sim(AnalysisMode::demand_hitm(), seed).run(program(&threads)).unwrap();
        let f = r.enabled_cycle_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(r.enabled_cycles <= r.total_cycles);
        prop_assert!(r.accesses_analyzed <= r.accesses_total);
        let ctrl = r.controller.unwrap();
        prop_assert!(ctrl.disables <= ctrl.enables);
    }

    /// The controller state machine never disables before the minimum
    /// residency, regardless of the shared/quiet pattern it observes.
    #[test]
    fn controller_honours_min_residency(
        pattern in proptest::collection::vec(any::<bool>(), 1..500),
        min_on in 1u64..100,
    ) {
        let mut c = DemandController::new(ControllerConfig { cooldown_accesses: 1, min_on_accesses: min_on, ..ControllerConfig::default() });
        c.on_sharing_signal();
        let mut analyzed = 0u64;
        for shared in pattern {
            if !c.is_on() {
                break;
            }
            let disabled = c.on_analyzed_access(shared);
            analyzed += 1;
            if disabled {
                prop_assert!(analyzed >= min_on, "disabled after {analyzed} < {min_on}");
                break;
            }
        }
    }

    /// A disabled indicator behaves exactly like native execution plus
    /// constant tool overhead: no analysis, no PMIs, no races.
    #[test]
    fn disabled_indicator_never_wakes(threads in arb_program(3, 60), seed in any::<u64>()) {
        let mode = AnalysisMode::Demand {
            indicator: IndicatorMode::Disabled,
            controller: ControllerConfig::default(),
        };
        let r = sim(mode, seed).run(program(&threads)).unwrap();
        prop_assert_eq!(r.accesses_analyzed, 0);
        prop_assert_eq!(r.pmis, 0);
        prop_assert_eq!(r.races.distinct, 0);
        prop_assert_eq!(r.enabled_cycles, 0);
    }
}

#[test]
fn run_program_helper_works() {
    let threads = vec![vec![Op::Compute { cycles: 5 }]];
    let r = run_program(
        Program::from_thread_vecs(threads, StartMode::AllStart),
        1,
        AnalysisMode::Native,
    )
    .unwrap();
    assert_eq!(r.makespan, 5);
}
