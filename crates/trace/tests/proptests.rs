//! Property-based round-trip and framing tests for the `.ddt` codec,
//! covering both the flat version-1 stream and the block-framed
//! version 2.

use ddrace_program::{Addr, BarrierId, LockId, Op, SemId, ThreadId, TraceEvent};
use ddrace_trace::{
    decode_trace, encode_trace_with, varint, FormatVersion, TraceError, TraceErrorKind, TraceMeta,
    TraceRecord, TraceWriter,
};
use proptest::prelude::*;

fn exec(event: TraceEvent) -> TraceRecord {
    TraceRecord::Exec(event)
}

fn op(tid: u32, op: Op) -> TraceRecord {
    exec(TraceEvent::Op {
        tid: ThreadId(tid),
        op,
    })
}

fn meta(label: &str) -> TraceMeta {
    TraceMeta {
        source: "prop".to_string(),
        label: label.to_string(),
        seed: 7,
        fingerprint: 7,
    }
}

/// Encodes at version 2 with a tiny block target, so even short record
/// lists spread across several checksummed blocks.
fn encode_v2_small_blocks(meta: &TraceMeta, records: &[TraceRecord], target: usize) -> Vec<u8> {
    let mut writer = TraceWriter::new(Vec::new(), meta)
        .expect("Vec sink cannot fail")
        .block_target(target);
    for record in records {
        writer.write(record).expect("Vec sink cannot fail");
    }
    writer.finish().expect("Vec sink cannot fail")
}

/// Every record shape the format knows, with adversarial field ranges
/// (full-width addresses and cycles included).
fn arb_record() -> impl Strategy<Value = TraceRecord> {
    prop_oneof![
        (0u32..16, 0u32..17).prop_map(|(tid, parent)| exec(TraceEvent::ThreadStarted {
            tid: ThreadId(tid),
            parent: parent.checked_sub(1).map(ThreadId),
        })),
        (0u32..16).prop_map(|tid| exec(TraceEvent::ThreadFinished { tid: ThreadId(tid) })),
        (0u32..8, proptest::collection::vec(0u32..16, 0..6)).prop_map(|(b, tids)| {
            exec(TraceEvent::BarrierReleased {
                barrier: BarrierId(b),
                participants: tids.into_iter().map(ThreadId).collect(),
            })
        }),
        (0u32..16, any::<u64>()).prop_map(|(t, a)| op(t, Op::Read { addr: Addr(a) })),
        (0u32..16, any::<u64>()).prop_map(|(t, a)| op(t, Op::Write { addr: Addr(a) })),
        (0u32..16, any::<u64>()).prop_map(|(t, a)| op(t, Op::AtomicRmw { addr: Addr(a) })),
        (0u32..16, any::<u32>()).prop_map(|(t, l)| op(t, Op::Lock { lock: LockId(l) })),
        (0u32..16, any::<u32>()).prop_map(|(t, l)| op(t, Op::Unlock { lock: LockId(l) })),
        (0u32..16, 0u32..8, 1u32..16).prop_map(|(t, b, n)| op(
            t,
            Op::Barrier {
                barrier: BarrierId(b),
                participants: n,
            }
        )),
        (0u32..16, 0u32..16).prop_map(|(t, c)| op(t, Op::Fork { child: ThreadId(c) })),
        (0u32..16, 0u32..16).prop_map(|(t, c)| op(t, Op::Join { child: ThreadId(c) })),
        (0u32..16, 0u32..8).prop_map(|(t, s)| op(t, Op::Post { sem: SemId(s) })),
        (0u32..16, 0u32..8).prop_map(|(t, s)| op(t, Op::WaitSem { sem: SemId(s) })),
        (0u32..16, any::<u32>()).prop_map(|(t, c)| op(t, Op::Compute { cycles: c })),
        (any::<u32>(), any::<u64>(), any::<u32>())
            .prop_map(|(core, line, skid)| { TraceRecord::Hitm { core, line, skid } }),
    ]
}

proptest! {
    /// Arbitrary record sequences encode → decode identically at both
    /// format versions, header included — version 2 forced through tiny
    /// blocks so the sequence straddles many block boundaries.
    #[test]
    fn records_roundtrip(
        records in proptest::collection::vec(arb_record(), 0..60),
        seed in any::<u64>(),
        fingerprint in any::<u64>(),
        target in 1usize..64,
    ) {
        let meta = TraceMeta {
            source: "prop".to_string(),
            label: format!("spec-{seed:x}"),
            seed,
            fingerprint,
        };
        let v1 = encode_trace_with(&meta, &records, FormatVersion::V1);
        let (m1, r1) = decode_trace(&v1).expect("v1 roundtrip decodes");
        prop_assert_eq!(&m1, &meta);
        prop_assert_eq!(&r1[..], &records[..]);

        let v2 = encode_v2_small_blocks(&meta, &records, target);
        let (m2, r2) = decode_trace(&v2).expect("v2 roundtrip decodes");
        prop_assert_eq!(&m2, &meta);
        prop_assert_eq!(&r2[..], &records[..]);
    }

    /// The varint codec is total over u64, through both entry points.
    #[test]
    fn varint_roundtrips(value in any::<u64>()) {
        let mut buf = Vec::new();
        varint::encode(value, &mut buf);
        prop_assert_eq!(varint::decode(&buf), Some((value, buf.len())));
        let mut pos = 0;
        prop_assert_eq!(varint::decode_slice(&buf, &mut pos), Some(value));
        prop_assert_eq!(pos, buf.len());
    }

    /// Every strict prefix of an encoded trace — either version —
    /// either decodes to a prefix of the records (the cut landed on a
    /// record or block boundary) or fails with a position-carrying
    /// error inside the prefix — never a panic, and never records the
    /// full stream didn't contain.
    #[test]
    fn truncation_errors_carry_position(
        records in proptest::collection::vec(arb_record(), 1..30),
        cut_frac in 0u32..1000,
        target in 1usize..64,
    ) {
        for bytes in [
            encode_trace_with(&meta("truncate"), &records, FormatVersion::V1),
            encode_v2_small_blocks(&meta("truncate"), &records, target),
        ] {
            let cut = (bytes.len() - 1) * cut_frac as usize / 1000;
            match decode_trace(&bytes[..cut]) {
                Ok((_, partial)) => {
                    prop_assert!(partial.len() < records.len());
                    prop_assert_eq!(&partial[..], &records[..partial.len()]);
                }
                Err(TraceError { offset, .. }) => prop_assert!(offset <= cut as u64),
            }
        }
    }

    /// Flipping any payload bit in a version-2 block is caught by the
    /// block checksum and reported at the block's frame offset, before
    /// any of the corrupted payload is decoded.
    #[test]
    fn v2_checksum_catches_payload_corruption(
        records in proptest::collection::vec(arb_record(), 1..30),
        target in 1usize..64,
        pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut bytes = encode_v2_small_blocks(&meta("corrupt"), &records, target);
        let blocks = block_frames(&bytes);
        prop_assert!(!blocks.is_empty());
        let (frame_start, payload_start, payload_len) =
            blocks[(pick % blocks.len() as u64) as usize];
        prop_assert!(payload_len > 0);
        let victim = payload_start + (pick as usize % payload_len);
        bytes[victim] ^= 1 << bit;
        let err = decode_trace(&bytes).expect_err("corruption must not decode");
        prop_assert_eq!(err.kind, TraceErrorKind::BadBlock("checksum mismatch"));
        prop_assert_eq!(err.offset, frame_start as u64);
    }
}

/// Parses the block frames of an encoded version-2 trace from the
/// outside: returns `(frame_start, payload_start, payload_len)` per
/// block. Panics on malformed input — these are test fixtures.
fn block_frames(bytes: &[u8]) -> Vec<(usize, usize, usize)> {
    let mut pos = header_len(bytes);
    let mut frames = Vec::new();
    while pos < bytes.len() {
        let frame_start = pos;
        let (_count, used) = varint::decode(&bytes[pos..]).expect("count varint");
        pos += used;
        let (len, used) = varint::decode(&bytes[pos..]).expect("length varint");
        pos += used;
        pos += 8; // checksum
        frames.push((frame_start, pos, len as usize));
        pos += len as usize;
    }
    assert_eq!(pos, bytes.len(), "frames tile the stream exactly");
    frames
}

/// Byte length of the header (magic through reserved-pair count) of an
/// encoded trace with no reserved pairs.
fn header_len(bytes: &[u8]) -> usize {
    let mut pos = 12; // magic + version
    for _ in 0..2 {
        // seed, fingerprint
        let (_, used) = varint::decode(&bytes[pos..]).expect("header varint");
        pos += used;
    }
    for _ in 0..2 {
        // source, label strings
        let (len, used) = varint::decode(&bytes[pos..]).expect("string length");
        pos += used + len as usize;
    }
    let (reserved, used) = varint::decode(&bytes[pos..]).expect("reserved count");
    assert_eq!(reserved, 0);
    pos + used
}

#[test]
fn varint_edge_values() {
    for value in [0u64, 1, 127, 128, u64::from(u32::MAX), u64::MAX] {
        let mut buf = Vec::new();
        varint::encode(value, &mut buf);
        assert_eq!(varint::decode(&buf), Some((value, buf.len())));
    }
    assert_eq!(varint::decode(&[]), None);
    assert_eq!(varint::decode(&[0x80]), None);
}

#[test]
fn unsupported_version_names_found_and_supported_range() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"DDTRACE\0");
    bytes.extend_from_slice(&99u32.to_le_bytes());
    let err = decode_trace(&bytes).unwrap_err();
    assert_eq!(err.kind, TraceErrorKind::UnsupportedVersion { found: 99 });
    assert_eq!(
        err.to_string(),
        "unsupported trace format version: found v99, supports v1–v2"
    );
    // Version 0 is below the supported floor, not a legacy alias.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"DDTRACE\0");
    bytes.extend_from_slice(&0u32.to_le_bytes());
    assert_eq!(
        decode_trace(&bytes).unwrap_err().kind,
        TraceErrorKind::UnsupportedVersion { found: 0 }
    );
}

#[test]
fn bad_magic_and_empty_input_fail_cleanly() {
    assert_eq!(
        decode_trace(b"NOTDDT\0\0rest").unwrap_err().kind,
        TraceErrorKind::BadMagic
    );
    let err = decode_trace(&[]).unwrap_err();
    assert_eq!(err.kind, TraceErrorKind::Truncated);
    assert_eq!(err.offset, 0);
}

#[test]
fn unknown_tag_reports_its_offset_v1() {
    let mut bytes = encode_trace_with(&meta("t"), &[], FormatVersion::V1);
    let tag_at = bytes.len() as u64;
    bytes.push(0xff);
    let err = decode_trace(&bytes).unwrap_err();
    assert_eq!(err.kind, TraceErrorKind::BadTag(0xff));
    assert_eq!(err.offset, tag_at);
}

#[test]
fn v2_truncation_at_every_prefix_length() {
    // Enough records over a tiny block target that every frame field —
    // count, length, checksum, payload — lands under some cut.
    let records: Vec<TraceRecord> = (0..40)
        .map(|i| {
            op(
                i % 4,
                Op::Write {
                    addr: Addr(u64::from(i) << 33), // multi-byte varints
                },
            )
        })
        .collect();
    let bytes = encode_v2_small_blocks(&meta("cuts"), &records, 24);
    let head = header_len(&bytes);
    assert!(bytes.len() > head + 64, "fixture spans several blocks");
    let mut boundary_cuts = 0;
    for cut in head..bytes.len() {
        match decode_trace(&bytes[..cut]) {
            Ok((_, partial)) => {
                // Only a cut exactly between frames decodes cleanly, to
                // the whole blocks before the cut.
                boundary_cuts += 1;
                assert!(partial.len() < records.len(), "cut {cut}");
                assert_eq!(&partial[..], &records[..partial.len()], "cut {cut}");
            }
            Err(TraceError { offset, kind }) => {
                assert!(offset <= cut as u64, "cut {cut}: offset {offset} past cut");
                assert!(
                    matches!(
                        kind,
                        TraceErrorKind::Truncated
                            | TraceErrorKind::BadVarint
                            | TraceErrorKind::BadBlock(_)
                    ),
                    "cut {cut}: unexpected kind {kind:?}"
                );
            }
        }
    }
    let frames = block_frames(&bytes).len();
    assert_eq!(
        boundary_cuts, frames,
        "clean decodes happen exactly at frame starts (header end included)"
    );
}

#[test]
fn v2_event_count_mismatch_is_positioned_at_frame() {
    // Build one valid block, then rewrite its count varint (same
    // encoded width) and refresh nothing else — the checksum still
    // matches, so the count check must catch it.
    let records = vec![
        op(1, Op::Read { addr: Addr(8) }),
        op(2, Op::Compute { cycles: 3 }),
    ];
    let mut bytes = encode_v2_small_blocks(&meta("count"), &records, usize::MAX >> 1);
    let frames = block_frames(&bytes);
    assert_eq!(frames.len(), 1);
    let (frame_start, _, _) = frames[0];
    assert_eq!(bytes[frame_start], 2, "single-byte count varint of 2");
    bytes[frame_start] = 1;
    let err = decode_trace(&bytes).unwrap_err();
    assert_eq!(err.kind, TraceErrorKind::BadBlock("event count mismatch"));
    assert_eq!(err.offset, frame_start as u64);
    assert!(err.to_string().contains("event count mismatch"), "{err}");
}
