//! Property-based round-trip tests for the `.ddt` codec.

use ddrace_program::{Addr, BarrierId, LockId, Op, SemId, ThreadId, TraceEvent};
use ddrace_trace::{
    decode_trace, encode_trace, varint, TraceError, TraceErrorKind, TraceMeta, TraceRecord,
};
use proptest::prelude::*;

fn exec(event: TraceEvent) -> TraceRecord {
    TraceRecord::Exec(event)
}

fn op(tid: u32, op: Op) -> TraceRecord {
    exec(TraceEvent::Op {
        tid: ThreadId(tid),
        op,
    })
}

/// Every record shape the format knows, with adversarial field ranges
/// (full-width addresses and cycles included).
fn arb_record() -> impl Strategy<Value = TraceRecord> {
    prop_oneof![
        (0u32..16, 0u32..17).prop_map(|(tid, parent)| exec(TraceEvent::ThreadStarted {
            tid: ThreadId(tid),
            parent: parent.checked_sub(1).map(ThreadId),
        })),
        (0u32..16).prop_map(|tid| exec(TraceEvent::ThreadFinished { tid: ThreadId(tid) })),
        (0u32..8, proptest::collection::vec(0u32..16, 0..6)).prop_map(|(b, tids)| {
            exec(TraceEvent::BarrierReleased {
                barrier: BarrierId(b),
                participants: tids.into_iter().map(ThreadId).collect(),
            })
        }),
        (0u32..16, any::<u64>()).prop_map(|(t, a)| op(t, Op::Read { addr: Addr(a) })),
        (0u32..16, any::<u64>()).prop_map(|(t, a)| op(t, Op::Write { addr: Addr(a) })),
        (0u32..16, any::<u64>()).prop_map(|(t, a)| op(t, Op::AtomicRmw { addr: Addr(a) })),
        (0u32..16, any::<u32>()).prop_map(|(t, l)| op(t, Op::Lock { lock: LockId(l) })),
        (0u32..16, any::<u32>()).prop_map(|(t, l)| op(t, Op::Unlock { lock: LockId(l) })),
        (0u32..16, 0u32..8, 1u32..16).prop_map(|(t, b, n)| op(
            t,
            Op::Barrier {
                barrier: BarrierId(b),
                participants: n,
            }
        )),
        (0u32..16, 0u32..16).prop_map(|(t, c)| op(t, Op::Fork { child: ThreadId(c) })),
        (0u32..16, 0u32..16).prop_map(|(t, c)| op(t, Op::Join { child: ThreadId(c) })),
        (0u32..16, 0u32..8).prop_map(|(t, s)| op(t, Op::Post { sem: SemId(s) })),
        (0u32..16, 0u32..8).prop_map(|(t, s)| op(t, Op::WaitSem { sem: SemId(s) })),
        (0u32..16, any::<u32>()).prop_map(|(t, c)| op(t, Op::Compute { cycles: c })),
        (any::<u32>(), any::<u64>(), any::<u32>())
            .prop_map(|(core, line, skid)| { TraceRecord::Hitm { core, line, skid } }),
    ]
}

proptest! {
    /// Arbitrary record sequences encode → decode identically, header
    /// included.
    #[test]
    fn records_roundtrip(
        records in proptest::collection::vec(arb_record(), 0..60),
        seed in any::<u64>(),
        fingerprint in any::<u64>(),
    ) {
        let meta = TraceMeta {
            source: "prop".to_string(),
            label: format!("spec-{seed:x}"),
            seed,
            fingerprint,
        };
        let bytes = encode_trace(&meta, &records);
        let (back_meta, back_records) = decode_trace(&bytes).expect("roundtrip decodes");
        prop_assert_eq!(back_meta, meta);
        prop_assert_eq!(back_records, records);
    }

    /// The varint codec is total over u64.
    #[test]
    fn varint_roundtrips(value in any::<u64>()) {
        let mut buf = Vec::new();
        varint::encode(value, &mut buf);
        prop_assert_eq!(varint::decode(&buf), Some((value, buf.len())));
    }

    /// Every strict prefix of an encoded trace either decodes to a
    /// prefix of the records (cut landed on a record boundary) or fails
    /// with a position-carrying error — never a panic, and never
    /// records the full stream didn't contain.
    #[test]
    fn truncation_errors_carry_position(
        records in proptest::collection::vec(arb_record(), 1..30),
        cut_frac in 0u32..1000,
    ) {
        let meta = TraceMeta {
            source: "prop".to_string(),
            label: "truncate".to_string(),
            seed: 7,
            fingerprint: 7,
        };
        let bytes = encode_trace(&meta, &records);
        let cut = (bytes.len() - 1) * cut_frac as usize / 1000;
        match decode_trace(&bytes[..cut]) {
            Ok((_, partial)) => {
                prop_assert!(partial.len() < records.len());
                prop_assert_eq!(&partial[..], &records[..partial.len()]);
            }
            Err(TraceError { offset, .. }) => prop_assert!(offset <= cut as u64),
        }
    }
}

#[test]
fn varint_edge_values() {
    for value in [0u64, 1, 127, 128, u64::from(u32::MAX), u64::MAX] {
        let mut buf = Vec::new();
        varint::encode(value, &mut buf);
        assert_eq!(varint::decode(&buf), Some((value, buf.len())));
    }
    assert_eq!(varint::decode(&[]), None);
    assert_eq!(varint::decode(&[0x80]), None);
}

#[test]
fn unsupported_version_names_found_and_supported() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"DDTRACE\0");
    bytes.extend_from_slice(&99u32.to_le_bytes());
    let err = decode_trace(&bytes).unwrap_err();
    assert_eq!(err.kind, TraceErrorKind::UnsupportedVersion { found: 99 });
    assert_eq!(
        err.to_string(),
        "unsupported trace format version 99 (this build reads version 1)"
    );
}

#[test]
fn bad_magic_and_empty_input_fail_cleanly() {
    assert_eq!(
        decode_trace(b"NOTDDT\0\0rest").unwrap_err().kind,
        TraceErrorKind::BadMagic
    );
    let err = decode_trace(&[]).unwrap_err();
    assert_eq!(err.kind, TraceErrorKind::Truncated);
    assert_eq!(err.offset, 0);
}

#[test]
fn unknown_tag_reports_its_offset() {
    let meta = TraceMeta {
        source: "t".to_string(),
        label: "t".to_string(),
        seed: 0,
        fingerprint: 0,
    };
    let mut bytes = encode_trace(&meta, &[]);
    let tag_at = bytes.len() as u64;
    bytes.push(0xff);
    let err = decode_trace(&bytes).unwrap_err();
    assert_eq!(err.kind, TraceErrorKind::BadTag(0xff));
    assert_eq!(err.offset, tag_at);
}
