//! Allocation-free event slabs: the bulk-decode representation.
//!
//! A [`EventSlab`] holds one batch of decoded records in struct-of-arrays
//! form — parallel `Vec`s of tag bytes and scalar fields plus a shared
//! participant pool — instead of a `Vec<TraceRecord>` of enums. Decoding
//! a version-2 block into a recycled slab touches no allocator once the
//! vectors have grown to steady state, and replaying one yields borrowed
//! [`Event`]s straight out of the arrays, so the decode→detect hot path
//! never materialises per-event heap values.

use crate::format::{tag, TraceError, TraceErrorKind, TraceRecord};
use crate::varint;
use ddrace_program::{Addr, BarrierId, Event, LockId, Op, SemId, ThreadId, TraceEvent};

/// One decoded record viewed out of a slab.
///
/// Execution records borrow directly from the slab (barrier participant
/// lists point into its pool); HITM samples are plain scalars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlabRecord<'a> {
    /// A scheduler event, borrowing participant lists from the slab.
    Exec(Event<'a>),
    /// A HITM-indicator sample (PMU observation, not a schedule edge).
    Hitm {
        /// Dense index of the core whose counter overflowed.
        core: u32,
        /// Cache-line address of the access that raised the event.
        line: u64,
        /// Configured sampling skid, in operations.
        skid: u32,
    },
}

/// A recyclable batch of decoded records in struct-of-arrays form.
///
/// Field meaning is tag-dependent (`a`/`b`/`c` mirror the on-disk field
/// order): thread id / primary payload / secondary payload for ops,
/// barrier id / pool offset / participant count for barrier releases,
/// core / line / skid for HITM samples. [`EventSlab::clear`] resets the
/// lengths but keeps every allocation, which is the point.
#[derive(Debug, Default, Clone)]
pub struct EventSlab {
    tags: Vec<u8>,
    a: Vec<u32>,
    b: Vec<u64>,
    c: Vec<u32>,
    parts: Vec<ThreadId>,
}

impl EventSlab {
    /// An empty slab; vectors grow on first use and are then recycled.
    pub fn new() -> EventSlab {
        EventSlab::default()
    }

    /// Number of records currently in the slab.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True when the slab holds no records.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Empties the slab, retaining capacity for the next block.
    pub fn clear(&mut self) {
        self.tags.clear();
        self.a.clear();
        self.b.clear();
        self.c.clear();
        self.parts.clear();
    }

    fn push(&mut self, tag: u8, a: u32, b: u64, c: u32) {
        self.tags.push(tag);
        self.a.push(a);
        self.b.push(b);
        self.c.push(c);
    }

    /// Appends one materialised record (the write-side mirror of
    /// [`EventSlab::get`]; the version-1 slab reader uses it to batch a
    /// flat record stream).
    pub fn push_record(&mut self, record: &TraceRecord) {
        match record {
            TraceRecord::Hitm { core, line, skid } => {
                self.push(tag::HITM, *core, *line, *skid);
            }
            TraceRecord::Exec(event) => match event {
                TraceEvent::ThreadStarted { tid, parent } => {
                    let biased = parent.map_or(0, |p| u64::from(p.0) + 1);
                    self.push(tag::THREAD_STARTED, tid.0, biased, 0);
                }
                TraceEvent::ThreadFinished { tid } => {
                    self.push(tag::THREAD_FINISHED, tid.0, 0, 0);
                }
                TraceEvent::BarrierReleased {
                    barrier,
                    participants,
                } => {
                    let offset = self.parts.len() as u64;
                    self.parts.extend_from_slice(participants);
                    self.push(
                        tag::BARRIER_RELEASED,
                        barrier.0,
                        offset,
                        participants.len() as u32,
                    );
                }
                TraceEvent::Op { tid, op } => {
                    let (t, b, c) = match *op {
                        Op::Read { addr } => (tag::OP_READ, addr.0, 0),
                        Op::Write { addr } => (tag::OP_WRITE, addr.0, 0),
                        Op::AtomicRmw { addr } => (tag::OP_ATOMIC_RMW, addr.0, 0),
                        Op::Lock { lock } => (tag::OP_LOCK, u64::from(lock.0), 0),
                        Op::Unlock { lock } => (tag::OP_UNLOCK, u64::from(lock.0), 0),
                        Op::Barrier {
                            barrier,
                            participants,
                        } => (tag::OP_BARRIER, u64::from(barrier.0), participants),
                        Op::Fork { child } => (tag::OP_FORK, u64::from(child.0), 0),
                        Op::Join { child } => (tag::OP_JOIN, u64::from(child.0), 0),
                        Op::Post { sem } => (tag::OP_POST, u64::from(sem.0), 0),
                        Op::WaitSem { sem } => (tag::OP_WAIT_SEM, u64::from(sem.0), 0),
                        Op::Compute { cycles } => (tag::OP_COMPUTE, u64::from(cycles), 0),
                    };
                    self.push(t, tid.0, b, c);
                }
            },
        }
    }

    /// The record at `index`, borrowing from the slab.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn get(&self, index: usize) -> SlabRecord<'_> {
        self.view(
            self.tags[index],
            self.a[index],
            self.b[index],
            self.c[index],
        )
    }

    /// All records in order, borrowing from the slab. The replay hot
    /// path: one pass over the parallel arrays with no per-index bounds
    /// checks.
    pub fn iter(&self) -> impl Iterator<Item = SlabRecord<'_>> {
        self.tags
            .iter()
            .zip(&self.a)
            .zip(&self.b)
            .zip(&self.c)
            .map(move |(((&tag, &a), &b), &c)| self.view(tag, a, b, c))
    }

    /// The run of consecutive `Op::Compute` records for a single thread
    /// starting at `from`: its thread id and the cycle payload of every
    /// record in the run. `None` when the record at `from` is not a
    /// compute op.
    ///
    /// This is the struct-of-arrays payoff for replay: compute records
    /// dominate PMU-derived traces, and a same-thread run of them is
    /// charge-only work for a consumer (no memory access, no
    /// synchronization edge), so scanning the tag array for the run and
    /// handing back the cycle column lets the hot loop skip per-record
    /// enum dispatch entirely.
    ///
    /// # Panics
    ///
    /// Panics if `from >= self.len()`.
    pub fn compute_run(&self, from: usize) -> Option<(ThreadId, &[u64])> {
        if self.tags[from] != tag::OP_COMPUTE {
            return None;
        }
        let tid = self.a[from];
        let mut end = from + 1;
        while end < self.tags.len() && self.tags[end] == tag::OP_COMPUTE && self.a[end] == tid {
            end += 1;
        }
        Some((ThreadId(tid), &self.b[from..end]))
    }

    fn view(&self, tag_byte: u8, a: u32, b: u64, c: u32) -> SlabRecord<'_> {
        let tid = ThreadId(a);
        SlabRecord::Exec(Event::Op {
            tid,
            op: match tag_byte {
                tag::OP_READ => Op::Read { addr: Addr(b) },
                tag::OP_WRITE => Op::Write { addr: Addr(b) },
                tag::OP_ATOMIC_RMW => Op::AtomicRmw { addr: Addr(b) },
                tag::OP_LOCK => Op::Lock {
                    lock: LockId(b as u32),
                },
                tag::OP_UNLOCK => Op::Unlock {
                    lock: LockId(b as u32),
                },
                tag::OP_BARRIER => Op::Barrier {
                    barrier: BarrierId(b as u32),
                    participants: c,
                },
                tag::OP_FORK => Op::Fork {
                    child: ThreadId(b as u32),
                },
                tag::OP_JOIN => Op::Join {
                    child: ThreadId(b as u32),
                },
                tag::OP_POST => Op::Post {
                    sem: SemId(b as u32),
                },
                tag::OP_WAIT_SEM => Op::WaitSem {
                    sem: SemId(b as u32),
                },
                tag::OP_COMPUTE => Op::Compute { cycles: b as u32 },
                tag::THREAD_STARTED => {
                    return SlabRecord::Exec(Event::ThreadStarted {
                        tid,
                        parent: (b > 0).then(|| ThreadId((b - 1) as u32)),
                    })
                }
                tag::THREAD_FINISHED => return SlabRecord::Exec(Event::ThreadFinished { tid }),
                tag::BARRIER_RELEASED => {
                    let offset = b as usize;
                    return SlabRecord::Exec(Event::BarrierReleased {
                        barrier: BarrierId(a),
                        participants: &self.parts[offset..offset + c as usize],
                    });
                }
                tag::HITM => {
                    return SlabRecord::Hitm {
                        core: a,
                        line: b,
                        skid: c,
                    }
                }
                other => unreachable!("slab holds only validated tags, got 0x{other:02x}"),
            },
        })
    }

    /// The record at `index`, materialised as an owned [`TraceRecord`] —
    /// the compatibility bridge for callers that still want enum values
    /// (the iterator API, the conform oracles).
    pub fn record(&self, index: usize) -> TraceRecord {
        match self.get(index) {
            SlabRecord::Hitm { core, line, skid } => TraceRecord::Hitm { core, line, skid },
            SlabRecord::Exec(event) => TraceRecord::Exec(TraceEvent::from(&event)),
        }
    }
}

/// Decodes one version-2 block payload into `slab` (appending), using
/// the bulk slice decoder — no per-byte I/O, no per-event allocation
/// outside slab growth.
///
/// `base` is the payload's byte offset in the whole input, so every
/// error is positioned in file coordinates. The payload must decode
/// exactly: trailing bytes after the last record surface as a decode
/// error on the garbage, and an event-count mismatch against the frame
/// is the caller's check (it knows the declared count).
///
/// # Errors
///
/// [`TraceErrorKind::BadTag`], [`TraceErrorKind::BadVarint`],
/// [`TraceErrorKind::Truncated`], or [`TraceErrorKind::FieldRange`],
/// each at the file offset where the payload went wrong.
pub fn decode_block_into(
    payload: &[u8],
    base: u64,
    slab: &mut EventSlab,
) -> Result<(), TraceError> {
    let mut pos = 0usize;
    while pos < payload.len() {
        let tag_offset = base + pos as u64;
        let tag_byte = payload[pos];
        pos += 1;
        // Field readers over the slice cursor, mirroring the streaming
        // reader's error positions: varint failures point at the varint's
        // first byte, range failures at the field, truncation at the end
        // of the available bytes.
        macro_rules! next_varint {
            () => {{
                let field_start = pos;
                match varint::decode_slice(payload, &mut pos) {
                    Some(v) => v,
                    None => {
                        return Err(if payload[field_start..].len() < varint::MAX_LEN {
                            TraceError::new(base + payload.len() as u64, TraceErrorKind::Truncated)
                        } else {
                            TraceError::new(base + field_start as u64, TraceErrorKind::BadVarint)
                        })
                    }
                }
            }};
        }
        macro_rules! next_u32 {
            ($field:expr) => {{
                let field_start = pos;
                let value = next_varint!();
                match u32::try_from(value) {
                    Ok(v) => v,
                    Err(_) => {
                        return Err(TraceError::new(
                            base + field_start as u64,
                            TraceErrorKind::FieldRange($field),
                        ))
                    }
                }
            }};
        }
        match tag_byte {
            tag::THREAD_STARTED => {
                let tid = next_u32!("tid");
                let biased = next_varint!();
                if biased > 0 && u32::try_from(biased - 1).is_err() {
                    return Err(TraceError::new(
                        tag_offset,
                        TraceErrorKind::FieldRange("parent"),
                    ));
                }
                slab.push(tag::THREAD_STARTED, tid, biased, 0);
            }
            tag::THREAD_FINISHED => {
                let tid = next_u32!("tid");
                slab.push(tag::THREAD_FINISHED, tid, 0, 0);
            }
            tag::BARRIER_RELEASED => {
                let barrier = next_u32!("barrier");
                let count = next_varint!();
                let offset = slab.parts.len() as u64;
                slab.parts.reserve(count.min(1024) as usize);
                for _ in 0..count {
                    slab.parts.push(ThreadId(next_u32!("participant")));
                }
                let count = u32::try_from(count).map_err(|_| {
                    TraceError::new(tag_offset, TraceErrorKind::FieldRange("participants"))
                })?;
                slab.push(tag::BARRIER_RELEASED, barrier, offset, count);
            }
            tag::HITM => {
                let core = next_u32!("core");
                let line = next_varint!();
                let skid = next_u32!("skid");
                slab.push(tag::HITM, core, line, skid);
            }
            op_tag @ tag::OP_READ..=tag::OP_COMPUTE => {
                let tid = next_u32!("tid");
                let (b, c) = match op_tag {
                    tag::OP_READ | tag::OP_WRITE | tag::OP_ATOMIC_RMW => (next_varint!(), 0),
                    tag::OP_LOCK | tag::OP_UNLOCK => (u64::from(next_u32!("lock")), 0),
                    tag::OP_BARRIER => (u64::from(next_u32!("barrier")), next_u32!("participants")),
                    tag::OP_FORK | tag::OP_JOIN => (u64::from(next_u32!("child")), 0),
                    tag::OP_POST | tag::OP_WAIT_SEM => (u64::from(next_u32!("sem")), 0),
                    _ => (u64::from(next_u32!("cycles")), 0),
                };
                slab.push(op_tag, tid, b, c);
            }
            unknown => return Err(TraceError::new(tag_offset, TraceErrorKind::BadTag(unknown))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::encode_records;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::Exec(TraceEvent::ThreadStarted {
                tid: ThreadId(0),
                parent: None,
            }),
            TraceRecord::Exec(TraceEvent::ThreadStarted {
                tid: ThreadId(1),
                parent: Some(ThreadId(0)),
            }),
            TraceRecord::Exec(TraceEvent::Op {
                tid: ThreadId(1),
                op: Op::Write {
                    addr: Addr(0x00de_adbe_ef00),
                },
            }),
            TraceRecord::Exec(TraceEvent::Op {
                tid: ThreadId(0),
                op: Op::Barrier {
                    barrier: BarrierId(3),
                    participants: 2,
                },
            }),
            TraceRecord::Exec(TraceEvent::BarrierReleased {
                barrier: BarrierId(3),
                participants: vec![ThreadId(0), ThreadId(1)],
            }),
            TraceRecord::Hitm {
                core: 2,
                line: 0x40,
                skid: 5,
            },
            TraceRecord::Exec(TraceEvent::ThreadFinished { tid: ThreadId(1) }),
            TraceRecord::Exec(TraceEvent::ThreadFinished { tid: ThreadId(0) }),
        ]
    }

    #[test]
    fn push_record_and_get_roundtrip() {
        let records = sample_records();
        let mut slab = EventSlab::new();
        for r in &records {
            slab.push_record(r);
        }
        assert_eq!(slab.len(), records.len());
        for (i, r) in records.iter().enumerate() {
            assert_eq!(&slab.record(i), r, "record {i}");
        }
    }

    #[test]
    fn decode_block_matches_push_record() {
        let records = sample_records();
        let mut payload = Vec::new();
        encode_records(&records, &mut payload);
        let mut decoded = EventSlab::new();
        decode_block_into(&payload, 0, &mut decoded).unwrap();
        assert_eq!(decoded.len(), records.len());
        for (i, r) in records.iter().enumerate() {
            assert_eq!(&decoded.record(i), r, "record {i}");
        }
    }

    #[test]
    fn clear_recycles_capacity() {
        let mut slab = EventSlab::new();
        for r in &sample_records() {
            slab.push_record(r);
        }
        let caps = (slab.tags.capacity(), slab.parts.capacity());
        slab.clear();
        assert!(slab.is_empty());
        assert_eq!((slab.tags.capacity(), slab.parts.capacity()), caps);
    }

    #[test]
    fn decode_block_positions_errors_in_file_coordinates() {
        // Unknown tag at payload position 0, block based at 100.
        let err = decode_block_into(&[0x77], 100, &mut EventSlab::new()).unwrap_err();
        assert_eq!(err.offset, 100);
        assert_eq!(err.kind, TraceErrorKind::BadTag(0x77));

        // A record whose trailing varint runs off the payload end.
        let mut payload = Vec::new();
        encode_records(
            &[TraceRecord::Exec(TraceEvent::Op {
                tid: ThreadId(1),
                op: Op::Write {
                    addr: Addr(u64::MAX),
                },
            })],
            &mut payload,
        );
        let cut = &payload[..payload.len() - 1];
        let err = decode_block_into(cut, 100, &mut EventSlab::new()).unwrap_err();
        assert_eq!(err.kind, TraceErrorKind::Truncated);
        assert_eq!(err.offset, 100 + cut.len() as u64);
    }
}
