//! On-disk vocabulary of the `.ddt` format: header, records, tags,
//! and the position-carrying error type.

use ddrace_program::{Trace, TraceEvent};
use std::fmt;

/// File magic: identifies a `.ddt` trace regardless of version.
pub const MAGIC: [u8; 8] = *b"DDTRACE\0";

/// The newest format version this build writes and reads.
///
/// Bumped on any change to the header layout, event tag set, or stream
/// framing; readers refuse versions outside
/// [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`] (see
/// [`TraceErrorKind::UnsupportedVersion`]).
pub const FORMAT_VERSION: u32 = 2;

/// The oldest format version this build still reads.
///
/// Version 1 (flat record stream) stays fully readable; version 2 adds
/// length-prefixed, checksummed event blocks after the same header.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// A concrete `.ddt` format version a writer can target.
///
/// Readers sniff the version from the fixed-width header field; writers
/// pick one explicitly ([`TraceWriter::with_version`]) or default to the
/// newest ([`FormatVersion::V2`]).
///
/// [`TraceWriter::with_version`]: crate::TraceWriter::with_version
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FormatVersion {
    /// Version 1: header followed by a flat tagged record stream to EOF.
    V1,
    /// Version 2: header followed by length-prefixed event blocks, each
    /// framed as varint event count + varint byte length + 8-byte
    /// little-endian FNV-1a checksum + payload.
    #[default]
    V2,
}

impl FormatVersion {
    /// The on-disk version number.
    pub fn number(self) -> u32 {
        match self {
            FormatVersion::V1 => 1,
            FormatVersion::V2 => 2,
        }
    }

    /// Maps an on-disk version number back to the enum, when supported.
    pub fn from_number(n: u32) -> Option<FormatVersion> {
        match n {
            1 => Some(FormatVersion::V1),
            2 => Some(FormatVersion::V2),
            _ => None,
        }
    }
}

/// Fingerprinted trace identity, stored in the header.
///
/// The fingerprint is an opaque 64-bit hash of whatever identifies the
/// recorded program and configuration to the producer (benchmark name,
/// scale, seed, mode, ...). Consumers treat it as identity: two traces
/// with equal fingerprints came from the same recording setup, and the
/// harness folds it into job fingerprints so `--resume` refuses
/// checkpoints recorded against a different corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Producer tag: `"sim"` for simulator runs, `"native"` for the
    /// in-process monitor, `"conform"` for fuzzer specs.
    pub source: String,
    /// Human-readable program identity (benchmark or spec label).
    pub label: String,
    /// Seed the recorded interleaving was produced under.
    pub seed: u64,
    /// Program/config identity hash (see type docs).
    pub fingerprint: u64,
}

/// One record in the event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// A scheduler event: thread lifecycle, barrier release, or an
    /// executed operation (read/write/lock/fork/join/barrier/...).
    Exec(TraceEvent),
    /// A HITM-indicator sample the PMU raised during the recorded run:
    /// which core's counter fired, the cache line involved, and the
    /// sampling skid in effect.
    Hitm {
        /// Dense index of the core whose counter overflowed.
        core: u32,
        /// Cache-line address of the access that raised the event.
        line: u64,
        /// Configured sampling skid, in operations.
        skid: u32,
    },
}

/// What went wrong while decoding (see [`TraceError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceErrorKind {
    /// Underlying I/O failure.
    Io(String),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is outside
    /// [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`].
    UnsupportedVersion {
        /// Version number the file declares.
        found: u32,
    },
    /// A version-2 event block failed its frame invariants: the payload
    /// checksum did not match, or the decoded event count disagreed with
    /// the frame's declared count. The offset is the start of the
    /// offending block's frame.
    BadBlock(&'static str),
    /// Input ended in the middle of a header field or record.
    Truncated,
    /// A varint was overlong or overflowed 64 bits.
    BadVarint,
    /// An unknown record tag byte.
    BadTag(u8),
    /// A header string was not valid UTF-8.
    BadString,
    /// A decoded field was out of range for its in-memory type.
    FieldRange(&'static str),
    /// A thread finished twice in the event stream (see
    /// [`validate_exec`]). For this kind, [`TraceError::offset`] is the
    /// *record index* of the second finish, not a byte offset: the
    /// stream decoded fine; its content is inconsistent.
    DuplicateThreadFinished {
        /// Thread id that finished more than once.
        tid: u32,
    },
}

/// A decoding failure, carrying the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// Byte offset into the input at which decoding failed.
    pub offset: u64,
    /// The failure itself.
    pub kind: TraceErrorKind,
}

impl TraceError {
    pub(crate) fn new(offset: u64, kind: TraceErrorKind) -> TraceError {
        TraceError { offset, kind }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TraceErrorKind::Io(e) => write!(f, "{e} at byte offset {}", self.offset),
            TraceErrorKind::BadMagic => {
                write!(f, "not a .ddt trace (bad magic at byte offset 0)")
            }
            TraceErrorKind::UnsupportedVersion { found } => write!(
                f,
                "unsupported trace format version: found v{found}, supports v{MIN_FORMAT_VERSION}\u{2013}v{FORMAT_VERSION}"
            ),
            TraceErrorKind::BadBlock(what) => write!(
                f,
                "bad event block ({what}) at byte offset {}",
                self.offset
            ),
            TraceErrorKind::Truncated => {
                write!(f, "truncated trace: input ends at byte offset {}", self.offset)
            }
            TraceErrorKind::BadVarint => {
                write!(f, "malformed varint at byte offset {}", self.offset)
            }
            TraceErrorKind::BadTag(tag) => write!(
                f,
                "unknown record tag 0x{tag:02x} at byte offset {}",
                self.offset
            ),
            TraceErrorKind::BadString => {
                write!(f, "invalid UTF-8 string at byte offset {}", self.offset)
            }
            TraceErrorKind::FieldRange(field) => write!(
                f,
                "field `{field}` out of range at byte offset {}",
                self.offset
            ),
            TraceErrorKind::DuplicateThreadFinished { tid } => write!(
                f,
                "thread {tid} finished twice (second ThreadFinished at record index {})",
                self.offset
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// Validates the execution content of a decoded record stream before it
/// is replayed.
///
/// A duplicate `ThreadFinished` re-runs the finish edge in a
/// happens-before replayer and can silently change its verdicts, so
/// ingestion rejects such traces up front with a positioned error (the
/// offset is the record index of the offending event) rather than
/// misdetecting. A run recorded by correct tooling never produces one;
/// hand-built or corrupted traces can.
pub fn validate_exec(records: &[TraceRecord]) -> Result<(), TraceError> {
    let mut finished: Vec<u32> = Vec::new();
    for (index, record) in records.iter().enumerate() {
        if let TraceRecord::Exec(TraceEvent::ThreadFinished { tid }) = record {
            if finished.contains(&tid.0) {
                return Err(TraceError::new(
                    index as u64,
                    TraceErrorKind::DuplicateThreadFinished { tid: tid.0 },
                ));
            }
            finished.push(tid.0);
        }
    }
    Ok(())
}

/// Record tag bytes (version 1). One tag per event shape so every field
/// after the tag is a plain varint.
pub(crate) mod tag {
    pub const THREAD_STARTED: u8 = 0x00;
    pub const THREAD_FINISHED: u8 = 0x01;
    pub const BARRIER_RELEASED: u8 = 0x02;
    pub const OP_READ: u8 = 0x03;
    pub const OP_WRITE: u8 = 0x04;
    pub const OP_ATOMIC_RMW: u8 = 0x05;
    pub const OP_LOCK: u8 = 0x06;
    pub const OP_UNLOCK: u8 = 0x07;
    pub const OP_BARRIER: u8 = 0x08;
    pub const OP_FORK: u8 = 0x09;
    pub const OP_JOIN: u8 = 0x0a;
    pub const OP_POST: u8 = 0x0b;
    pub const OP_WAIT_SEM: u8 = 0x0c;
    pub const OP_COMPUTE: u8 = 0x0d;
    pub const HITM: u8 = 0x0e;
}

/// Extracts the execution events from a record stream as a replayable
/// [`Trace`], dropping HITM samples (which are PMU observations, not
/// schedule constraints).
pub fn exec_trace(records: &[TraceRecord]) -> Trace {
    records
        .iter()
        .filter_map(|r| match r {
            TraceRecord::Exec(e) => Some(e.clone()),
            TraceRecord::Hitm { .. } => None,
        })
        .collect()
}

/// FNV-1a 64-bit hash, for producers building header fingerprints.
///
/// Same parameters as the harness checkpoint fingerprints, duplicated
/// here so the format crate stays at the bottom of the dependency graph.
pub fn fingerprint64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrace_program::ThreadId;

    fn started(tid: u32) -> TraceRecord {
        TraceRecord::Exec(TraceEvent::ThreadStarted {
            tid: ThreadId(tid),
            parent: (tid > 0).then_some(ThreadId(0)),
        })
    }

    fn finished(tid: u32) -> TraceRecord {
        TraceRecord::Exec(TraceEvent::ThreadFinished { tid: ThreadId(tid) })
    }

    #[test]
    fn validate_exec_accepts_single_finishes() {
        let records = [started(0), started(1), finished(1), finished(0)];
        assert!(validate_exec(&records).is_ok());
        assert!(validate_exec(&[]).is_ok());
    }

    #[test]
    fn validate_exec_rejects_duplicate_thread_finished() {
        let records = [started(0), started(1), finished(1), finished(1)];
        let err = validate_exec(&records).unwrap_err();
        assert_eq!(err.offset, 3, "offset is the record index of the dup");
        assert_eq!(err.kind, TraceErrorKind::DuplicateThreadFinished { tid: 1 });
        let text = err.to_string();
        assert!(text.contains("thread 1 finished twice"), "{text}");
        assert!(text.contains("record index 3"), "{text}");
    }
}
