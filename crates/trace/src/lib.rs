//! # ddrace-trace — the `.ddt` binary trace format
//!
//! A compact, versioned, varint-encoded container for one recorded
//! execution: the per-thread-interleaved event stream (reads, writes,
//! lock operations, fork/join, barriers, semaphores, compute) plus the
//! HITM-indicator samples the PMU raised while the run was live, behind
//! a fingerprinted header carrying program/config identity.
//!
//! The format exists to decouple *recording* from *analysis*: a cheap
//! run (simulator or [`ddrace-native`] monitor) emits a `.ddt` file
//! once, and any number of detector configurations replay it offline —
//! the record/replay shape Ronsse & De Bosschere use for production
//! race detection, on the harness worker pool.
//!
//! ## Layout
//!
//! ```text
//! magic    8 bytes   "DDTRACE\0"
//! version  4 bytes   u32 little-endian (always fixed-width so future
//!                    readers can name the version they found)
//! header   varints   seed, fingerprint, source string, label string,
//!                    reserved-pair count (0 in version 1)
//! events   tagged    one tag byte + varint fields per record, until EOF
//! ```
//!
//! All integers outside the version field are LEB128 varints
//! ([`varint`]); strings are varint-length-prefixed UTF-8. Truncated or
//! corrupt input surfaces as a [`TraceError`] carrying the byte offset
//! where decoding failed — never a panic.
//!
//! ## Versioning policy
//!
//! [`FORMAT_VERSION`] bumps on any change to the header layout or the
//! event tag set. Readers reject other versions with
//! [`TraceErrorKind::UnsupportedVersion`]; there is no in-place
//! migration, old traces are re-recorded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod format;
mod reader;
pub mod varint;
mod writer;

pub use format::{
    exec_trace, fingerprint64, validate_exec, TraceError, TraceErrorKind, TraceMeta, TraceRecord,
    FORMAT_VERSION, MAGIC,
};
pub use reader::{decode_trace, read_meta, read_trace_file, TraceReader};
pub use writer::{encode_trace, write_trace_file, TraceWriter};
