//! # ddrace-trace — the `.ddt` binary trace format
//!
//! A compact, versioned, varint-encoded container for one recorded
//! execution: the per-thread-interleaved event stream (reads, writes,
//! lock operations, fork/join, barriers, semaphores, compute) plus the
//! HITM-indicator samples the PMU raised while the run was live, behind
//! a fingerprinted header carrying program/config identity.
//!
//! The format exists to decouple *recording* from *analysis*: a cheap
//! run (simulator or [`ddrace-native`] monitor) emits a `.ddt` file
//! once, and any number of detector configurations replay it offline —
//! the record/replay shape Ronsse & De Bosschere use for production
//! race detection, on the harness worker pool.
//!
//! ## Layout
//!
//! ```text
//! magic    8 bytes   "DDTRACE\0"
//! version  4 bytes   u32 little-endian (always fixed-width so future
//!                    readers can name the version they found)
//! header   varints   seed, fingerprint, source string, label string,
//!                    reserved-pair count (0 so far)
//! events   version 1: one tag byte + varint fields per record, to EOF
//!          version 2: length-prefixed blocks, each framed as
//!                     varint event count + varint payload length +
//!                     8-byte LE FNV-1a payload checksum + payload
//!                     (the same tagged records, concatenated), to EOF
//! ```
//!
//! All integers outside the version field and block checksums are
//! LEB128 varints ([`varint`]); strings are varint-length-prefixed
//! UTF-8. Truncated or corrupt input surfaces as a [`TraceError`]
//! carrying the byte offset where decoding failed — never a panic; in a
//! version-2 file checksum and count mismatches are reported at the
//! offending block's frame.
//!
//! ## Versioning policy
//!
//! [`FORMAT_VERSION`] bumps on any change to the header layout, the
//! event tag set, or the stream framing. Readers accept the full range
//! [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`] and reject anything
//! outside it with [`TraceErrorKind::UnsupportedVersion`]; there is no
//! in-place migration, old traces stay readable or are re-recorded.
//! Writers default to the newest version; [`TraceWriter::with_version`]
//! targets an older one for byte-compatible output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod format;
mod reader;
mod slab;
pub mod varint;
mod writer;

pub use format::{
    exec_trace, fingerprint64, validate_exec, FormatVersion, TraceError, TraceErrorKind, TraceMeta,
    TraceRecord, FORMAT_VERSION, MAGIC, MIN_FORMAT_VERSION,
};
pub use reader::{
    decode_trace, open_trace_file, read_meta, read_trace_file, SlabReader, TraceReader,
};
pub use slab::{decode_block_into, EventSlab, SlabRecord};
pub use writer::{
    encode_records, encode_trace, encode_trace_with, write_trace_file, write_trace_file_with,
    TraceWriter, BLOCK_TARGET_BYTES,
};
