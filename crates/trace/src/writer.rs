//! Encoding: [`TraceWriter`] plus whole-buffer/file conveniences.

use crate::format::{tag, TraceMeta, TraceRecord, FORMAT_VERSION, MAGIC};
use crate::varint;
use ddrace_program::{Op, TraceEvent};
use std::io::{self, Write};
use std::path::Path;

/// Streaming `.ddt` encoder over any [`Write`] sink.
///
/// The header is written on construction; each [`TraceWriter::write`]
/// appends one record. Records are buffered per call into a small
/// scratch vector, so writers layered over unbuffered sinks (files)
/// still see one `write_all` per record — wrap in a `BufWriter` for
/// high-volume recording.
pub struct TraceWriter<W: Write> {
    sink: W,
    scratch: Vec<u8>,
    records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the magic, version, and header for `meta`, returning the
    /// ready-to-append writer.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn new(mut sink: W, meta: &TraceMeta) -> io::Result<TraceWriter<W>> {
        let mut head = Vec::with_capacity(64);
        head.extend_from_slice(&MAGIC);
        head.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        varint::encode(meta.seed, &mut head);
        varint::encode(meta.fingerprint, &mut head);
        encode_str(&meta.source, &mut head);
        encode_str(&meta.label, &mut head);
        // Reserved key/value pair count: always zero in version 1.
        varint::encode(0, &mut head);
        sink.write_all(&head)?;
        Ok(TraceWriter {
            sink,
            scratch: Vec::with_capacity(32),
            records: 0,
        })
    }

    /// Appends one record to the stream.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn write(&mut self, record: &TraceRecord) -> io::Result<()> {
        self.scratch.clear();
        encode_record(record, &mut self.scratch);
        self.sink.write_all(&self.scratch)?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    varint::encode(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

fn encode_record(record: &TraceRecord, out: &mut Vec<u8>) {
    match record {
        TraceRecord::Exec(event) => encode_event(event, out),
        TraceRecord::Hitm { core, line, skid } => {
            out.push(tag::HITM);
            varint::encode(u64::from(*core), out);
            varint::encode(*line, out);
            varint::encode(u64::from(*skid), out);
        }
    }
}

fn encode_event(event: &TraceEvent, out: &mut Vec<u8>) {
    match event {
        TraceEvent::ThreadStarted { tid, parent } => {
            out.push(tag::THREAD_STARTED);
            varint::encode(u64::from(tid.0), out);
            // parent is biased by one so "no parent" encodes as 0.
            varint::encode(parent.map_or(0, |p| u64::from(p.0) + 1), out);
        }
        TraceEvent::ThreadFinished { tid } => {
            out.push(tag::THREAD_FINISHED);
            varint::encode(u64::from(tid.0), out);
        }
        TraceEvent::BarrierReleased {
            barrier,
            participants,
        } => {
            out.push(tag::BARRIER_RELEASED);
            varint::encode(u64::from(barrier.0), out);
            varint::encode(participants.len() as u64, out);
            for tid in participants {
                varint::encode(u64::from(tid.0), out);
            }
        }
        TraceEvent::Op { tid, op } => {
            let t = u64::from(tid.0);
            match *op {
                Op::Read { addr } => {
                    out.push(tag::OP_READ);
                    varint::encode(t, out);
                    varint::encode(addr.0, out);
                }
                Op::Write { addr } => {
                    out.push(tag::OP_WRITE);
                    varint::encode(t, out);
                    varint::encode(addr.0, out);
                }
                Op::AtomicRmw { addr } => {
                    out.push(tag::OP_ATOMIC_RMW);
                    varint::encode(t, out);
                    varint::encode(addr.0, out);
                }
                Op::Lock { lock } => {
                    out.push(tag::OP_LOCK);
                    varint::encode(t, out);
                    varint::encode(u64::from(lock.0), out);
                }
                Op::Unlock { lock } => {
                    out.push(tag::OP_UNLOCK);
                    varint::encode(t, out);
                    varint::encode(u64::from(lock.0), out);
                }
                Op::Barrier {
                    barrier,
                    participants,
                } => {
                    out.push(tag::OP_BARRIER);
                    varint::encode(t, out);
                    varint::encode(u64::from(barrier.0), out);
                    varint::encode(u64::from(participants), out);
                }
                Op::Fork { child } => {
                    out.push(tag::OP_FORK);
                    varint::encode(t, out);
                    varint::encode(u64::from(child.0), out);
                }
                Op::Join { child } => {
                    out.push(tag::OP_JOIN);
                    varint::encode(t, out);
                    varint::encode(u64::from(child.0), out);
                }
                Op::Post { sem } => {
                    out.push(tag::OP_POST);
                    varint::encode(t, out);
                    varint::encode(u64::from(sem.0), out);
                }
                Op::WaitSem { sem } => {
                    out.push(tag::OP_WAIT_SEM);
                    varint::encode(t, out);
                    varint::encode(u64::from(sem.0), out);
                }
                Op::Compute { cycles } => {
                    out.push(tag::OP_COMPUTE);
                    varint::encode(t, out);
                    varint::encode(u64::from(cycles), out);
                }
            }
        }
    }
}

/// Encodes a whole trace into an in-memory buffer.
pub fn encode_trace(meta: &TraceMeta, records: &[TraceRecord]) -> Vec<u8> {
    let mut writer = TraceWriter::new(Vec::new(), meta).expect("Vec sink cannot fail");
    for record in records {
        writer.write(record).expect("Vec sink cannot fail");
    }
    writer.finish().expect("Vec sink cannot fail")
}

/// Writes a whole trace to `path` (buffered, created or truncated).
///
/// # Errors
///
/// Propagates file I/O errors.
pub fn write_trace_file(
    path: impl AsRef<Path>,
    meta: &TraceMeta,
    records: &[TraceRecord],
) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = TraceWriter::new(io::BufWriter::new(file), meta)?;
    for record in records {
        writer.write(record)?;
    }
    writer.finish()?.flush()
}
