//! Encoding: [`TraceWriter`] plus whole-buffer/file conveniences.

use crate::format::{fingerprint64, tag, FormatVersion, TraceMeta, TraceRecord, MAGIC};
use crate::varint;
use ddrace_program::{Op, TraceEvent};
use std::io::{self, Write};
use std::path::Path;

/// Block-size threshold for version-2 writers: a pending block is framed
/// and flushed once its payload reaches this many bytes. Big enough that
/// frame overhead (two varints + an 8-byte checksum) is noise and the
/// reader decodes long runs from one slice; small enough that a
/// double-buffered pipeline stays responsive.
pub const BLOCK_TARGET_BYTES: usize = 64 * 1024;

/// Streaming `.ddt` encoder over any [`Write`] sink.
///
/// The header is written on construction; each [`TraceWriter::write`]
/// appends one record. Version-2 writers (the default) batch records
/// into length-prefixed, checksummed blocks and flush a block to the
/// sink whenever its payload reaches [`BLOCK_TARGET_BYTES`] (plus a
/// trailing partial block on [`TraceWriter::finish`]), so the sink sees
/// large sequential writes. Version-1 writers emit the legacy flat
/// stream, one `write_all` per record — wrap in a `BufWriter` for
/// high-volume version-1 recording.
pub struct TraceWriter<W: Write> {
    sink: W,
    version: FormatVersion,
    /// Version 1: per-record scratch. Version 2: the pending block payload.
    buf: Vec<u8>,
    block_events: u64,
    records: u64,
    target: usize,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the magic, version, and header for `meta`, returning a
    /// ready-to-append writer targeting the newest format version.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn new(sink: W, meta: &TraceMeta) -> io::Result<TraceWriter<W>> {
        TraceWriter::with_version(sink, meta, FormatVersion::default())
    }

    /// [`TraceWriter::new`] targeting an explicit format version —
    /// version 1 for byte-compatible legacy output, version 2 for the
    /// block-framed stream.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn with_version(
        mut sink: W,
        meta: &TraceMeta,
        version: FormatVersion,
    ) -> io::Result<TraceWriter<W>> {
        let mut head = Vec::with_capacity(64);
        head.extend_from_slice(&MAGIC);
        head.extend_from_slice(&version.number().to_le_bytes());
        varint::encode(meta.seed, &mut head);
        varint::encode(meta.fingerprint, &mut head);
        encode_str(&meta.source, &mut head);
        encode_str(&meta.label, &mut head);
        // Reserved key/value pair count: always zero so far.
        varint::encode(0, &mut head);
        sink.write_all(&head)?;
        Ok(TraceWriter {
            sink,
            version,
            buf: Vec::with_capacity(match version {
                FormatVersion::V1 => 32,
                FormatVersion::V2 => BLOCK_TARGET_BYTES + 64,
            }),
            block_events: 0,
            records: 0,
            target: BLOCK_TARGET_BYTES,
        })
    }

    /// The format version this writer emits.
    pub fn version(&self) -> FormatVersion {
        self.version
    }

    /// Overrides the block-flush threshold (version 2 only; ignored for
    /// version-1 writers). Tiny targets force records to spread across
    /// many blocks — what the framing tests use to exercise block
    /// boundaries without megabyte fixtures.
    pub fn block_target(mut self, bytes: usize) -> Self {
        self.target = bytes.max(1);
        self
    }

    /// Appends one record to the stream.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn write(&mut self, record: &TraceRecord) -> io::Result<()> {
        match self.version {
            FormatVersion::V1 => {
                self.buf.clear();
                encode_record(record, &mut self.buf);
                self.sink.write_all(&self.buf)?;
            }
            FormatVersion::V2 => {
                encode_record(record, &mut self.buf);
                self.block_events += 1;
                if self.buf.len() >= self.target {
                    self.flush_block()?;
                }
            }
        }
        self.records += 1;
        Ok(())
    }

    /// Frames and writes the pending block: varint event count, varint
    /// payload length, 8-byte little-endian FNV-1a payload checksum,
    /// then the payload itself.
    fn flush_block(&mut self) -> io::Result<()> {
        if self.block_events == 0 {
            return Ok(());
        }
        let mut frame = Vec::with_capacity(2 * varint::MAX_LEN + 8);
        varint::encode(self.block_events, &mut frame);
        varint::encode(self.buf.len() as u64, &mut frame);
        frame.extend_from_slice(&fingerprint64(&self.buf).to_le_bytes());
        self.sink.write_all(&frame)?;
        self.sink.write_all(&self.buf)?;
        self.buf.clear();
        self.block_events = 0;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes any pending block and the sink, returning the sink.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn finish(mut self) -> io::Result<W> {
        if self.version == FormatVersion::V2 {
            self.flush_block()?;
        }
        self.sink.flush()?;
        Ok(self.sink)
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    varint::encode(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

/// Encodes a flat run of records (no header, no framing) — the shared
/// payload encoding both format versions use, exposed for tests and
/// tooling that hand-build block payloads.
pub fn encode_records(records: &[TraceRecord], out: &mut Vec<u8>) {
    for record in records {
        encode_record(record, out);
    }
}

fn encode_record(record: &TraceRecord, out: &mut Vec<u8>) {
    match record {
        TraceRecord::Exec(event) => encode_event(event, out),
        TraceRecord::Hitm { core, line, skid } => {
            out.push(tag::HITM);
            varint::encode(u64::from(*core), out);
            varint::encode(*line, out);
            varint::encode(u64::from(*skid), out);
        }
    }
}

fn encode_event(event: &TraceEvent, out: &mut Vec<u8>) {
    match event {
        TraceEvent::ThreadStarted { tid, parent } => {
            out.push(tag::THREAD_STARTED);
            varint::encode(u64::from(tid.0), out);
            // parent is biased by one so "no parent" encodes as 0.
            varint::encode(parent.map_or(0, |p| u64::from(p.0) + 1), out);
        }
        TraceEvent::ThreadFinished { tid } => {
            out.push(tag::THREAD_FINISHED);
            varint::encode(u64::from(tid.0), out);
        }
        TraceEvent::BarrierReleased {
            barrier,
            participants,
        } => {
            out.push(tag::BARRIER_RELEASED);
            varint::encode(u64::from(barrier.0), out);
            varint::encode(participants.len() as u64, out);
            for tid in participants {
                varint::encode(u64::from(tid.0), out);
            }
        }
        TraceEvent::Op { tid, op } => {
            let t = u64::from(tid.0);
            match *op {
                Op::Read { addr } => {
                    out.push(tag::OP_READ);
                    varint::encode(t, out);
                    varint::encode(addr.0, out);
                }
                Op::Write { addr } => {
                    out.push(tag::OP_WRITE);
                    varint::encode(t, out);
                    varint::encode(addr.0, out);
                }
                Op::AtomicRmw { addr } => {
                    out.push(tag::OP_ATOMIC_RMW);
                    varint::encode(t, out);
                    varint::encode(addr.0, out);
                }
                Op::Lock { lock } => {
                    out.push(tag::OP_LOCK);
                    varint::encode(t, out);
                    varint::encode(u64::from(lock.0), out);
                }
                Op::Unlock { lock } => {
                    out.push(tag::OP_UNLOCK);
                    varint::encode(t, out);
                    varint::encode(u64::from(lock.0), out);
                }
                Op::Barrier {
                    barrier,
                    participants,
                } => {
                    out.push(tag::OP_BARRIER);
                    varint::encode(t, out);
                    varint::encode(u64::from(barrier.0), out);
                    varint::encode(u64::from(participants), out);
                }
                Op::Fork { child } => {
                    out.push(tag::OP_FORK);
                    varint::encode(t, out);
                    varint::encode(u64::from(child.0), out);
                }
                Op::Join { child } => {
                    out.push(tag::OP_JOIN);
                    varint::encode(t, out);
                    varint::encode(u64::from(child.0), out);
                }
                Op::Post { sem } => {
                    out.push(tag::OP_POST);
                    varint::encode(t, out);
                    varint::encode(u64::from(sem.0), out);
                }
                Op::WaitSem { sem } => {
                    out.push(tag::OP_WAIT_SEM);
                    varint::encode(t, out);
                    varint::encode(u64::from(sem.0), out);
                }
                Op::Compute { cycles } => {
                    out.push(tag::OP_COMPUTE);
                    varint::encode(t, out);
                    varint::encode(u64::from(cycles), out);
                }
            }
        }
    }
}

/// Encodes a whole trace into an in-memory buffer at the newest format
/// version.
pub fn encode_trace(meta: &TraceMeta, records: &[TraceRecord]) -> Vec<u8> {
    encode_trace_with(meta, records, FormatVersion::default())
}

/// [`encode_trace`] targeting an explicit format version.
pub fn encode_trace_with(
    meta: &TraceMeta,
    records: &[TraceRecord],
    version: FormatVersion,
) -> Vec<u8> {
    let mut writer =
        TraceWriter::with_version(Vec::new(), meta, version).expect("Vec sink cannot fail");
    for record in records {
        writer.write(record).expect("Vec sink cannot fail");
    }
    writer.finish().expect("Vec sink cannot fail")
}

/// Writes a whole trace to `path` (buffered, created or truncated) at
/// the newest format version.
///
/// # Errors
///
/// Propagates file I/O errors.
pub fn write_trace_file(
    path: impl AsRef<Path>,
    meta: &TraceMeta,
    records: &[TraceRecord],
) -> io::Result<()> {
    write_trace_file_with(path, meta, records, FormatVersion::default())
}

/// [`write_trace_file`] targeting an explicit format version.
///
/// # Errors
///
/// Propagates file I/O errors.
pub fn write_trace_file_with(
    path: impl AsRef<Path>,
    meta: &TraceMeta,
    records: &[TraceRecord],
    version: FormatVersion,
) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = TraceWriter::with_version(io::BufWriter::new(file), meta, version)?;
    for record in records {
        writer.write(record)?;
    }
    writer.finish()?.flush()
}
