//! LEB128 variable-length integer encoding.
//!
//! Unsigned base-128: seven payload bits per byte, high bit set on every
//! byte except the last. Small values (the overwhelming majority of
//! thread ids, lock ids, and deltas in a trace) cost one byte; the full
//! `u64` range is representable in at most ten.

/// Maximum encoded length of a `u64` varint.
pub const MAX_LEN: usize = 10;

/// Appends the LEB128 encoding of `value` to `out`.
pub fn encode(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded length of `value` in bytes, without materialising it.
pub fn encoded_len(value: u64) -> usize {
    (64 - (value | 1).leading_zeros() as usize).div_ceil(7)
}

/// Decodes one varint from the front of `input`.
///
/// Returns the value and the number of bytes consumed, or `None` when
/// `input` is truncated mid-varint or the encoding overflows 64 bits
/// (more than [`MAX_LEN`] bytes, or set bits beyond bit 63).
pub fn decode(input: &[u8]) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    for (i, &byte) in input.iter().enumerate().take(MAX_LEN) {
        let payload = u64::from(byte & 0x7f);
        // The tenth byte may only contribute bit 63.
        if i == MAX_LEN - 1 && payload > 1 {
            return None;
        }
        value |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) -> usize {
        let mut buf = Vec::new();
        encode(v, &mut buf);
        assert_eq!(buf.len(), encoded_len(v), "length mismatch for {v}");
        let (back, used) = decode(&buf).expect("decodes");
        assert_eq!(back, v);
        assert_eq!(used, buf.len());
        buf.len()
    }

    #[test]
    fn edge_values() {
        assert_eq!(roundtrip(0), 1);
        assert_eq!(roundtrip(1), 1);
        assert_eq!(roundtrip(127), 1);
        assert_eq!(roundtrip(128), 2);
        assert_eq!(roundtrip(u64::from(u32::MAX)), 5);
        assert_eq!(roundtrip(u64::MAX), 10);
    }

    #[test]
    fn truncated_input_is_none() {
        let mut buf = Vec::new();
        encode(u64::MAX, &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(decode(&buf[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn overlong_encoding_is_none() {
        // Eleven continuation bytes can never terminate within MAX_LEN.
        assert_eq!(decode(&[0x80; 11]), None);
        // Tenth byte carrying more than bit 63 overflows u64.
        let mut buf = vec![0x80; 9];
        buf.push(0x02);
        assert_eq!(decode(&buf), None);
    }
}
