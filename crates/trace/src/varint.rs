//! LEB128 variable-length integer encoding.
//!
//! Unsigned base-128: seven payload bits per byte, high bit set on every
//! byte except the last. Small values (the overwhelming majority of
//! thread ids, lock ids, and deltas in a trace) cost one byte; the full
//! `u64` range is representable in at most ten.

/// Maximum encoded length of a `u64` varint.
pub const MAX_LEN: usize = 10;

/// Appends the LEB128 encoding of `value` to `out`.
pub fn encode(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded length of `value` in bytes, without materialising it.
pub fn encoded_len(value: u64) -> usize {
    (64 - (value | 1).leading_zeros() as usize).div_ceil(7)
}

/// Decodes one varint from the front of `input`.
///
/// Returns the value and the number of bytes consumed, or `None` when
/// `input` is truncated mid-varint or the encoding overflows 64 bits
/// (more than [`MAX_LEN`] bytes, or set bits beyond bit 63).
pub fn decode(input: &[u8]) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    for (i, &byte) in input.iter().enumerate().take(MAX_LEN) {
        let payload = u64::from(byte & 0x7f);
        // The tenth byte may only contribute bit 63.
        if i == MAX_LEN - 1 && payload > 1 {
            return None;
        }
        value |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
    }
    None
}

/// Decodes one varint from `buf` at `*pos`, advancing the cursor.
///
/// This is the block-decode hot path. Single-byte encodings — the
/// overwhelming majority of tags, thread ids, and lock ids in a trace —
/// are one load and one branch. Encodings of two to eight bytes (every
/// address and cycle count a real trace carries) go through a
/// word-at-a-time path: one unaligned 8-byte load, the terminator found
/// with a continuation-bit mask, and the 7-bit groups compressed
/// branch-free. Only nine/ten-byte encodings and loads that would cross
/// the end of the buffer fall back to the byte loop in [`decode`].
///
/// On failure (truncated or overlong input) `*pos` is left unchanged so
/// the caller can report the offset where the bad varint started.
#[inline]
pub fn decode_slice(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let rest = buf.get(*pos..)?;
    let &first = rest.first()?;
    if first & 0x80 == 0 {
        *pos += 1;
        return Some(u64::from(first));
    }
    if let Some(window) = rest.get(..8) {
        let word = u64::from_le_bytes(window.try_into().expect("8-byte window"));
        let terminators = !word & 0x8080_8080_8080_8080;
        if terminators != 0 {
            let len = terminators.trailing_zeros() as usize / 8 + 1;
            let keep = if len == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * len)) - 1
            };
            let word = word & keep;
            // Byte i holds value bits 7i..7i+7 at bit position 8i;
            // shifting right by i realigns them, and the group mask
            // drops both the continuation bit and the neighbour's bits.
            let value = (word & 0x7f)
                | ((word >> 1) & (0x7f << 7))
                | ((word >> 2) & (0x7f << 14))
                | ((word >> 3) & (0x7f << 21))
                | ((word >> 4) & (0x7f << 28))
                | ((word >> 5) & (0x7f << 35))
                | ((word >> 6) & (0x7f << 42))
                | ((word >> 7) & (0x7f << 49));
            *pos += len;
            return Some(value);
        }
    }
    let (value, used) = decode(rest)?;
    *pos += used;
    Some(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) -> usize {
        let mut buf = Vec::new();
        encode(v, &mut buf);
        assert_eq!(buf.len(), encoded_len(v), "length mismatch for {v}");
        let (back, used) = decode(&buf).expect("decodes");
        assert_eq!(back, v);
        assert_eq!(used, buf.len());
        buf.len()
    }

    #[test]
    fn edge_values() {
        assert_eq!(roundtrip(0), 1);
        assert_eq!(roundtrip(1), 1);
        assert_eq!(roundtrip(127), 1);
        assert_eq!(roundtrip(128), 2);
        assert_eq!(roundtrip(u64::from(u32::MAX)), 5);
        assert_eq!(roundtrip(u64::MAX), 10);
    }

    #[test]
    fn truncated_input_is_none() {
        let mut buf = Vec::new();
        encode(u64::MAX, &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(decode(&buf[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn overlong_encoding_is_none() {
        // Eleven continuation bytes can never terminate within MAX_LEN.
        assert_eq!(decode(&[0x80; 11]), None);
        // Tenth byte carrying more than bit 63 overflows u64.
        let mut buf = vec![0x80; 9];
        buf.push(0x02);
        assert_eq!(decode(&buf), None);
    }

    #[test]
    fn decode_slice_matches_decode() {
        for v in [
            0u64,
            1,
            127,
            128,
            129,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = vec![0xffu8; 3]; // leading garbage the cursor skips
            encode(v, &mut buf);
            let mut pos = 3;
            assert_eq!(decode_slice(&buf, &mut pos), Some(v));
            assert_eq!(pos, 3 + encoded_len(v), "cursor advance for {v}");
        }
    }

    #[test]
    fn decode_slice_failure_leaves_cursor() {
        let mut buf = Vec::new();
        encode(u64::MAX, &mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(decode_slice(&buf[..cut], &mut pos), None, "cut at {cut}");
            assert_eq!(pos, 0, "cursor must not move on failure");
        }
        // Cursor past the end of the buffer.
        let mut pos = 5;
        assert_eq!(decode_slice(&[0x01], &mut pos), None);
        assert_eq!(pos, 5);
        // Overlong input fails through the fallback too.
        let mut pos = 0;
        assert_eq!(decode_slice(&[0x80; 11], &mut pos), None);
        assert_eq!(pos, 0);
    }
}
