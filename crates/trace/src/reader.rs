//! Decoding: streaming [`TraceReader`] plus whole-buffer/file helpers.

use crate::format::{
    tag, TraceError, TraceErrorKind, TraceMeta, TraceRecord, FORMAT_VERSION, MAGIC,
};
use crate::varint;
use ddrace_program::{Addr, BarrierId, LockId, Op, SemId, ThreadId, TraceEvent};
use std::io::Read;
use std::path::Path;

/// Streaming `.ddt` decoder over any [`Read`] source.
///
/// Construction parses and validates the header; the reader then
/// iterates records one at a time without materialising the stream,
/// so corpora larger than memory ingest fine. Every failure carries
/// the byte offset where decoding stopped (see [`TraceError`]).
///
/// Reads are byte-at-a-time against the source — hand it a
/// `BufReader` (or a slice) rather than a bare `File`.
pub struct TraceReader<R: Read> {
    input: R,
    offset: u64,
    meta: TraceMeta,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Parses the header from `input` and returns the reader.
    ///
    /// # Errors
    ///
    /// [`TraceErrorKind::BadMagic`] / [`TraceErrorKind::UnsupportedVersion`]
    /// for foreign or future files; [`TraceErrorKind::Truncated`] and
    /// friends for corrupt headers.
    pub fn new(input: R) -> Result<TraceReader<R>, TraceError> {
        let mut reader = TraceReader {
            input,
            offset: 0,
            meta: TraceMeta {
                source: String::new(),
                label: String::new(),
                seed: 0,
                fingerprint: 0,
            },
            done: false,
        };
        reader.read_header()?;
        Ok(reader)
    }

    /// The identity header this trace was recorded with.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Bytes consumed so far (header included).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    fn read_header(&mut self) -> Result<(), TraceError> {
        let mut magic = [0u8; 8];
        self.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(TraceError::new(0, TraceErrorKind::BadMagic));
        }
        let mut version = [0u8; 4];
        self.read_exact(&mut version)?;
        let version = u32::from_le_bytes(version);
        if version != FORMAT_VERSION {
            return Err(TraceError::new(
                8,
                TraceErrorKind::UnsupportedVersion { found: version },
            ));
        }
        self.meta.seed = self.read_varint()?;
        self.meta.fingerprint = self.read_varint()?;
        self.meta.source = self.read_string()?;
        self.meta.label = self.read_string()?;
        // Reserved key/value pairs: ignored by version-1 readers so a
        // same-version writer may annotate without breaking anyone.
        let reserved = self.read_varint()?;
        for _ in 0..reserved {
            self.read_string()?;
            self.read_string()?;
        }
        Ok(())
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), TraceError> {
        for slot in buf.iter_mut() {
            *slot = self.need_byte()?;
        }
        Ok(())
    }

    /// One byte, or `None` at a clean EOF.
    fn next_byte(&mut self) -> Result<Option<u8>, TraceError> {
        let mut byte = [0u8; 1];
        loop {
            match self.input.read(&mut byte) {
                Ok(0) => return Ok(None),
                Ok(_) => {
                    self.offset += 1;
                    return Ok(Some(byte[0]));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(TraceError::new(
                        self.offset,
                        TraceErrorKind::Io(e.to_string()),
                    ))
                }
            }
        }
    }

    /// One byte, where EOF means the input was truncated.
    fn need_byte(&mut self) -> Result<u8, TraceError> {
        self.next_byte()?
            .ok_or_else(|| TraceError::new(self.offset, TraceErrorKind::Truncated))
    }

    fn read_varint(&mut self) -> Result<u64, TraceError> {
        let start = self.offset;
        let mut buf = [0u8; varint::MAX_LEN];
        for i in 0..varint::MAX_LEN {
            buf[i] = self.need_byte()?;
            if buf[i] & 0x80 == 0 {
                return varint::decode(&buf[..=i])
                    .map(|(v, _)| v)
                    .ok_or_else(|| TraceError::new(start, TraceErrorKind::BadVarint));
            }
        }
        Err(TraceError::new(start, TraceErrorKind::BadVarint))
    }

    fn read_u32(&mut self, field: &'static str) -> Result<u32, TraceError> {
        let start = self.offset;
        let value = self.read_varint()?;
        u32::try_from(value).map_err(|_| TraceError::new(start, TraceErrorKind::FieldRange(field)))
    }

    fn read_string(&mut self) -> Result<String, TraceError> {
        let len = self.read_varint()?;
        let start = self.offset;
        let len = usize::try_from(len)
            .map_err(|_| TraceError::new(start, TraceErrorKind::FieldRange("string length")))?;
        let mut bytes = vec![0u8; len];
        self.read_exact(&mut bytes)?;
        String::from_utf8(bytes).map_err(|_| TraceError::new(start, TraceErrorKind::BadString))
    }

    fn read_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        let Some(tag_byte) = self.next_byte()? else {
            return Ok(None); // clean end of stream
        };
        let tag_offset = self.offset - 1;
        let record = match tag_byte {
            tag::THREAD_STARTED => {
                let tid = ThreadId(self.read_u32("tid")?);
                let parent = match self.read_varint()? {
                    0 => None,
                    biased => Some(ThreadId(u32::try_from(biased - 1).map_err(|_| {
                        TraceError::new(tag_offset, TraceErrorKind::FieldRange("parent"))
                    })?)),
                };
                TraceRecord::Exec(TraceEvent::ThreadStarted { tid, parent })
            }
            tag::THREAD_FINISHED => TraceRecord::Exec(TraceEvent::ThreadFinished {
                tid: ThreadId(self.read_u32("tid")?),
            }),
            tag::BARRIER_RELEASED => {
                let barrier = BarrierId(self.read_u32("barrier")?);
                let count = self.read_varint()?;
                let mut participants = Vec::with_capacity(count.min(1024) as usize);
                for _ in 0..count {
                    participants.push(ThreadId(self.read_u32("participant")?));
                }
                TraceRecord::Exec(TraceEvent::BarrierReleased {
                    barrier,
                    participants,
                })
            }
            tag::HITM => TraceRecord::Hitm {
                core: self.read_u32("core")?,
                line: self.read_varint()?,
                skid: self.read_u32("skid")?,
            },
            op_tag @ tag::OP_READ..=tag::OP_COMPUTE => {
                let tid = ThreadId(self.read_u32("tid")?);
                let op = match op_tag {
                    tag::OP_READ => Op::Read {
                        addr: Addr(self.read_varint()?),
                    },
                    tag::OP_WRITE => Op::Write {
                        addr: Addr(self.read_varint()?),
                    },
                    tag::OP_ATOMIC_RMW => Op::AtomicRmw {
                        addr: Addr(self.read_varint()?),
                    },
                    tag::OP_LOCK => Op::Lock {
                        lock: LockId(self.read_u32("lock")?),
                    },
                    tag::OP_UNLOCK => Op::Unlock {
                        lock: LockId(self.read_u32("lock")?),
                    },
                    tag::OP_BARRIER => Op::Barrier {
                        barrier: BarrierId(self.read_u32("barrier")?),
                        participants: self.read_u32("participants")?,
                    },
                    tag::OP_FORK => Op::Fork {
                        child: ThreadId(self.read_u32("child")?),
                    },
                    tag::OP_JOIN => Op::Join {
                        child: ThreadId(self.read_u32("child")?),
                    },
                    tag::OP_POST => Op::Post {
                        sem: SemId(self.read_u32("sem")?),
                    },
                    tag::OP_WAIT_SEM => Op::WaitSem {
                        sem: SemId(self.read_u32("sem")?),
                    },
                    _ => Op::Compute {
                        cycles: self.read_u32("cycles")?,
                    },
                };
                TraceRecord::Exec(TraceEvent::Op { tid, op })
            }
            unknown => return Err(TraceError::new(tag_offset, TraceErrorKind::BadTag(unknown))),
        };
        Ok(Some(record))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.read_record() {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Decodes a whole in-memory buffer into its header and record list.
///
/// # Errors
///
/// Any [`TraceError`] the streaming reader would produce.
pub fn decode_trace(bytes: &[u8]) -> Result<(TraceMeta, Vec<TraceRecord>), TraceError> {
    let reader = TraceReader::new(bytes)?;
    let meta = reader.meta().clone();
    let records = reader.collect::<Result<Vec<_>, _>>()?;
    Ok((meta, records))
}

/// Reads a whole trace file.
///
/// # Errors
///
/// I/O failures surface as [`TraceErrorKind::Io`]; decode failures as
/// the corresponding [`TraceError`].
pub fn read_trace_file(
    path: impl AsRef<Path>,
) -> Result<(TraceMeta, Vec<TraceRecord>), TraceError> {
    let file = open(path.as_ref())?;
    let reader = TraceReader::new(std::io::BufReader::new(file))?;
    let meta = reader.meta().clone();
    let records = reader.collect::<Result<Vec<_>, _>>()?;
    Ok((meta, records))
}

/// Reads only the header of a trace file — what ingest needs to build
/// job fingerprints for a corpus without touching the event streams.
///
/// # Errors
///
/// Same as [`read_trace_file`], for the header portion.
pub fn read_meta(path: impl AsRef<Path>) -> Result<TraceMeta, TraceError> {
    let file = open(path.as_ref())?;
    Ok(TraceReader::new(std::io::BufReader::new(file))?
        .meta()
        .clone())
}

fn open(path: &Path) -> Result<std::fs::File, TraceError> {
    std::fs::File::open(path).map_err(|e| {
        TraceError::new(
            0,
            TraceErrorKind::Io(format!("cannot open {}: {e}", path.display())),
        )
    })
}
